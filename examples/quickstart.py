"""Quickstart: tune one database end to end.

Builds a small orders database, runs a workload against the simulated
engine, lets the Missing-Indexes recommender propose an index, implements
it, and shows the before/after execution statistics — the smallest
possible tour of the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import (
    Column,
    Database,
    IndexDefinition,
    Op,
    Predicate,
    SelectQuery,
    SqlEngine,
    SqlType,
    TableSchema,
)
from repro.recommender import MiRecommender


def build_database() -> Database:
    db = Database("quickstart", seed=7)
    schema = TableSchema(
        "orders",
        [
            Column("o_id", SqlType.BIGINT, nullable=False),
            Column("o_customer", SqlType.INT),
            Column("o_status", SqlType.INT),
            Column("o_amount", SqlType.FLOAT),
        ],
        primary_key=["o_id"],
    )
    table = db.create_table(schema)
    rng = np.random.default_rng(0)
    for i in range(8000):
        table.insert(
            (
                i,
                int(rng.integers(0, 400)),
                int(rng.integers(0, 6)),
                float(rng.gamma(2.0, 50.0)),
            )
        )
    return db


def main() -> None:
    engine = SqlEngine(build_database())
    engine.build_all_statistics()

    hot_query = SelectQuery(
        "orders",
        select_columns=("o_id", "o_amount"),
        predicates=(Predicate("o_customer", Op.EQ, 42),),
    )

    print("== before tuning ==")
    result = engine.execute(hot_query)
    print(f"plan:          {result.plan.signature()}")
    print(f"logical reads: {result.metrics.logical_reads}")
    print(f"cpu time:      {result.metrics.cpu_time_ms:.2f} ms")

    # Drive the workload so the MI DMV accumulates evidence, snapshotting
    # periodically the way the control plane does.
    recommender = MiRecommender(engine)
    for _round in range(4):
        for customer in range(0, 60):
            engine.execute(
                SelectQuery(
                    "orders",
                    select_columns=("o_id", "o_amount"),
                    predicates=(Predicate("o_customer", Op.EQ, customer),),
                )
            )
        engine.clock.advance(60.0)
        recommender.take_snapshot()

    recommendations = recommender.recommend()
    print("\n== recommendations ==")
    for recommendation in recommendations:
        print(recommendation.describe())

    if recommendations:
        definition = recommendations[0].to_definition("ix_demo")
        engine.create_index(definition)
        print(f"\nimplemented {definition.describe()}")

    print("\n== after tuning ==")
    result = engine.execute(hot_query)
    print(f"plan:          {result.plan.signature()}")
    print(f"logical reads: {result.metrics.logical_reads}")
    print(f"cpu time:      {result.metrics.cpu_time_ms:.2f} ms")


if __name__ == "__main__":
    main()
