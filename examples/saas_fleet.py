"""A SaaS vendor's fleet under the fully automated service.

Models the pattern from the paper's introduction: a software vendor with
many similar (but not identical) databases enables auto-implementation for
the whole fleet and lets the closed loop run for a simulated week — index
recommendations are generated, implemented online, validated against
Query Store statistics, and reverted when they regress.  At the end the
operational report prints the Section 8.1-style statistics.

Run:  python examples/saas_fleet.py
"""

from __future__ import annotations

from repro.clock import HOURS
from repro.controlplane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlaneSettings,
    RecommendationState,
)
from repro.reporting import operational_report
from repro.service import ServiceSettings, build_service


def main() -> None:
    service = build_service(
        n_databases=5,
        tier="standard",
        seed=23,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=8 * HOURS,
        ),
        service_settings=ServiceSettings(max_statements_per_step=80),
        default_config=AutoIndexingConfig(
            create_mode=AutoMode.AUTO,
            drop_mode=AutoMode.RECOMMEND_ONLY,
        ),
    )

    print(f"managing {len(service.fleet)} databases "
          f"({', '.join(sorted({p.archetype for p in service.fleet}))})")
    for day in range(7):
        service.run(hours=24)
        counts = service.plane.store.count_by_state()
        summary = ", ".join(
            f"{state.value}={count}" for state, count in sorted(
                counts.items(), key=lambda item: item[0].value
            )
        )
        print(f"day {day + 1}: {summary or 'no recommendations yet'}")

    print("\n== recommendation history (transparency view) ==")
    for name in service.fleet.names():
        history = service.plane.recommendation_history(name)
        if not history:
            continue
        print(f"{name}:")
        for record in history:
            if record.state in (
                RecommendationState.SUCCESS,
                RecommendationState.REVERTED,
            ):
                print(
                    f"  #{record.rec_id} {record.recommendation.describe()}"
                )
                print(
                    f"      -> {record.state.value}  {record.validation_summary}"
                )

    print("\n== operational report (Section 8.1 style) ==")
    for line in operational_report(service.plane, window_hours=24).lines():
        print(line)


if __name__ == "__main__":
    main()
