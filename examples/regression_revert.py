"""Validation catching a bad index and reverting it (Section 6).

Constructs the paper's core failure mode deliberately: a table whose
workload is write-heavy plus a query the optimizer badly mis-estimates.
An index that *looks* great in optimizer estimates is implemented; actual
execution statistics regress; the validator's Welch t-tests detect it; and
the control plane automatically reverts the index.

Run:  python examples/regression_revert.py
"""

from __future__ import annotations

import numpy as np

from repro.clock import SimClock
from repro.engine import (
    Column,
    Database,
    IndexDefinition,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    SqlEngine,
    SqlType,
    TableSchema,
)
from repro.validation import ValidationSettings, Validator


def build_engine() -> SqlEngine:
    db = Database("regress-demo", seed=3)
    schema = TableSchema(
        "events",
        [
            Column("e_id", SqlType.BIGINT, nullable=False),
            Column("e_kind", SqlType.INT),
            Column("e_payload", SqlType.TEXT),
        ],
        primary_key=["e_id"],
    )
    table = db.create_table(schema)
    rng = np.random.default_rng(1)
    for i in range(6000):
        # e_kind is extremely skewed: almost every row is kind 0.
        kind = 0 if rng.random() < 0.97 else int(rng.integers(1, 50))
        table.insert((i, kind, f"payload-{i % 13}"))
    engine = SqlEngine(db, clock=SimClock())
    # Stale, sampled statistics make kind=0 look selective to the optimizer.
    table.build_statistics(sample_fraction=0.02, rng=np.random.default_rng(9))
    return engine


def run_workload(engine: SqlEngine, start_id: int, rounds: int) -> None:
    """The app: frequent inserts plus a hot query on the skewed column."""
    hot = SelectQuery(
        "events", ("e_payload",), (Predicate("e_kind", Op.EQ, 0),)
    )
    for i in range(rounds):
        engine.execute(hot)
        batch = tuple(
            (start_id + i * 5 + j, 0, "x") for j in range(5)
        )
        engine.execute(InsertQuery("events", batch))
        engine.clock.advance(3.0)


def main() -> None:
    engine = build_engine()

    print("phase 1: observe the workload before the index change")
    run_workload(engine, start_id=100_000, rounds=40)
    before_window = (0.0, engine.now)

    index = IndexDefinition("ix_kind", "events", ("e_kind",), ("e_payload",))
    hot = SelectQuery("events", ("e_payload",), (Predicate("e_kind", Op.EQ, 0),))
    estimated_before = engine.whatif_cost(hot)
    estimated_after = engine.whatif_cost(hot, extra_indexes=[
        IndexDefinition("hyp", "events", ("e_kind",), ("e_payload",), hypothetical=True)
    ])
    print(
        f"optimizer estimate: {estimated_before:.1f} -> {estimated_after:.1f} "
        "(the index looks like a clear win)"
    )

    engine.create_index(index)
    implemented_at = engine.now
    print(f"\nimplemented {index.describe()}; phase 2: observe again")
    run_workload(engine, start_id=200_000, rounds=40)

    validator = Validator(engine, ValidationSettings(min_resource_share=0.01))
    outcome = validator.validate(
        "ix_kind", "create", before_window, (implemented_at, engine.now)
    )
    print("\n== validation outcome ==")
    print(f"verdict:            {outcome.verdict.value}")
    print(f"aggregate change:   {outcome.aggregate_change:+.1%}")
    print(f"statements judged:  {outcome.observed_statements}")
    for statement in outcome.statements:
        cpu = statement.tests["cpu_time_ms"]
        print(
            f"  query {statement.query_id % 10_000}: {statement.verdict.value:9s}"
            f" cpu {cpu.mean_before:.3f} -> {cpu.mean_after:.3f} ms"
            f" (p={cpu.p_value:.2e})"
        )
    if outcome.should_revert:
        engine.drop_index("events", "ix_kind")
        print("\nregression detected -> index automatically reverted, "
              "exactly as the validator component does in production")
    else:
        print("\nno significant regression; the index stays")


if __name__ == "__main__":
    main()
