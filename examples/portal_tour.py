"""A tour of the management surface (the paper's Figures 1-3 as text).

Walks through what a customer sees in the portal: per-server defaults
inherited by databases, the current-recommendations blade with estimated
impact and size, the detail blade with impacted statements, the T-SQL
script-out, a user-initiated apply, and the history/transparency view
after validation.

Run:  python examples/portal_tour.py
"""

from __future__ import annotations

from repro.api import ManagementApi
from repro.clock import HOURS
from repro.controlplane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlaneSettings,
)
from repro.service import ServiceSettings, build_service


def main() -> None:
    service = build_service(
        n_databases=2,
        tier="standard",
        seed=77,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=6 * HOURS,
        ),
        service_settings=ServiceSettings(max_statements_per_step=80),
        default_config=AutoIndexingConfig(create_mode=AutoMode.RECOMMEND_ONLY),
    )
    api = ManagementApi(service)
    api.register_server(
        "contoso-server",
        AutoIndexingConfig(
            create_mode=AutoMode.RECOMMEND_ONLY, drop_mode=AutoMode.RECOMMEND_ONLY
        ),
    )
    for name in service.fleet.names():
        api.assign_database(name, "contoso-server")

    print("== Figure 1: settings (inherited from the logical server) ==")
    database = service.fleet.names()[0]
    for option, state in api.settings_view(database).items():
        print(f"  {option:<14} {state}")

    print("\nrunning the workload for two simulated days…")
    service.run(hours=48)

    print("\n== Figure 2: current recommendations ==")
    recommendations = []
    for name in service.fleet.names():
        recommendations.extend(api.current_recommendations(name))
    for view in recommendations:
        print("  " + view.render())

    if recommendations:
        chosen = recommendations[0]
        print("\n== Figure 3: recommendation details ==")
        details = api.recommendation_details(chosen.rec_id)
        for key in ("index", "estimated_impact_pct", "estimated_size_bytes", "source"):
            print(f"  {key}: {details[key]}")
        print("  impacted statements:")
        for text in details["impacted_statements"][:4]:
            print(f"    {text}")

        print("\n== script-out (apply through your own tooling) ==")
        print("  " + api.script_out(chosen.rec_id))

        print("\napplying through the system instead (it will validate)…")
        api.apply_recommendation(chosen.rec_id)
        service.run(hours=30)

        print("\n== history / transparency view ==")
        for entry in api.history(details["database"]):
            if entry.rec_id != chosen.rec_id:
                continue
            print(f"  {entry.description}")
            for line in entry.timeline:
                print(f"    {line}")
            if entry.validation_summary:
                print(f"    validation: {entry.validation_summary}")


if __name__ == "__main__":
    main()
