"""Experimentation with B-instances (Section 7).

Reproduces the paper's recommender-comparison methodology on a single
database: the user's historical tuning is emulated, a random subset of
their best indexes is dropped, MI and DTA each propose replacements on a
learning B-instance, and four phases — baseline / User / MI / DTA — are
measured on fresh B-instances replaying forks of the same traffic.  The
winner must beat the others with statistical significance, otherwise the
database counts as Comparable, exactly as in Figure 6.

Run:  python examples/binstance_experiment.py
"""

from __future__ import annotations

from repro.experiment import ComparisonSettings, compare_database
from repro.workload import make_profile


def main() -> None:
    profile = make_profile(
        "fig6-demo", seed=42, tier="premium", archetype="analytics"
    )
    print(
        f"database {profile.name}: archetype={profile.archetype}, "
        f"tables={[t.name for t in profile.schema_spec.tables]}"
    )
    settings = ComparisonSettings(
        phase_statements=500,
        learn_statements=550,
        user_learn_statements=450,
        warmup_statements=300,
    )
    result = compare_database(profile, settings)

    print("\n== phase scores (fixed-execution-count CPU) ==")
    for name, phase in sorted(result.phases.items()):
        print(
            f"  {name:<9} score={phase.score:10.1f}"
            f"  (over {phase.templates} common templates)"
        )
    print("\n== improvements vs the untuned baseline ==")
    for arm, improvement in result.improvements.items():
        print(f"  {arm:<5} {improvement:5.1f}% CPU-time improvement")
    print(
        f"\ndropped {result.dropped_indexes} of the user's indexes; "
        f"MI proposed {result.mi_recommended}, DTA proposed {result.dta_recommended}"
    )
    print(f"winner: {result.winner}")


if __name__ == "__main__":
    main()
