"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only
enables ``pip install -e . --no-use-pep517`` in offline environments
where PEP 660 editable builds are unavailable.
"""

from setuptools import setup

setup()
