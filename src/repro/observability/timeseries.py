"""Telemetry history: a memory-bounded, tier-rolled-up time-series store.

The :class:`~repro.observability.metrics.MetricsRegistry` only holds
*current* values — it answers "what is the revert rate now", never "is
the revert rate rising".  This module adds the missing time axis the
paper's operators lean on (continuously monitored validation/revert
telemetry, Section 8) without unbounded memory: every control-plane
tick the full registry is reduced to a small set of cataloged samples
and appended to a :class:`TimeSeriesStore` whose retention is **tiered**
— recent ticks at raw resolution, older history as 16-tick and 256-tick
rollup buckets, each bucket keeping ``min/max/sum/count/last``.  Ring
buffers cap every tier, so a million-tick run retains a fixed number of
buckets while rate/quantile queries still answer over the whole horizon
(the AIM-at-Meta production-practicality posture: bounded state, tiered
retention).

Determinism contract: samples are keyed by the **virtual tick index**
and carry only virtual-time-derived values; wall-clock readings live in
series explicitly marked ``wall=True`` in :data:`SAMPLE_CATALOG` and are
excluded from anomaly detection (and therefore from the audit stream),
so parallel fleet runs stay byte-identical to serial ones with sampling
enabled.

``SAMPLE_CATALOG`` is the sampled-series taxonomy, linted by
``scripts/check_observability_names.py`` alongside the metric, audit,
alert, and SLO catalogs.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import math
from typing import Deque, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.errors import TelemetryError
from repro.observability.metrics import Histogram, MetricsRegistry

#: Version of the JSONL bucket schema below.  Bump when a record's
#: meaning changes; :meth:`TimeSeriesStore.replay` refuses newer ones.
HISTORY_SCHEMA_VERSION = 1

#: Rollup tier widths in ticks.  Raw samples roll into 16-tick buckets,
#: which roll into 256-tick buckets (tiers must be listed ascending).
ROLLUP_WIDTHS: Tuple[int, ...] = (16, 256)

#: Database label for fleet-level history events (matches the alert
#: watchdog's fleet scope so explain timelines join both).
HISTORY_SCOPE = "<fleet>"


@dataclasses.dataclass(frozen=True)
class SampleSpec:
    """One catalog entry: the contract for a sampled series name."""

    name: str
    unit: str
    description: str
    #: Wall-clock-derived series: retained for trend queries but never
    #: fed to the anomaly detector (audit streams must stay virtual).
    wall: bool = False
    #: Whether the EWMA/z-score detector watches this series (rates and
    #: level gauges only — cumulative counters trend up by construction).
    anomaly: bool = False


def _spec(
    name: str,
    unit: str,
    description: str,
    wall: bool = False,
    anomaly: bool = False,
) -> Tuple[str, SampleSpec]:
    return name, SampleSpec(name, unit, description, wall, anomaly)


#: The sampled-series taxonomy.  Names are stable public API: the SLO
#: catalog, the dashboard sparklines, the JSON export, and the
#: observability-name lint all key on them.
SAMPLE_CATALOG: Dict[str, SampleSpec] = dict(
    [
        _spec("revert_rate", "ratio",
              "Share of decided recommendations that ended REVERTED "
              "(cumulative, the paper's Section 8.1 headline rate).",
              anomaly=True),
        _spec("validation_failure_rate", "ratio",
              "Share of completed validations that judged REGRESSED "
              "(cumulative).", anomaly=True),
        _spec("plan_cache_hit_rate", "ratio",
              "Fleet-wide optimizer plan-cache hit rate (cumulative).",
              anomaly=True),
        _spec("recommendations_created", "recommendations",
              "Recommendations registered so far (cumulative counter)."),
        _spec("implementations_completed", "implementations",
              "Index changes fully implemented so far (cumulative)."),
        _spec("validation_reverts", "reverts",
              "Validation-triggered reverts so far (cumulative)."),
        _spec("incidents", "incidents",
              "Service-health incidents raised so far (cumulative)."),
        _spec("records_live", "records",
              "Recommendation records currently in a non-terminal state.",
              anomaly=True),
        _spec("alerts_firing_count", "alerts",
              "Watchdog alert rules currently firing.", anomaly=True),
        _spec("time_to_implement_minutes", "minutes",
              "p95 simulated minutes records spent IMPLEMENTING "
              "(from the state_duration_minutes histogram)."),
        _spec("tick_wall_seconds", "seconds",
              "Wall-clock seconds per fleet tick (host-dependent; "
              "excluded from the determinism contract).", wall=True),
    ]
)

#: Non-terminal lifecycle states (``records_live`` sums these).
_LIVE_STATES = ("active", "implementing", "validating", "reverting", "retry")


def _validate_series(name: str) -> SampleSpec:
    spec = SAMPLE_CATALOG.get(name)
    if spec is None:
        raise TelemetryError(
            f"sampled series {name!r} is not in SAMPLE_CATALOG "
            "(src/repro/observability/timeseries.py)"
        )
    return spec


class Bucket:
    """One rollup bucket: tick range plus min/max/sum/count/last."""

    __slots__ = ("start", "end", "min", "max", "sum", "count", "last")

    def __init__(self, tick: int, value: float) -> None:
        self.start = tick
        self.end = tick
        self.min = value
        self.max = value
        self.sum = value
        self.count = 1
        self.last = value

    def observe(self, tick: int, value: float) -> None:
        self.end = tick
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.sum += value
        self.count += 1
        self.last = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_row(self) -> List[float]:
        """Compact export row (schema: start,end,min,max,sum,count,last)."""
        return [self.start, self.end, self.min, self.max, self.sum,
                self.count, self.last]

    @classmethod
    def from_row(cls, row: List[float]) -> "Bucket":
        bucket = cls(int(row[0]), float(row[2]))
        bucket.end = int(row[1])
        bucket.max = float(row[3])
        bucket.sum = float(row[4])
        bucket.count = int(row[5])
        bucket.last = float(row[6])
        return bucket


class _Tier:
    """One rollup tier: a ring of closed buckets plus the open one."""

    __slots__ = ("width", "closed", "open")

    def __init__(self, width: int, capacity: int) -> None:
        self.width = width
        self.closed: Deque[Bucket] = collections.deque(maxlen=capacity)
        self.open: Optional[Bucket] = None

    def observe(self, tick: int, value: float) -> None:
        index = tick // self.width
        if self.open is not None and self.open.start // self.width != index:
            self.closed.append(self.open)
            self.open = None
        if self.open is None:
            self.open = Bucket(tick, value)
        else:
            self.open.observe(tick, value)

    def buckets(self) -> List[Bucket]:
        out = list(self.closed)
        if self.open is not None:
            out.append(self.open)
        return out

    def oldest_tick(self) -> Optional[int]:
        if self.closed:
            return self.closed[0].start
        if self.open is not None:
            return self.open.start
        return None

    def __len__(self) -> int:
        return len(self.closed) + (1 if self.open is not None else 0)


class SeriesHistory:
    """All retention tiers for one sampled series."""

    __slots__ = ("name", "raw", "tiers")

    def __init__(
        self,
        name: str,
        raw_capacity: int,
        rollup_capacity: int,
        widths: Tuple[int, ...] = ROLLUP_WIDTHS,
    ) -> None:
        self.name = name
        self.raw: Deque[Bucket] = collections.deque(maxlen=raw_capacity)
        self.tiers = [_Tier(width, rollup_capacity) for width in widths]

    def observe(self, tick: int, value: float) -> None:
        self.raw.append(Bucket(tick, float(value)))
        for tier in self.tiers:
            tier.observe(tick, float(value))

    # -- queries -------------------------------------------------------

    def latest(self) -> Optional[float]:
        return self.raw[-1].last if self.raw else None

    def last_tick(self) -> Optional[int]:
        return self.raw[-1].end if self.raw else None

    def retained(self) -> int:
        return len(self.raw) + sum(len(tier) for tier in self.tiers)

    def covering_buckets(self, start: int, end: int) -> List[Bucket]:
        """Buckets overlapping ``[start, end]`` from the finest tier
        whose retention still reaches back to ``start``.

        The raw ring answers recent-window queries exactly; queries past
        its horizon degrade to 16-tick, then 256-tick resolution — the
        whole-horizon query always has an answer as long as the coarsest
        tier's ring has not wrapped.
        """
        candidates: List[List[Bucket]] = [list(self.raw)]
        candidates.extend(tier.buckets() for tier in self.tiers)
        chosen: List[Bucket] = []
        for buckets in candidates:
            if not buckets:
                continue
            chosen = buckets
            if buckets[0].start <= start:
                break
        return [b for b in chosen if b.end >= start and b.start <= end]

    def value_at(self, tick: int) -> Optional[float]:
        """Last sampled value at or before ``tick``, answered by the
        finest tier whose retention reaches back to ``tick`` (exact
        while the raw ring covers it; clamped to the oldest retained
        bucket for ticks past every horizon)."""
        tick = max(0, tick)
        candidates: List[List[Bucket]] = [list(self.raw)]
        candidates.extend(tier.buckets() for tier in self.tiers)
        chosen: List[Bucket] = []
        for buckets in candidates:
            if not buckets:
                continue
            chosen = buckets
            if buckets[0].start <= tick:
                break
        if not chosen:
            return None
        best = chosen[0]
        for bucket in chosen:
            if bucket.start <= tick:
                best = bucket
            else:
                break
        return best.last

    def window_stats(self, window: int) -> Tuple[float, float, float, int]:
        """(min, max, sum, count) over the trailing ``window`` ticks."""
        end = self.last_tick()
        if end is None:
            return 0.0, 0.0, 0.0, 0
        start = max(0, end - window + 1)
        buckets = self.covering_buckets(start, end)
        if not buckets:
            return 0.0, 0.0, 0.0, 0
        lo = min(b.min for b in buckets)
        hi = max(b.max for b in buckets)
        total = sum(b.sum for b in buckets)
        count = sum(b.count for b in buckets)
        return lo, hi, total, count


class TimeSeriesStore:
    """Memory-bounded store of per-tick samples with tiered rollups.

    ``raw_capacity`` raw buckets plus ``rollup_capacity`` closed buckets
    per rollup tier bound every series; :meth:`retained_samples` against
    :meth:`capacity` is the provable memory bound the test suite drives
    10,000+ ticks through.
    """

    def __init__(
        self,
        raw_capacity: int = 512,
        rollup_capacity: int = 256,
        widths: Tuple[int, ...] = ROLLUP_WIDTHS,
    ) -> None:
        if raw_capacity < 1 or rollup_capacity < 1:
            raise TelemetryError("history capacities must be >= 1")
        if tuple(sorted(set(widths))) != tuple(widths):
            raise TelemetryError("rollup widths must be ascending and distinct")
        self.raw_capacity = raw_capacity
        self.rollup_capacity = rollup_capacity
        self.widths = tuple(widths)
        self._series: Dict[str, SeriesHistory] = {}

    # -- writes --------------------------------------------------------

    def observe(self, name: str, tick: int, value: float) -> None:
        """Append one sample; ``name`` must be in :data:`SAMPLE_CATALOG`."""
        _validate_series(name)
        series = self._series.get(name)
        if series is None:
            series = SeriesHistory(
                name, self.raw_capacity, self.rollup_capacity, self.widths
            )
            self._series[name] = series
        series.observe(tick, value)

    # -- introspection -------------------------------------------------

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def last_tick(self) -> Optional[int]:
        ticks = [s.last_tick() for s in self._series.values()]
        ticks = [t for t in ticks if t is not None]
        return max(ticks) if ticks else None

    def retained_samples(self) -> int:
        """Total buckets currently held across every series and tier."""
        return sum(series.retained() for series in self._series.values())

    def capacity(self) -> int:
        """Upper bound on :meth:`retained_samples` for the current series
        set (each tier's ring plus its open bucket)."""
        per_series = self.raw_capacity + len(self.widths) * (
            self.rollup_capacity + 1
        )
        return per_series * max(1, len(self._series))

    # -- queries -------------------------------------------------------

    def _get(self, name: str) -> Optional[SeriesHistory]:
        _validate_series(name)
        return self._series.get(name)

    def latest(self, name: str) -> Optional[float]:
        series = self._get(name)
        return series.latest() if series else None

    def range(
        self, name: str, start: int, end: Optional[int] = None
    ) -> List[Bucket]:
        """Buckets overlapping ``[start, end]`` at the finest retained
        resolution (see :meth:`SeriesHistory.covering_buckets`)."""
        series = self._get(name)
        if series is None:
            return []
        last = series.last_tick()
        if last is None:
            return []
        return series.covering_buckets(start, last if end is None else end)

    def delta(self, name: str, window: int) -> float:
        """Change in the series value over the trailing ``window`` ticks
        (clamped to the retained horizon)."""
        series = self._get(name)
        if series is None:
            return 0.0
        end = series.last_tick()
        if end is None:
            return 0.0
        latest = series.latest()
        earlier = series.value_at(max(0, end - window))
        if latest is None or earlier is None:
            return 0.0
        return latest - earlier

    def rate(self, name: str, window: int) -> float:
        """Per-tick rate of change over the trailing ``window`` ticks.

        Uses the *effective* span — windows reaching past the retained
        horizon divide by the span actually covered, never by ticks the
        store no longer holds.
        """
        series = self._get(name)
        if series is None:
            return 0.0
        end = series.last_tick()
        if end is None:
            return 0.0
        target = max(0, end - window)
        buckets = series.covering_buckets(0, end)
        oldest = buckets[0].start if buckets else end
        start = max(target, oldest)
        span = end - start
        if span <= 0:
            return 0.0
        latest = series.latest()
        earlier = series.value_at(start)
        if latest is None or earlier is None:
            return 0.0
        return (latest - earlier) / span

    def mean(self, name: str, window: int) -> Tuple[float, int]:
        """(mean, sample count) over the trailing ``window`` ticks.

        Exact regardless of which tier answers: rollup buckets carry
        ``sum`` and ``count``, so downsampling never loses the mean.
        """
        series = self._get(name)
        if series is None:
            return 0.0, 0
        _lo, _hi, total, count = series.window_stats(window)
        return (total / count if count else 0.0), count

    def quantile(self, name: str, q: float, window: int) -> float:
        """Estimated q-quantile over the trailing ``window`` ticks.

        Each bucket is treated as ``count`` observations spread uniformly
        between its ``min`` and ``max`` — exact for raw buckets (one
        sample each), a bounded-error estimate for rollups.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        series = self._get(name)
        if series is None:
            return 0.0
        end = series.last_tick()
        if end is None:
            return 0.0
        buckets = series.covering_buckets(max(0, end - window + 1), end)
        if not buckets:
            return 0.0
        ordered = sorted(buckets, key=lambda b: (b.min, b.max))
        total = sum(b.count for b in ordered)
        target = q * total
        cumulative = 0.0
        for bucket in ordered:
            if cumulative + bucket.count >= target:
                fraction = (target - cumulative) / bucket.count
                return bucket.min + fraction * (bucket.max - bucket.min)
            cumulative += bucket.count
        return ordered[-1].max

    # -- export / persistence ------------------------------------------

    def export(self) -> dict:
        """A JSON-serializable, deterministic snapshot of the store."""
        series_out = []
        for name in self.series_names():
            series = self._series[name]
            spec = SAMPLE_CATALOG[name]
            tiers = [{"width": 1, "buckets": [b.to_row() for b in series.raw]}]
            for tier in series.tiers:
                tiers.append(
                    {
                        "width": tier.width,
                        "buckets": [b.to_row() for b in tier.buckets()],
                    }
                )
            series_out.append(
                {
                    "name": name,
                    "unit": spec.unit,
                    "wall": spec.wall,
                    "latest": series.latest(),
                    "tiers": tiers,
                }
            )
        return {
            "schema": "repro-history-v1",
            "schema_version": HISTORY_SCHEMA_VERSION,
            "last_tick": self.last_tick(),
            "retained_samples": self.retained_samples(),
            "series": series_out,
        }

    def to_jsonl(self) -> str:
        """The store as JSON lines: one record per (series, tier) ring.

        Mirrors :meth:`repro.observability.audit.AuditLog.to_jsonl`:
        deterministic ordering, schema-versioned records, no wall-clock
        timestamps beyond series explicitly cataloged as wall series.
        """
        lines = []
        for name in self.series_names():
            series = self._series[name]
            tiers = [("raw", 1, [b.to_row() for b in series.raw])]
            tiers += [
                (f"rollup_{tier.width}", tier.width,
                 [b.to_row() for b in tier.buckets()])
                for tier in series.tiers
            ]
            for tier_name, width, rows in tiers:
                lines.append(
                    json.dumps(
                        {
                            "schema_version": HISTORY_SCHEMA_VERSION,
                            "series": name,
                            "tier": tier_name,
                            "width": width,
                            # Ring capacities ride along so a replayed
                            # store evicts exactly like the original
                            # when appended to.
                            "raw_capacity": self.raw_capacity,
                            "rollup_capacity": self.rollup_capacity,
                            "buckets": rows,
                        },
                        sort_keys=True,
                    )
                )
        return "".join(line + "\n" for line in lines)

    def dump(self, destination: Union[str, IO[str]]) -> int:
        """Write the store as JSONL; returns the record count."""
        text = self.to_jsonl()
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w") as fp:
                fp.write(text)
        return sum(1 for line in text.splitlines() if line)

    @classmethod
    def replay(cls, source: Union[str, Iterable[str]]) -> "TimeSeriesStore":
        """Rebuild a store from JSONL text, lines, or a file path.

        Bucket contents round-trip exactly: the final bucket of each
        rollup record becomes the tier's open bucket again, so
        ``replay(to_jsonl()).to_jsonl()`` is byte-identical and
        appending to a replayed store continues the same rollups.
        """
        if isinstance(source, str):
            if not source.strip():
                lines: Iterable[str] = []
            elif "\n" not in source and not source.lstrip().startswith("{"):
                with open(source) as fp:
                    lines = fp.read().splitlines()
            else:
                lines = source.splitlines()
        else:
            lines = source
        store = cls()
        widths = set()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            version = raw.get("schema_version", 0)
            if version > HISTORY_SCHEMA_VERSION:
                raise TelemetryError(
                    f"history record schema v{version} is newer than this "
                    f"reader (v{HISTORY_SCHEMA_VERSION})"
                )
            name = raw["series"]
            _validate_series(name)
            if not store._series:
                # First record configures the store's ring capacities
                # (older dumps without them keep the defaults).
                store.raw_capacity = int(
                    raw.get("raw_capacity", store.raw_capacity)
                )
                store.rollup_capacity = int(
                    raw.get("rollup_capacity", store.rollup_capacity)
                )
            series = store._series.get(name)
            if series is None:
                series = SeriesHistory(
                    name, store.raw_capacity, store.rollup_capacity,
                    store.widths,
                )
                store._series[name] = series
            buckets = [Bucket.from_row(row) for row in raw["buckets"]]
            if raw["tier"] == "raw":
                series.raw.extend(buckets)
            else:
                width = int(raw["width"])
                widths.add(width)
                for tier in series.tiers:
                    if tier.width == width:
                        if buckets:
                            tier.closed.extend(buckets[:-1])
                            tier.open = buckets[-1]
                        break
                else:
                    raise TelemetryError(
                        f"history record tier width {width} is not one of "
                        f"the reader's rollup widths {store.widths}"
                    )
        return store


# ----------------------------------------------------------------------
# Registry sampling


class FleetSampler:
    """Reduces a :class:`MetricsRegistry` to the cataloged samples.

    Every value is derived from virtual-time-driven counters/gauges, so
    the same merged registry state yields the same samples on every
    backend.  Wall series are *not* produced here — they are observed
    separately by callers that actually measure wall time.
    """

    def sample(self, registry: MetricsRegistry) -> Dict[str, float]:
        reverted = registry.total(
            "state_transitions_total", to_state="reverted"
        )
        success = registry.total("state_transitions_total", to_state="success")
        reverting = registry.total(
            "state_transitions_total", to_state="reverting"
        )
        decided = reverted + success
        validated = reverting + success
        hits = registry.total("plan_cache_hits")
        misses = registry.total("plan_cache_misses")
        lookups = hits + misses
        live = sum(
            registry.total("records_in_state", state=state)
            for state in _LIVE_STATES
        )
        firing = sum(
            1.0
            for series in registry.series_for("alerts_firing")
            if series.metric.value
        )
        implement_p95 = 0.0
        for series in registry.series_for(
            "state_duration_minutes", state="implementing"
        ):
            metric = series.metric
            if isinstance(metric, Histogram) and metric.count:
                implement_p95 = metric.p95
        return {
            "revert_rate": (reverted / decided) if decided else 0.0,
            "validation_failure_rate": (
                (reverting / validated) if validated else 0.0
            ),
            "plan_cache_hit_rate": (hits / lookups) if lookups else 1.0,
            "recommendations_created": registry.total(
                "recommendations_created_total"
            ),
            "implementations_completed": registry.total(
                "implementations_completed_total"
            ),
            "validation_reverts": reverted,
            "incidents": registry.total("incidents_total"),
            "records_live": live,
            "alerts_firing_count": firing,
            "time_to_implement_minutes": implement_p95,
        }


# ----------------------------------------------------------------------
# Anomaly detection


@dataclasses.dataclass
class Anomaly:
    """One z-score excursion on one sampled series."""

    series: str
    tick: int
    value: float
    zscore: float
    ewma_mean: float
    ewma_std: float


class _EwmaState:
    __slots__ = ("mean", "var", "samples", "suppressed_until")

    def __init__(self) -> None:
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0
        self.suppressed_until = -1


class AnomalyDetector:
    """EWMA mean/variance tracker with z-score excursion detection.

    Per series, the detector keeps an exponentially weighted moving
    average and variance; a sample whose z-score magnitude reaches
    ``z_threshold`` after ``warmup`` samples is an anomaly.  A cooldown
    suppresses repeat firings while a level shift is absorbed into the
    moving statistics, so one regression produces one typed event, not
    a storm.  All state is pure float arithmetic over virtual-tick
    samples: deterministic across runs and backends.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        z_threshold: float = 4.0,
        warmup: int = 12,
        cooldown: int = 32,
        min_std: float = 1e-3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise TelemetryError("EWMA alpha must be in (0, 1]")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.cooldown = cooldown
        self.min_std = min_std
        self._states: Dict[str, _EwmaState] = {}

    def observe(self, series: str, tick: int, value: float) -> Optional[Anomaly]:
        """Feed one sample; returns an :class:`Anomaly` when it excurses."""
        state = self._states.get(series)
        if state is None:
            state = self._states[series] = _EwmaState()
        anomaly = None
        if state.samples >= self.warmup and tick >= state.suppressed_until:
            std = max(math.sqrt(state.var), self.min_std)
            z = (value - state.mean) / std
            if abs(z) >= self.z_threshold:
                anomaly = Anomaly(
                    series=series,
                    tick=tick,
                    value=value,
                    zscore=z,
                    ewma_mean=state.mean,
                    ewma_std=std,
                )
                state.suppressed_until = tick + self.cooldown
        if state.samples == 0:
            state.mean = value
            state.var = 0.0
        else:
            delta = value - state.mean
            state.mean += self.alpha * delta
            state.var = (1.0 - self.alpha) * (
                state.var + self.alpha * delta * delta
            )
        state.samples += 1
        return anomaly


# ----------------------------------------------------------------------
# The per-service orchestrator


class TelemetryHistory:
    """Samples a registry each tick, stores history, detects anomalies.

    One per region-level service (the serial control plane owns one;
    the sharded fleet service owns one fed at its post-merge point).
    Shard worker planes never sample — history, like alert rules, is a
    fleet-level responsibility evaluated over merged state, which is
    what keeps parallel runs byte-identical to serial.
    """

    def __init__(
        self,
        store: Optional[TimeSeriesStore] = None,
        sampler: Optional[FleetSampler] = None,
        detector: Optional[AnomalyDetector] = None,
    ) -> None:
        self.store = store if store is not None else TimeSeriesStore()
        self.sampler = sampler if sampler is not None else FleetSampler()
        self.detector = detector if detector is not None else AnomalyDetector()
        self.anomalies: List[Anomaly] = []
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Ticks sampled so far (the next sample's tick index)."""
        return self._ticks

    def observe_tick(
        self,
        registry: MetricsRegistry,
        now: float,
        audit=None,
    ) -> int:
        """Sample the registry at virtual time ``now``; returns the tick
        index used.

        Anomalies on cataloged (non-wall) series emit typed
        ``telemetry_anomaly`` audit events at ``now``, joining the same
        provenance chain ``repro explain`` renders.
        """
        tick = self._ticks
        self._ticks += 1
        values = self.sampler.sample(registry)
        for name in sorted(values):
            value = values[name]
            self.store.observe(name, tick, value)
            spec = SAMPLE_CATALOG[name]
            if not spec.anomaly or spec.wall:
                continue
            anomaly = self.detector.observe(name, tick, value)
            if anomaly is None:
                continue
            self.anomalies.append(anomaly)
            registry.counter(
                "telemetry_anomalies_total", series=name
            ).inc()
            if audit is not None:
                audit.emit(
                    now,
                    "telemetry_anomaly",
                    HISTORY_SCOPE,
                    series=anomaly.series,
                    tick=anomaly.tick,
                    value=anomaly.value,
                    zscore=anomaly.zscore,
                    ewma_mean=anomaly.ewma_mean,
                    ewma_std=anomaly.ewma_std,
                )
        registry.gauge("telemetry_history_samples").set(
            self.store.retained_samples()
        )
        return tick

    def observe_wall(self, tick: int, wall_seconds: float) -> None:
        """Record one tick's wall time into the (wall-flagged) series.

        Kept separate from :meth:`observe_tick` so callers without a
        wall measurement (the serial control plane) never create the
        series, and the anomaly/audit path can never see wall values.
        """
        self.store.observe("tick_wall_seconds", tick, wall_seconds)
