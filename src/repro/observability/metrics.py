"""Fleet metrics: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is the numeric side of the observability
layer (the span side lives in :mod:`repro.observability.spans`).  Every
metric is identified by a ``snake_case`` name plus a label set (e.g.
``database``, ``state``), mirroring the anonymized dimensions the
paper's engineers aggregate over (Sections 1.2, 8).

Histograms use **fixed bucket bounds** and observe *simulated* durations
from the :class:`repro.clock.SimClock`, so quantiles (p50/p95/p99) are
deterministic and independent of wall-clock time.

``CATALOG`` is the metrics taxonomy: every metric the repo emits is
declared there with its kind, unit, and description.  The
``scripts/check_observability_names.py`` lint fails the build when
source code uses a name that is missing from the catalog or not
``snake_case`` (the same lint covers audit event types and alert rule
names).
"""

from __future__ import annotations

import bisect
import dataclasses
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TelemetryError
from repro.observability.compliance import ensure_compliant, ensure_clean_labels

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

LabelsKey = Tuple[Tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One catalog entry: the contract for a metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    description: str


def _spec(name: str, kind: str, unit: str, description: str) -> Tuple[str, MetricSpec]:
    return name, MetricSpec(name, kind, unit, description)


#: The metrics taxonomy.  Names are stable public API: dashboards, the
#: Prometheus exposition, and BENCH_*.json trajectories all key on them.
CATALOG: Dict[str, MetricSpec] = dict(
    [
        _spec("events_total", "counter", "events",
              "Telemetry events emitted on the control-plane bus, by kind."),
        _spec("state_transitions_total", "counter", "transitions",
              "Recommendation state-machine transitions (from_state -> to_state)."),
        _spec("records_in_state", "gauge", "records",
              "Recommendation records currently in each state."),
        _spec("recommendations_created_total", "counter", "recommendations",
              "Recommendations registered, by action (create/drop) and source."),
        _spec("implementations_completed_total", "counter", "implementations",
              "Index changes fully implemented (build or drop finished)."),
        _spec("validation_reverts_total", "counter", "reverts",
              "Validation-triggered reverts, by regressed statement class."),
        _spec("incidents_total", "counter", "incidents",
              "Service-health incidents raised for on-call engineers."),
        _spec("state_duration_minutes", "histogram", "minutes",
              "Simulated time a record spent in one state before leaving it."),
        _spec("tuning_session_duration_minutes", "histogram", "minutes",
              "Simulated end-to-end duration of a tuning session (DTA/MI)."),
        _spec("analysis_runs_total", "counter", "runs",
              "Analysis passes invoked, by recommender source and outcome."),
        _spec("dta_whatif_calls_total", "counter", "calls",
              "What-if optimizer calls consumed by completed DTA sessions."),
        _spec("plan_cache_hits", "gauge", "lookups",
              "Optimizer plan-cache hits per database (monotone engine counter)."),
        _spec("plan_cache_misses", "gauge", "lookups",
              "Optimizer plan-cache misses per database (monotone engine counter)."),
        _spec("plan_cache_evictions", "gauge", "entries",
              "Plan-cache entries removed per database (capacity + invalidation)."),
        _spec("alerts_raised_total", "counter", "alerts",
              "Watchdog alerts raised, by rule name."),
        _spec("alerts_firing", "gauge", "alerts",
              "Whether each watchdog alert rule is currently firing (0/1)."),
        _spec("telemetry_history_samples", "gauge", "buckets",
              "Buckets currently retained across every series and tier "
              "of the telemetry-history store (memory-bound evidence)."),
        _spec("telemetry_anomalies_total", "counter", "anomalies",
              "EWMA/z-score excursions detected on sampled telemetry "
              "series, by series name."),
        _spec("fleet_databases", "gauge", "databases",
              "Managed databases in the sharded fleet-parallel run."),
        _spec("fleet_workers", "gauge", "workers",
              "Shard workers executing the fleet-parallel control plane."),
        _spec("fleet_shard_busy", "gauge", "seconds",
              "Cumulative wall-clock seconds each shard spent executing "
              "ticks (labeled by shard; wall time, not simulated time)."),
        _spec("fleet_tick_skew_seconds", "gauge", "seconds",
              "Busiest-minus-idlest shard wall-clock gap for the most "
              "recent tick (stragglers bound parallel speedup)."),
        _spec("fleet_merge_queue_depth", "gauge", "deltas",
              "Per-database tick deltas awaiting the deterministic merge "
              "at the start of the most recent merge pass."),
        _spec("fleet_pipeline_buffered_results", "gauge", "results",
              "Streamed shard results parked in the completion buffer "
              "awaiting their tick's stragglers (pipelined dispatch "
              "depth at the most recent release)."),
        _spec("fleet_tick_wall_seconds", "histogram", "seconds",
              "Wall-clock seconds per fleet tick (dispatch through "
              "finalize); the streaming whole-run complement of the "
              "capped tick_wall_seconds window."),
        _spec("fleet_ticks_total", "counter", "ticks",
              "Fleet-parallel ticks executed (dispatch + merge rounds)."),
        _spec("fleet_phase_seconds", "histogram", "seconds",
              "Wall-clock seconds one tick spent in each critical-path "
              "phase (labeled by phase; see repro.parallel.timing "
              "PHASE_CATALOG for the taxonomy)."),
        _spec("fleet_tick_attribution_ratio", "gauge", "ratio",
              "Fraction of the most recent tick's wall-clock explained "
              "by the parent-side phase timers (1.0 = fully attributed)."),
        _spec("fleet_profile_events_dropped_total", "counter", "events",
              "Phase/trace events discarded after the profiler's "
              "in-memory event cap was reached (long unprofiled runs)."),
        _spec("executor_vector_dispatch_total", "gauge", "statements",
              "Statements executed per database, by path (vector/interp); "
              "monotone engine counter published as a gauge."),
        _spec("executor_batch_rows", "gauge", "rows",
              "Rows that flowed through vectorized batch operators per "
              "database (monotone engine counter)."),
        # One gauge per interpreter-fallback reason; the set of reasons
        # mirrors repro.engine.exec.dispatch.FALLBACK_REASONS (the lint
        # cross-checks the two).  Per reason, per database, monotone;
        # summed over reasons they equal the interp dispatch count.
        _spec("executor_fallback_mode_total", "gauge", "statements",
              "Statements interpreted because the executor mode is "
              "interp (monotone)."),
        _spec("executor_fallback_threshold_total", "gauge", "statements",
              "Statements interpreted because auto mode saw too few "
              "rows to amortize batching (monotone)."),
        _spec("executor_fallback_shape_total", "gauge", "statements",
              "Statements interpreted because the single-table plan "
              "shape is unsupported — seeks, key lookups, TOP over a "
              "lazy source (monotone)."),
        _spec("executor_fallback_join_total", "gauge", "statements",
              "Statements interpreted because the join shape is "
              "unsupported — nested-loop, seek-fed hash join "
              "(monotone)."),
        _spec("executor_fallback_hinted_total", "gauge", "statements",
              "Statements interpreted because an index hint forced an "
              "unsupported access path (monotone)."),
        _spec("executor_fallback_dml_total", "gauge", "statements",
              "DML statements whose batch pre-checks declined — "
              "duplicate keys, validation, primary-key assignment — "
              "and ran row-at-a-time (monotone)."),
        _spec("executor_fallback_runtime_total", "gauge", "statements",
              "Statements whose vectorized run bailed out mid-plan and "
              "re-ran interpreted after a charge rollback (monotone)."),
        _spec("executor_column_cache_hits", "gauge", "projections",
              "Columnar projection cache hits per database (monotone)."),
        _spec("executor_column_cache_misses", "gauge", "projections",
              "Columnar projection builds per database (monotone)."),
        _spec("executor_column_cache_invalidations", "gauge", "projections",
              "Columnar cache invalidations per database after data or "
              "schema version bumps (monotone)."),
        _spec("whatif_batch_batches", "gauge", "batches",
              "Batched what-if pricers created per database (one per "
              "statement frontier; monotone engine counter)."),
        _spec("whatif_batch_configurations", "gauge", "configurations",
              "Hypothetical configurations priced through the batched "
              "what-if path per database (monotone)."),
        _spec("whatif_batch_substrate_hits", "gauge", "substrates",
              "Batched-pricing substrate reuses per database: statement "
              "plan spaces served from the plan cache's substrate store "
              "(monotone)."),
        _spec("whatif_batch_substrate_misses", "gauge", "substrates",
              "Batched-pricing substrate builds per database: the "
              "query-invariant plan space had to be enumerated "
              "(monotone)."),
        _spec("whatif_batch_scalar_fallbacks", "gauge", "configurations",
              "Configurations the batched pricer routed through the "
              "scalar optimize path (hinted or bulk statements; "
              "monotone)."),
        _spec("bench_duration_ms", "gauge", "milliseconds",
              "Micro-benchmark wall-clock duration, by benchmark name."),
        _spec("bench_pages_touched", "gauge", "pages",
              "Micro-benchmark pages touched, by benchmark name."),
        _spec("bench_tree_height", "gauge", "levels",
              "B+ tree height in the engine micro-benchmark."),
        _spec("bench_tree_pages", "gauge", "pages",
              "B+ tree total page count in the engine micro-benchmark."),
    ]
)

#: Default histogram bounds for simulated durations, in minutes.  The
#: +Inf bucket is implicit.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 720.0,
    1440.0, 2880.0, 10080.0,
)


def _validate_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"metric name {name!r} is not snake_case ([a-z][a-z0-9_]*)"
        )


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming histogram over fixed bucket bounds.

    ``bucket_counts[i]`` counts observations with
    ``value <= bounds[i]`` (and greater than the previous bound);
    observations above the last bound land in the overflow bucket.
    Quantiles are estimated by linear interpolation inside the bucket
    containing the target rank, clamped to the observed min/max.
    """

    __slots__ = ("bounds", "bucket_counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or list(cleaned) != sorted(set(cleaned)):
            raise TelemetryError(
                "histogram bounds must be non-empty, sorted, and distinct"
            )
        self.bounds = cleaned
        self.bucket_counts = [0] * len(cleaned)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) of the observed values."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        lower = max(0.0, self.min)
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket:
                if cumulative + bucket >= target:
                    fraction = (target - cumulative) / bucket
                    lo = max(lower, self.min)
                    hi = min(bound, self.max)
                    if hi <= lo:
                        return hi
                    return lo + fraction * (hi - lo)
                cumulative += bucket
            lower = bound
        return self.max  # target rank lies in the overflow bucket

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


@dataclasses.dataclass
class Series:
    """One (name, labels) time series and its metric object."""

    name: str
    kind: str
    labels: LabelsKey
    metric: object  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of labeled counters, gauges, and histograms.

    Names must be ``snake_case``; label names must be ``snake_case`` and
    free of customer-data keys; re-registering a name with a different
    kind raises :class:`~repro.errors.TelemetryError`.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelsKey], Series] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Creation / access

    def _get(self, name: str, kind: str, labels: Dict[str, object], factory):
        _validate_name(name)
        for label_name in labels:
            _validate_name(label_name)
        ensure_clean_labels(labels, f"labels of metric {name!r}")
        ensure_compliant(labels, f"labels of metric {name!r}")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as a {known}, not a {kind}"
            )
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        series = self._series.get(key)
        if series is None:
            series = Series(name=name, kind=kind, labels=key[1], metric=factory())
            self._series[key] = series
            self._kinds[name] = kind
        return series.metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        factory = (lambda: Histogram(bounds)) if bounds is not None else Histogram
        return self._get(name, "histogram", labels, factory)

    # ------------------------------------------------------------------
    # Queries

    def all_series(self) -> List[Series]:
        """Every series, deterministically ordered by (name, labels)."""
        return [self._series[key] for key in sorted(self._series)]

    def series_for(self, name: str, **labels) -> List[Series]:
        """Series of ``name`` whose labels include all of ``labels``."""
        wanted = {(k, str(v)) for k, v in labels.items()}
        return [
            s
            for key, s in sorted(self._series.items())
            if s.name == name and wanted.issubset(set(s.labels))
        ]

    def total(self, name: str, **labels) -> float:
        """Sum of all counter/gauge series matching ``name`` + ``labels``.

        Missing metrics total 0.0, so report code can read counters that
        a quiet run never touched.
        """
        total = 0.0
        for series in self.series_for(name, **labels):
            if isinstance(series.metric, (Counter, Gauge)):
                total += series.metric.value
            else:
                raise TelemetryError(f"metric {name!r} is a histogram; "
                                     "use series_for() and quantiles")
        return total
