"""``repro explain``: a human-readable decision timeline for one record.

Joins three sources into one chronological view of a recommendation's
life — the audit stream (decision evidence), the span recorder (phase
timings), and the StateStore journal (the ground-truth mutation log) —
so an engineer can answer the paper's trust question: *why* did the
service create, validate, and possibly revert this index (Sections 2,
6, 8)?

The audit stream is the only required source: the same renderer works
against a replayed JSONL file (``repro explain --audit``) where no live
spans or store exist.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.observability.audit import AuditEvent, AuditLog
from repro.observability.spans import SpanRecorder


@dataclasses.dataclass
class TimelineEntry:
    """One step of the decision timeline."""

    at: float  # simulated minutes
    source: str  # "audit" | "journal" | "span" | "fleet"
    title: str
    details: List[str] = dataclasses.field(default_factory=list)


#: Fleet-scope event types (``rec_id=None``) joined into a record's
#: timeline when they fire inside its lifetime: alerts opening/closing
#: and telemetry anomalies are the ambient context a decision ran in.
_FLEET_EVENT_TYPES = ("alert_raised", "alert_resolved", "telemetry_anomaly")


def _fmt_t(minutes: float) -> str:
    if minutes >= 1440.0:
        return f"t+{minutes / 1440.0:.1f}d"
    if minutes >= 60.0:
        return f"t+{minutes / 60.0:.1f}h"
    return f"t+{minutes:.1f}m"


def _fmt_val(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _payload_summary(payload: dict, skip=("statements",)) -> str:
    parts = [
        f"{key}={_fmt_val(value)}"
        for key, value in payload.items()
        if key not in skip and not isinstance(value, (dict, list))
    ]
    return " ".join(parts)


def _welch_lines(statements: List[dict]) -> List[str]:
    """Per-statement Welch t-test evidence, one line per metric."""
    lines: List[str] = []
    for statement in statements:
        lines.append(
            f"query {statement['query_id']}: {statement['verdict']} "
            f"(share {statement.get('resource_share', 0.0):.1%}, "
            f"n={statement.get('executions_before', '?')}->"
            f"{statement.get('executions_after', '?')})"
        )
        for metric, test in sorted(statement.get("tests", {}).items()):
            relative = test.get("relative_change")
            rel_text = f"{relative:+.1%}" if relative is not None else "inf"
            lines.append(
                f"  {metric}: mean {test['mean_before']:.4g} -> "
                f"{test['mean_after']:.4g} ({rel_text}), "
                f"t={test['t_statistic']:.2f}, "
                f"dof={test['degrees_of_freedom']:.1f}, "
                f"p={test['p_value']:.3g}"
            )
    return lines


def _audit_entry(event: AuditEvent) -> TimelineEntry:
    payload = event.payload
    details: List[str] = []
    summary = _payload_summary(payload)
    title = f"[audit] {event.event_type}"
    if summary:
        title = f"{title}  {summary}"
    if event.event_type == "validation_completed":
        details.extend(_welch_lines(payload.get("statements", [])))
    elif event.event_type == "revert_decided":
        triggers = payload.get("trigger_query_ids", [])
        if triggers:
            details.append(
                "triggering statements: "
                + ", ".join(str(q) for q in triggers)
            )
    for key, value in payload.items():
        if isinstance(value, dict):
            details.append(f"{key}: {_payload_summary(value)}")
    return TimelineEntry(at=event.at, source="audit", title=title, details=details)


def decision_index(audit: AuditLog, database: str) -> List[dict]:
    """One summary row per recommendation chain of ``database``."""
    rows = []
    for rec_id in audit.rec_ids(database):
        chain = audit.chain(rec_id)
        state = None
        for event in chain:
            if event.event_type == "recommendation_registered":
                state = event.payload.get("state", state)
            elif event.event_type == "state_changed":
                state = event.payload.get("to_state", state)
        head = chain[0]
        rows.append(
            {
                "rec_id": rec_id,
                "state": state or "?",
                "events": len(chain),
                "first_at": head.at,
                "last_at": chain[-1].at,
                "action": head.payload.get("action", "?"),
                "source": head.payload.get("source", "?"),
            }
        )
    return rows


def build_timeline(
    audit: AuditLog,
    database: str,
    rec_id: int,
    recorder: Optional[SpanRecorder] = None,
    store=None,
) -> List[TimelineEntry]:
    """The joined, chronologically sorted timeline for one record.

    Chain events (audit), journal transitions, and spans are joined by
    ``rec_id``; fleet-scope alert/anomaly events carry no rec_id, so
    they join by *time* — any that fired within the record's first-to-
    last audit window appear as ``[fleet]`` context lines.
    """
    entries: List[TimelineEntry] = []
    chain = [e for e in audit.chain(rec_id) if e.database == database]
    for event in chain:
        entries.append(_audit_entry(event))
    if chain:
        first = chain[0].at
        last = chain[-1].at
        for event in audit.events():
            if event.rec_id is not None:
                continue
            if event.event_type not in _FLEET_EVENT_TYPES:
                continue
            if not first <= event.at <= last:
                continue
            summary = _payload_summary(event.payload)
            title = f"[fleet] {event.event_type}"
            if summary:
                title = f"{title}  {summary}"
            entries.append(
                TimelineEntry(at=event.at, source="fleet", title=title)
            )
    if store is not None:
        for entry in store.journal(rec_id):
            if entry.op == "transition":
                state = entry.payload["state"]
                state_text = getattr(state, "value", state)
                note = entry.payload.get("note", "")
                title = f"[journal] -> {state_text}"
                if note:
                    title = f"{title}  ({note})"
                entries.append(
                    TimelineEntry(at=entry.at, source="journal", title=title)
                )
    if recorder is not None:
        for span in recorder.spans():
            if span.attributes.get("rec_id") != rec_id:
                continue
            if span.kind == "recommendation":
                continue  # the root span duplicates the whole timeline
            duration = (
                f"{span.duration:.1f}m" if span.duration is not None else "open"
            )
            entries.append(
                TimelineEntry(
                    at=span.start,
                    source="span",
                    title=(
                        f"[span] {span.kind} {duration}"
                        + (f" -> {span.outcome}" if span.outcome else "")
                    ),
                )
            )
    # Stable order: by time, journal (ground truth) before audit
    # evidence before span timings before ambient fleet context at
    # equal timestamps.
    source_rank = {"journal": 0, "audit": 1, "span": 2, "fleet": 3}
    entries.sort(key=lambda e: (e.at, source_rank[e.source]))
    return entries


def render_explain(
    audit: AuditLog,
    database: str,
    rec_id: int,
    recorder: Optional[SpanRecorder] = None,
    store=None,
) -> List[str]:
    """The printable ``repro explain <db> <rec-id>`` output."""
    chain = audit.chain(rec_id)
    chain = [e for e in chain if e.database == database]
    lines = [f"== decision provenance: {database} / recommendation {rec_id} =="]
    if not chain:
        lines.append(
            f"(no audit events recorded for recommendation {rec_id} "
            f"on {database})"
        )
        known = audit.rec_ids(database)
        if known:
            lines.append(
                "known recommendation ids: "
                + ", ".join(str(r) for r in known)
            )
        return lines
    head = chain[0]
    registered = next(
        (e for e in chain if e.event_type == "recommendation_registered"), head
    )
    what = _payload_summary(registered.payload)
    if what:
        lines.append(f"recommendation: {what}")
    for entry in build_timeline(audit, database, rec_id, recorder, store):
        lines.append(f"  {_fmt_t(entry.at):>9}  {entry.title}")
        for detail in entry.details:
            lines.append(f"{'':>13}{detail}")
    return lines


def render_index(audit: AuditLog, database: str) -> List[str]:
    """The printable per-database decision index (no rec-id given)."""
    rows = decision_index(audit, database)
    lines = [f"== decisions recorded for {database} =="]
    if not rows:
        lines.append("(no recommendation decisions recorded)")
        return lines
    lines.append(
        f"  {'rec':>4}  {'state':<13} {'action':<7} {'source':<14} "
        f"{'events':>6}  first..last"
    )
    for row in rows:
        lines.append(
            f"  {row['rec_id']:>4}  {row['state']:<13} {row['action']:<7} "
            f"{row['source']:<14} {row['events']:>6}  "
            f"{_fmt_t(row['first_at'])}..{_fmt_t(row['last_at'])}"
        )
    return lines
