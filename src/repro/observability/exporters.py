"""Exporters: Prometheus-style text exposition and a JSON dump.

Both exporters render a :class:`~repro.observability.metrics.MetricsRegistry`
(plus, for JSON, optional spans and profiler rows) deterministically:
series are ordered by name then labels, floats are emitted with
``repr``-stable formatting, and no wall-clock timestamps appear — the
same run always produces byte-identical output, which the golden tests
rely on.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.observability.metrics import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiling import Profiler
from repro.observability.spans import SpanRecorder


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash first — escaping it last would re-escape the markers the
    other two substitutions just produced.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (HELP/TYPE plus one line per series)."""
    lines: List[str] = []
    seen_help = set()
    for series in registry.all_series():
        if series.name not in seen_help:
            spec = CATALOG.get(series.name)
            help_text = spec.description if spec else series.name
            lines.append(f"# HELP {series.name} {help_text}")
            lines.append(f"# TYPE {series.name} {series.kind}")
            seen_help.add(series.name)
        metric = series.metric
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{series.name}{_label_str(series.labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, bucket in zip(metric.bounds, metric.bucket_counts):
                cumulative += bucket
                labels = series.labels + (("le", _format_value(bound)),)
                lines.append(
                    f"{series.name}_bucket{_label_str(labels)} {cumulative}"
                )
            labels = series.labels + (("le", "+Inf"),)
            lines.append(
                f"{series.name}_bucket{_label_str(labels)} {metric.count}"
            )
            lines.append(
                f"{series.name}_sum{_label_str(series.labels)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(
                f"{series.name}_count{_label_str(series.labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def json_export(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
    profiler: Optional[Profiler] = None,
    audit=None,
    history=None,
) -> dict:
    """A JSON-serializable snapshot of the whole telemetry state.

    The ``metrics`` list is the shared schema the benchmarks also emit
    through (``BENCH_*.json`` trajectories), so one tool can plot both
    service runs and micro-benchmarks.
    """
    metrics = []
    for series in registry.all_series():
        spec = CATALOG.get(series.name)
        entry = {
            "name": series.name,
            "kind": series.kind,
            "unit": spec.unit if spec else "",
            "labels": {k: v for k, v in series.labels},
        }
        metric = series.metric
        if isinstance(metric, (Counter, Gauge)):
            entry["value"] = metric.value
        elif isinstance(metric, Histogram):
            entry.update(
                count=metric.count,
                sum=metric.sum,
                bounds=list(metric.bounds),
                bucket_counts=list(metric.bucket_counts),
                overflow=metric.overflow,
                p50=metric.p50,
                p95=metric.p95,
                p99=metric.p99,
            )
        metrics.append(entry)
    out = {"schema": "repro-telemetry-v1", "metrics": metrics}
    if recorder is not None:
        out["spans"] = [
            {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "kind": s.kind,
                "database": s.database,
                "start": s.start,
                "end": s.end,
                "outcome": s.outcome,
                "attributes": s.attributes,
            }
            for s in recorder.spans()
        ]
    if profiler is not None:
        out["hot_paths"] = [
            {
                "name": row.name,
                "calls": row.calls,
                "real_ms": row.real_ms,
                "sim_ms": row.sim_ms,
            }
            for row in profiler.rows()
        ]
    if audit is not None:
        # Same per-event shape as the JSONL dump, one object per event.
        out["audit"] = [
            json.loads(event.to_json_line()) for event in audit.events()
        ]
    if history is not None:
        # Accepts a TelemetryHistory or its TimeSeriesStore.  The
        # tiered snapshot is deterministic for deterministic series;
        # wall-flagged series are host-dependent by design.
        store = getattr(history, "store", history)
        out["history"] = store.export()
    return out


def json_text(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
    profiler: Optional[Profiler] = None,
    indent: int = 2,
    audit=None,
    history=None,
) -> str:
    return json.dumps(
        json_export(registry, recorder, profiler, audit=audit, history=history),
        indent=indent,
        sort_keys=False,
    )
