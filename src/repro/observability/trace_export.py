"""Chrome/Perfetto ``trace_event`` export and critical-path rendering.

The fleet-parallel service times every tick phase on both sides of the
process pipe (:mod:`repro.parallel.timing`) and merges worker spans with
dual sim/wall clocks.  This module renders that data three ways:

- :func:`trace_event_json` — the Chrome ``trace_event`` JSON format
  (loadable in Perfetto / ``chrome://tracing``): one track per worker
  process plus a parent control-plane track, phase brackets and spans as
  complete ("X") events;
- :func:`attribution_summary` — per-phase totals, the share of tick
  wall-clock the phase timers explain (the attribution-coverage figure),
  and a serial-fraction / Amdahl ceiling estimate;
- :func:`render_critical_path` — the ``repro profile`` table: top phases
  and hot paths by exclusive wall time.

Everything here is presentation over already-collected data: no clocks
are read, so rendering the same collected run twice is byte-stable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.observability.profiling import HotPathStat
from repro.observability.spans import Span

#: Track index of the parent (dispatch + merge) timeline.
PARENT_TRACK = 0


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One complete event on one track, in seconds since the run epoch."""

    track: int  # 0 = parent control plane, 1 + shard_index = worker
    name: str
    ts: float  # seconds since the profiling epoch
    dur: float  # seconds (0.0 for counter samples)
    category: str  # "phase" | "span" | "counter"
    args: Dict[str, object] = dataclasses.field(default_factory=dict)


def default_track_name(track: int) -> str:
    if track == PARENT_TRACK:
        return "control plane (parent)"
    return f"shard-{track - 1} worker"


def span_trace_events(
    spans: Iterable[Span],
    db_to_track: Optional[Dict[str, int]] = None,
) -> List[TraceEvent]:
    """Closed spans with wall clocks as trace events on their worker track.

    Spans without captured wall timestamps (e.g. replayed from an old
    audit dump) are skipped — the timeline only shows what was measured.
    """
    db_to_track = db_to_track or {}
    events = []
    for span in spans:
        if span.wall_start is None or span.wall_end is None:
            continue
        events.append(
            TraceEvent(
                track=db_to_track.get(span.database, PARENT_TRACK),
                name=span.kind,
                ts=span.wall_start,
                dur=max(0.0, span.wall_end - span.wall_start),
                category="span",
                args={
                    "database": span.database,
                    "span_id": span.span_id,
                    "sim_start_min": span.start,
                    "sim_end_min": span.end,
                    "outcome": span.outcome,
                },
            )
        )
    return events


def history_counter_events(
    samples: Sequence[tuple],
    track: int = PARENT_TRACK,
) -> List[TraceEvent]:
    """Telemetry-history samples as Perfetto counter-track events.

    ``samples`` is a sequence of ``(wall_ts_seconds, {series: value})``
    pairs as collected by the fleet service at each finalize; each
    series renders as its own ``history:<series>`` counter track over
    the parent timeline.
    """
    events = []
    for ts, values in samples:
        for series in sorted(values):
            events.append(
                TraceEvent(
                    track=track,
                    name=f"history:{series}",
                    ts=ts,
                    dur=0.0,
                    category="counter",
                    args={"value": values[series]},
                )
            )
    return events


def trace_event_json(
    events: Sequence[TraceEvent],
    track_names: Optional[Dict[int, str]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> dict:
    """The Chrome ``trace_event`` document for a collected run.

    Events are emitted sorted by ``(track, ts, dur)`` so every track's
    timestamps are monotonically non-decreasing — a property the test
    suite asserts and Perfetto's importer is happiest with.  Timestamps
    are microseconds (the format's unit).
    """
    track_names = track_names or {}
    trace_events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro fleet control plane"},
        }
    ]
    for track in sorted({e.track for e in events}):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track,
                "args": {
                    "name": track_names.get(track, default_track_name(track))
                },
            }
        )
    ordered = sorted(events, key=lambda e: (e.track, e.ts, e.dur, e.name))
    for event in ordered:
        if event.category == "counter":
            # Counter ("C") events render as value-over-time counter
            # tracks in Perfetto; they carry a sample, not a duration.
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "C",
                    "pid": 1,
                    "tid": event.track,
                    "ts": round(event.ts * 1e6, 3),
                    "args": event.args,
                }
            )
            continue
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "pid": 1,
                "tid": event.track,
                "ts": round(event.ts * 1e6, 3),
                "dur": round(event.dur * 1e6, 3),
                "args": event.args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


# ----------------------------------------------------------------------
# Attribution math


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def attribution_summary(
    tick_rows: Sequence[dict],
    parent_phases: Sequence[str],
    parallel_phase: str = "wait",
) -> dict:
    """Aggregate per-tick phase rows into the attribution figure.

    ``tick_rows`` is :attr:`repro.parallel.timing.TickPhaseTimer.ticks`:
    one ``{"wall_seconds": float, "phases": {phase: seconds}}`` row per
    tick.  Coverage counts only the **parent-side** phases (they
    partition the tick); worker-side phases run nested inside
    ``parallel_phase`` and are reported but never double-counted.

    The serial fraction treats ``parallel_phase`` (the time the parent
    spends blocked on concurrently-executing shards) as the only
    parallelizable portion; Amdahl's law then bounds the achievable
    speedup at ``1 / serial_fraction``.
    """
    wall = sum(row["wall_seconds"] for row in tick_rows)
    totals: Dict[str, float] = {}
    per_phase: Dict[str, List[float]] = {}
    for row in tick_rows:
        for phase, seconds in row["phases"].items():
            totals[phase] = totals.get(phase, 0.0) + seconds
            per_phase.setdefault(phase, []).append(seconds)
    covered = sum(totals.get(phase, 0.0) for phase in parent_phases)
    coverage = covered / wall if wall else 0.0
    parallel_seconds = totals.get(parallel_phase, 0.0)
    parallel_fraction = parallel_seconds / wall if wall else 0.0
    serial_fraction = max(0.0, 1.0 - parallel_fraction)
    return {
        "ticks": len(tick_rows),
        "wall_seconds": wall,
        "phase_totals": dict(sorted(totals.items())),
        "phase_p95": {
            phase: _percentile(values, 0.95)
            for phase, values in sorted(per_phase.items())
        },
        "covered_seconds": covered,
        "coverage": coverage,
        "parallel_phase": parallel_phase,
        "parallel_fraction": parallel_fraction,
        "serial_fraction": serial_fraction,
        "amdahl_max_speedup": (
            1.0 / serial_fraction if serial_fraction > 0 else float("inf")
        ),
    }


def render_critical_path(
    summary: dict,
    hot_paths: Optional[Sequence[HotPathStat]] = None,
    top_n: int = 10,
    backend: str = "",
    workers: int = 0,
) -> List[str]:
    """The ``repro profile`` critical-path table as printable lines."""
    header = "== fleet critical path"
    if backend:
        header += f" ({workers} {backend} worker(s))"
    header += " =="
    lines = [header]
    wall = summary["wall_seconds"]
    ticks = summary["ticks"] or 1
    lines.append(
        f"  {'phase':<14} {'total s':>9} {'mean s':>9} {'p95 s':>9} "
        f"{'share':>7}"
    )
    ranked = sorted(
        summary["phase_totals"].items(), key=lambda kv: (-kv[1], kv[0])
    )
    for phase, total in ranked:
        share = total / wall if wall else 0.0
        lines.append(
            f"  {phase:<14} {total:>9.3f} {total / ticks:>9.3f} "
            f"{summary['phase_p95'].get(phase, 0.0):>9.3f} {share:>6.1%}"
        )
    lines.append(
        "  (worker_* phases run concurrently inside 'wait' across all "
        "workers, so their share of wall-clock may exceed 100%)"
    )
    lines.append(
        f"  attribution coverage: {summary['coverage']:.1%} of "
        f"{wall:.2f}s tick wall-clock across {summary['ticks']} tick(s)"
    )
    lines.append(
        f"  parallel ({summary['parallel_phase']}) fraction: "
        f"{summary['parallel_fraction']:.1%}  serial fraction: "
        f"{summary['serial_fraction']:.1%}  Amdahl max speedup: "
        + (
            f"{summary['amdahl_max_speedup']:.1f}x"
            if summary["amdahl_max_speedup"] != float("inf")
            else "unbounded"
        )
    )
    if hot_paths:
        lines.append(f"  hot paths (merged across workers, top {top_n}):")
        lines.append(
            f"    {'path':<26} {'calls':>9} {'real ms':>10} {'sim ms':>12}"
        )
        for row in list(hot_paths)[:top_n]:
            lines.append(
                f"    {row.name:<26} {row.calls:>9} "
                f"{row.real_ms:>10.1f} {row.sim_ms:>12.1f}"
            )
    return lines
