"""SLO catalog and multi-window burn-rate evaluation over history.

The paper's operators do not stare at raw telemetry — they hold the
fleet to objectives ("reverts stay rare", "validation rarely fails",
"the plan cache stays warm") and page when the error budget burns too
fast.  This module declares those objectives in a linted
:data:`SLO_CATALOG` and evaluates each with the standard *multi-window
burn rate* recipe: an SLO alerts only when **both** a short window
(recent ticks — is it burning *now*?) and a long window (has enough
budget actually burned?) exceed the burn threshold.  Short windows
alone page on blips; long windows alone page hours late; requiring
both is the SRE-workbook compromise.

Burn rate is distance-from-objective, normalized so 1.0 always means
"the window ran exactly at objective".  For a "stay below" objective
(``kind="max"``, e.g. revert rate ≤ 0.30) that is ``burn = mean /
objective``; for a "stay above" objective (``kind="min"``, e.g.
plan-cache hit rate ≥ 0.005) it is the symmetric ``burn = objective /
mean`` — halving the hit rate doubles the burn, and a window that
never hits burns infinitely fast.  Burn 2.0 means the budget burns
twice as fast as allowed.

Every SLO reads a series from
:data:`~repro.observability.timeseries.SAMPLE_CATALOG` (validated at
import), so the evaluation works over rollup tiers and stays exact:
buckets carry ``sum``/``count``, and window means lose nothing to
downsampling.  Non-advisory SLOs also feed the existing
:class:`~repro.observability.alerts.AlertWatchdog` via
:func:`burn_alert_rules`, so SLO pages join the same transition-only
audit stream (``alert_raised`` / ``alert_resolved``) the dashboard and
``repro explain`` already render.  Advisory SLOs (wall-clock budgets)
appear in reports but never page — wall time is host-dependent and
excluded from the determinism contract.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.errors import TelemetryError
from repro.observability.alerts import AlertRule
from repro.observability.timeseries import SAMPLE_CATALOG, TimeSeriesStore

#: Version of the JSONL status schema below.  Bump when a record's
#: meaning changes; :func:`replay_statuses` refuses newer ones.
SLO_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """One catalog entry: an objective over a sampled series."""

    name: str
    description: str
    #: Sampled series (must be in SAMPLE_CATALOG) the objective reads.
    series: str
    #: The objective value (threshold the window mean is held to).
    objective: float
    #: "max": window mean must stay <= objective; "min": >= objective.
    kind: str
    unit: str
    #: Burn-rate windows, in ticks (short = paging speed, long = paging
    #: confidence); both must exceed ``burn_threshold`` to alert.
    short_window: int = 16
    long_window: int = 256
    burn_threshold: float = 1.0
    #: Minimum samples in the short window before the SLO can alert.
    min_samples: int = 8
    #: Advisory SLOs render in reports but never feed the watchdog
    #: (wall-clock budgets are host-dependent).
    advisory: bool = False


def _spec(**kwargs) -> Tuple[str, SloSpec]:
    spec = SloSpec(**kwargs)
    return spec.name, spec


#: The SLO taxonomy.  Names are stable public API: the watchdog rules,
#: the `repro slo` report, the JSONL dump, and the observability-name
#: lint all key on them.  Non-advisory names must also appear in
#: ALERT_CATALOG so burn alerts pass AlertRule validation.
SLO_CATALOG: Dict[str, SloSpec] = dict(
    [
        _spec(
            name="slo_revert_rate",
            description="Validation-triggered reverts stay rare: the "
            "fleet revert rate holds at or under the objective "
            "(the paper's Section 8.1 headline guarantee).",
            series="revert_rate",
            objective=0.30,
            kind="max",
            unit="ratio",
        ),
        _spec(
            name="slo_validation_failure_rate",
            description="Most implemented indexes survive validation: "
            "the REGRESSED share of completed validations holds at or "
            "under the objective.",
            series="validation_failure_rate",
            objective=0.50,
            kind="max",
            unit="ratio",
        ),
        _spec(
            name="slo_plan_cache_hit_rate",
            description="The optimizer plan cache stays warm: the "
            "fleet-wide hit rate holds at or above the objective "
            "(calibrated to the simulator's closed-loop workloads, "
            "where constant schema churn keeps absolute hit rates in "
            "the low percents).",
            series="plan_cache_hit_rate",
            objective=0.005,
            kind="min",
            unit="ratio",
        ),
        _spec(
            name="slo_time_to_implement",
            description="Accepted recommendations land promptly: p95 "
            "simulated minutes spent IMPLEMENTING holds at or under "
            "the objective.",
            series="time_to_implement_minutes",
            objective=240.0,
            kind="max",
            unit="minutes",
            burn_threshold=1.5,
        ),
        _spec(
            name="slo_tick_wall_seconds",
            description="Control-plane ticks fit the wall budget "
            "(advisory: wall time is host-dependent and never pages).",
            series="tick_wall_seconds",
            objective=5.0,
            kind="max",
            unit="seconds",
            advisory=True,
        ),
    ]
)

for _slo in SLO_CATALOG.values():
    if _slo.series not in SAMPLE_CATALOG:
        raise TelemetryError(
            f"SLO {_slo.name!r} reads series {_slo.series!r} which is "
            "not in SAMPLE_CATALOG"
        )
    if _slo.kind not in ("max", "min"):
        raise TelemetryError(f"SLO {_slo.name!r} kind must be max|min")
    if _slo.kind == "min" and not _slo.objective > 0.0:
        raise TelemetryError(
            f"SLO {_slo.name!r}: min-kind objectives must be positive "
            "so the objective-over-mean burn rate is well defined"
        )
del _slo


@dataclasses.dataclass
class SloStatus:
    """One SLO's evaluation: window means, burn rates, alerting state."""

    name: str
    series: str
    objective: float
    kind: str
    unit: str
    advisory: bool
    short_window: int
    long_window: int
    burn_threshold: float
    short_mean: float
    long_mean: float
    short_burn: float
    long_burn: float
    samples: int
    alerting: bool

    @property
    def burn(self) -> float:
        """The governing burn rate (the lower of the two windows —
        both must exceed the threshold for the SLO to alert)."""
        return min(self.short_burn, self.long_burn)

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["schema_version"] = SLO_SCHEMA_VERSION
        payload["burn"] = self.burn
        return payload


def _burn(mean: float, spec: SloSpec) -> float:
    if spec.kind == "max":
        if spec.objective <= 0.0:
            return float("inf") if mean > 0.0 else 0.0
        return mean / spec.objective
    if mean <= 0.0:
        return float("inf")
    return spec.objective / mean


def evaluate_slo(store: TimeSeriesStore, spec: SloSpec) -> SloStatus:
    """Evaluate one SLO against the history store."""
    short_mean, samples = store.mean(spec.series, spec.short_window)
    long_mean, _long_samples = store.mean(spec.series, spec.long_window)
    short_burn = _burn(short_mean, spec)
    long_burn = _burn(long_mean, spec)
    alerting = (
        not spec.advisory
        and samples >= spec.min_samples
        and short_burn >= spec.burn_threshold
        and long_burn >= spec.burn_threshold
    )
    return SloStatus(
        name=spec.name,
        series=spec.series,
        objective=spec.objective,
        kind=spec.kind,
        unit=spec.unit,
        advisory=spec.advisory,
        short_window=spec.short_window,
        long_window=spec.long_window,
        burn_threshold=spec.burn_threshold,
        short_mean=short_mean,
        long_mean=long_mean,
        short_burn=short_burn,
        long_burn=long_burn,
        samples=samples,
        alerting=alerting,
    )


def evaluate_catalog(
    store: TimeSeriesStore,
    catalog: Optional[Dict[str, SloSpec]] = None,
) -> List[SloStatus]:
    """Evaluate every cataloged SLO, in stable name order."""
    specs = catalog if catalog is not None else SLO_CATALOG
    return [evaluate_slo(store, specs[name]) for name in sorted(specs)]


# ----------------------------------------------------------------------
# Watchdog integration


def burn_alert_rules(
    store: TimeSeriesStore,
    catalog: Optional[Dict[str, SloSpec]] = None,
) -> List[AlertRule]:
    """AlertRules for every non-advisory SLO, bound to ``store``.

    Each rule's value is the governing (minimum-of-windows) burn rate;
    it fires at ``burn_threshold``, so SLO pages ride the existing
    watchdog transition machinery: raised/resolved audit events, the
    ``alerts_firing`` gauge, the dashboard panel, explain timelines.
    The registry argument the watchdog passes is ignored — burn rates
    read history, not point-in-time gauges.
    """
    specs = catalog if catalog is not None else SLO_CATALOG
    rules = []
    for name in sorted(specs):
        spec = specs[name]
        if spec.advisory:
            continue

        def value(_registry, spec=spec):
            status = evaluate_slo(store, spec)
            return status.burn, status.samples

        rules.append(
            AlertRule(
                name=spec.name,
                threshold=spec.burn_threshold,
                direction="above",
                min_samples=spec.min_samples,
                value=value,
            )
        )
    return rules


# ----------------------------------------------------------------------
# Report rendering and JSONL persistence (mirrors audit.py)


def render_slo_report(statuses: List[SloStatus]) -> List[str]:
    """Fixed-width report lines for the `repro slo` CLI."""
    lines = [
        "SLO burn-rate report",
        f"  {'slo':<30} {'window mean (short/long)':>26} "
        f"{'burn (short/long)':>19} {'objective':>10}  state",
    ]
    for status in statuses:
        if status.alerting:
            state = "ALERTING"
        elif status.advisory:
            state = "advisory"
        elif status.samples < 1:
            state = "no data"
        else:
            state = "ok"
        bound = "<=" if status.kind == "max" else ">="
        lines.append(
            f"  {status.name:<30} "
            f"{status.short_mean:>12.4f}/{status.long_mean:<13.4f} "
            f"{status.short_burn:>9.2f}/{status.long_burn:<9.2f} "
            f"{bound} {status.objective:<7g}  {state}"
        )
    alerting = [s.name for s in statuses if s.alerting]
    if alerting:
        lines.append(f"  burn-rate alerts: {', '.join(alerting)}")
    else:
        lines.append("  burn-rate alerts: none")
    return lines


def dump_statuses(
    statuses: List[SloStatus], destination: Union[str, IO[str]]
) -> int:
    """Write statuses as schema-versioned JSONL; returns the count."""
    text = "".join(
        json.dumps(status.to_payload(), sort_keys=True) + "\n"
        for status in statuses
    )
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w") as fp:
            fp.write(text)
    return len(statuses)


def replay_statuses(source: Union[str, Iterable[str]]) -> List[SloStatus]:
    """Rebuild statuses from JSONL text, lines, or a file path."""
    if isinstance(source, str):
        if not source.strip():
            lines: Iterable[str] = []
        elif "\n" not in source and not source.lstrip().startswith("{"):
            with open(source) as fp:
                lines = fp.read().splitlines()
        else:
            lines = source.splitlines()
    else:
        lines = source
    fields = {f.name for f in dataclasses.fields(SloStatus)}
    statuses = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        version = raw.get("schema_version", 0)
        if version > SLO_SCHEMA_VERSION:
            raise TelemetryError(
                f"SLO record schema v{version} is newer than this "
                f"reader (v{SLO_SCHEMA_VERSION})"
            )
        statuses.append(
            SloStatus(**{k: v for k, v in raw.items() if k in fields})
        )
    return statuses
