"""Span-based tracing of the control plane's state machines.

The paper's engineers debug stuck state machines by following one
recommendation's journey through the micro-services (Sections 3, 4, 8).
A :class:`Tracer` reproduces that view: every recommendation gets a root
span, every state it occupies (Recommend -> Implement -> Validate ->
Revert/Complete) gets a child span, and every DTA/MI tuning session gets
its own span — all timestamped in *simulated* minutes so traces are
deterministic.

Spans are recorded into a :class:`SpanRecorder`, queryable by database
or kind, which the ``repro telemetry`` dashboard uses to render span
trees and the top-N slowest tuning sessions.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.observability.compliance import ensure_compliant

#: Every span kind the repo emits, linted by
#: ``scripts/check_observability_names.py`` the same way metric names
#: are: a ``tracer.start("...")`` call site with a literal kind must use
#: a name declared here.
SPAN_KIND_CATALOG: Dict[str, str] = {
    "recommendation": "Root span: one recommendation's full lifecycle.",
    "recommend": "The record's stay in the ACTIVE (recommended) state.",
    "implement": "The record's stay in the IMPLEMENTING state.",
    "validate": "The record's stay in the VALIDATING state.",
    "revert": "The record's stay in the REVERTING state.",
    "retry": "The record's stay in the RETRY state.",
    "dta_session": "One DTA tuning session over a managed database.",
    "analysis": "One recommender analysis pass (MI or DTA source).",
}


@dataclasses.dataclass
class Span:
    """One timed unit of state-machine or tuning work.

    Spans carry **dual clocks**: ``start``/``end`` are simulated minutes
    (deterministic, what the state-machine assertions and the merge
    compare), while ``wall_start``/``wall_end`` are real
    ``perf_counter`` seconds captured as a side channel so the trace
    exporter and :meth:`SpanRecorder.slowest` can rank by the host's
    actual time.  Wall values never participate in determinism checks —
    they differ run to run by construction.
    """

    span_id: int
    kind: str
    database: str
    start: float  # simulated minutes
    parent_id: Optional[int] = None
    end: Optional[float] = None
    outcome: str = ""
    attributes: Dict[str, object] = dataclasses.field(default_factory=dict)
    wall_start: Optional[float] = None  # perf_counter seconds
    wall_end: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        """Simulated minutes from start to end; None while still open."""
        return None if self.end is None else self.end - self.start

    @property
    def wall_duration(self) -> Optional[float]:
        """Real seconds from start to end; None unless both were captured."""
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start


class SpanRecorder:
    """Store of finished and in-flight spans with query helpers.

    Retention is bounded by ``max_spans`` (mirroring the EventBus
    ``history_limit``): when the store exceeds the cap, the oldest
    *finished* root trees — a root plus all its descendants, every span
    closed — are evicted whole, oldest root first, until the store is
    back at or under the cap.  Trees with any open span are never
    evicted (the tracer still holds them), so the store can transiently
    exceed the cap while everything in it is live.
    """

    def __init__(self, max_spans: Optional[int] = 50_000) -> None:
        if max_spans is not None and max_spans < 1:
            raise TelemetryError("max_spans must be at least 1 (or None)")
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._children: Dict[int, List[int]] = {}

    def record(self, span: Span) -> None:
        self._spans.append(span)
        self._by_id[span.span_id] = span
        if span.parent_id is not None:
            self._children.setdefault(span.parent_id, []).append(span.span_id)
        if self.max_spans is not None and len(self._spans) > self.max_spans:
            self._evict()

    def _tree_ids(self, span_id: int) -> List[int]:
        ids = [span_id]
        for child in self._children.get(span_id, ()):
            ids.extend(self._tree_ids(child))
        return ids

    def _evict(self) -> None:
        """Drop oldest finished root trees until at/under the cap."""
        overflow = len(self._spans) - self.max_spans
        evicted: set = set()
        for span in self._spans:
            if overflow <= 0:
                break
            if span.parent_id is not None:
                continue
            tree = self._tree_ids(span.span_id)
            if any(self._by_id[i].open for i in tree):
                continue
            evicted.update(tree)
            overflow -= len(tree)
        if not evicted:
            return
        self._spans = [s for s in self._spans if s.span_id not in evicted]
        for span_id in evicted:
            del self._by_id[span_id]
            self._children.pop(span_id, None)

    # ------------------------------------------------------------------
    # Queries

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def spans(
        self,
        kind: Optional[str] = None,
        database: Optional[str] = None,
        open_only: bool = False,
    ) -> List[Span]:
        out = []
        for span in self._spans:
            if kind is not None and span.kind != kind:
                continue
            if database is not None and span.database != database:
                continue
            if open_only and not span.open:
                continue
            out.append(span)
        return out

    def roots(self, database: Optional[str] = None) -> List[Span]:
        return [
            s
            for s in self._spans
            if s.parent_id is None
            and (database is None or s.database == database)
        ]

    def children(self, span_id: int) -> List[Span]:
        return [self._by_id[i] for i in self._children.get(span_id, ())]

    def tree(self, span_id: int) -> Tuple[Span, List]:
        """(span, [subtrees]) rooted at ``span_id``."""
        span = self._by_id[span_id]
        return span, [self.tree(child) for child in self._children.get(span_id, ())]

    def slowest(
        self,
        kinds: Tuple[str, ...],
        n: int = 5,
        database: Optional[str] = None,
        clock: str = "sim",
    ) -> List[Span]:
        """Top-``n`` closed spans of the given kinds by duration.

        ``clock="sim"`` ranks by simulated minutes (deterministic, the
        default); ``clock="wall"`` ranks by captured real seconds —
        spans without wall timestamps rank last.
        """
        if clock not in ("sim", "wall"):
            raise TelemetryError(f"clock must be 'sim' or 'wall', not {clock!r}")
        closed = [
            s
            for s in self._spans
            if s.kind in kinds
            and s.end is not None
            and (database is None or s.database == database)
        ]
        if clock == "wall":
            closed.sort(key=lambda s: (-(s.wall_duration or 0.0), s.span_id))
        else:
            closed.sort(key=lambda s: (-(s.duration or 0.0), s.span_id))
        return closed[:n]

    def __len__(self) -> int:
        return len(self._spans)


class Tracer:
    """Creates and closes spans against a :class:`SpanRecorder`.

    Simulated timestamps are passed explicitly by the caller (the control
    plane already has ``now`` in hand everywhere), keeping the tracer free
    of clock dependencies.
    """

    def __init__(self, recorder: Optional[SpanRecorder] = None) -> None:
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self._ids = itertools.count(1)

    def start(
        self,
        kind: str,
        database: str,
        at: float,
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        ensure_compliant(attributes, f"attributes of span {kind!r}")
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            database=database,
            start=at,
            parent_id=parent.span_id if parent is not None else None,
            attributes=dict(attributes),
            wall_start=time.perf_counter(),
        )
        self.recorder.record(span)
        return span

    def end(self, span: Span, at: float, outcome: str = "ok", **attributes) -> Span:
        if span.end is not None:
            raise TelemetryError(
                f"span {span.span_id} ({span.kind}) closed twice"
            )
        if at < span.start:
            raise TelemetryError(
                f"span {span.span_id} would end before it started"
            )
        ensure_compliant(attributes, f"attributes of span {span.kind!r}")
        span.end = at
        span.outcome = outcome
        span.wall_end = time.perf_counter()
        span.attributes.update(attributes)
        return span
