"""Telemetry compliance: no customer data leaves the database boundary.

The paper's service is debuggable at fleet scale precisely because its
telemetry is *anonymized*: events carry identifiers and aggregates, never
query text, literals, or parameter values (Section 1.2).  This module is
the single enforcement point — the event bus, metric labels, and span
attributes all pass their payloads through :func:`ensure_compliant`,
which recurses into nested containers so a forbidden key cannot hide one
level down.
"""

from __future__ import annotations

from typing import Iterable, List

#: Payload keys that would carry customer data.  Kept deliberately small
#: and exact — these are the fields SQL Server surfaces that the paper's
#: pipeline scrubs before egress.
FORBIDDEN_KEYS = frozenset({"query_text", "text", "literal", "parameters"})


def find_forbidden_keys(value: object, path: str = "") -> List[str]:
    """Return the paths of every forbidden key reachable inside ``value``.

    Recurses into dicts (checking keys), and into lists/tuples/sets so a
    payload like ``{"stats": [{"query_text": ...}]}`` is caught.  Paths
    are dotted/bracketed for readable error messages.
    """
    found: List[str] = []
    if isinstance(value, dict):
        for key, child in value.items():
            key_path = f"{path}.{key}" if path else str(key)
            if isinstance(key, str) and key in FORBIDDEN_KEYS:
                found.append(key_path)
            found.extend(find_forbidden_keys(child, key_path))
    elif isinstance(value, (list, tuple, set, frozenset)):
        for i, child in enumerate(value):
            found.extend(find_forbidden_keys(child, f"{path}[{i}]"))
    return found


def ensure_compliant(payload: object, context: str = "telemetry payload") -> None:
    """Raise ``ValueError`` if ``payload`` contains customer-data keys."""
    leaked = find_forbidden_keys(payload)
    if leaked:
        raise ValueError(
            f"{context} contains customer data keys: {sorted(leaked)}"
        )


def ensure_clean_labels(labels: Iterable[str], context: str = "metric labels") -> None:
    """Raise ``ValueError`` if any label name is a forbidden key."""
    leaked = sorted(name for name in labels if name in FORBIDDEN_KEYS)
    if leaked:
        raise ValueError(f"{context} contain customer data keys: {leaked}")
