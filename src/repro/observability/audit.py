"""Decision provenance: the append-only, causally-linked audit stream.

The paper's lesson is that auto-indexing earns trust only when every
automated action is *auditable* — a customer (or an on-call engineer)
must be able to reconstruct why an index was created, why validation
judged it REGRESSED, and why a revert fired (Sections 2, 8).  The
metrics/span layer answers "how much" and "how long"; this module
answers "why": every decision point in the lifecycle emits a typed
:class:`AuditEvent` carrying the evidence behind the decision (what-if
estimated costs, failed policy predicates, Welch t-test statistics,
lock-wait timings).

Design points:

- **Append-only.**  Events are immutable and sequence-numbered; the log
  never rewrites history.
- **Typed.**  Every event type is declared in :data:`AUDIT_CATALOG`
  with a description and the paper lifecycle state it evidences; an
  undeclared type raises :class:`~repro.errors.TelemetryError` (and the
  ``scripts/check_observability_names.py`` lint enforces the same
  taxonomy statically).
- **Causally linked.**  Events that belong to a recommendation carry its
  ``rec_id`` and a ``parent_seq`` pointing at the previous event of the
  same chain, so a chain can be followed without scanning the log.
- **Schema-versioned, JSONL-persistable.**  Each event records the
  payload schema version; :meth:`AuditLog.dump` / :meth:`AuditLog.replay`
  round-trip the whole stream through JSON lines, which is how the
  ``repro explain --audit`` path reconstructs decisions offline.
- **Compliant.**  Every payload passes the same recursive customer-data
  scrub as event-bus payloads, metric labels, and span attributes.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, IO, Iterable, List, Optional, Union

from repro.errors import TelemetryError
from repro.observability.compliance import ensure_compliant

#: Version of the event payload schemas below.  Bump when a payload's
#: meaning changes; :meth:`AuditLog.replay` refuses newer versions.
AUDIT_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class AuditEventSpec:
    """One catalog entry: the contract for an audit event type."""

    name: str
    description: str
    #: Paper lifecycle state the event evidences (None = fleet-level or
    #: chain-spine event).
    lifecycle_state: Optional[str]


def _spec(
    name: str, description: str, lifecycle_state: Optional[str] = None
) -> tuple:
    return name, AuditEventSpec(name, description, lifecycle_state)


#: The audit event taxonomy.  Names are stable public API: the explain
#: CLI, the JSONL schema, and the observability-name lint all key on
#: them.  ``lifecycle_state`` maps each event to the Section 4 state it
#: evidences (see DESIGN.md, "Decision provenance").
AUDIT_CATALOG: Dict[str, AuditEventSpec] = dict(
    [
        _spec("source_selected",
              "Recommender-source policy decision (MI vs DTA) with the "
              "predicate values that drove it.", "active"),
        _spec("candidates_generated",
              "One analysis pass produced candidates, with per-candidate "
              "what-if / DMV estimated costs.", "active"),
        _spec("candidate_rejected",
              "A candidate was filtered out of an analysis pass, with the "
              "failed predicate.", "active"),
        _spec("recommendation_registered",
              "A recommendation entered the state store (start of its "
              "audit chain).", "active"),
        _spec("recommendation_suppressed",
              "A re-proposed recommendation was suppressed (revert "
              "cooldown or an in-flight twin).", "active"),
        _spec("state_changed",
              "State-machine transition (the spine every evidence event "
              "hangs off).", None),
        _spec("implementation_started",
              "DDL began: online build or low-priority drop.",
              "implementing"),
        _spec("implementation_completed",
              "DDL finished, with build timing / lock-wait evidence.",
              "implementing"),
        _spec("validation_completed",
              "Validator judged the change, with per-statement Welch "
              "t-test inputs and verdicts.", "validating"),
        _spec("revert_decided",
              "Validation decided to revert, with the trigger predicate "
              "and the statements behind it.", "reverting"),
        _spec("revert_completed",
              "The revert DDL finished (index dropped or recreated).",
              "reverted"),
        _spec("retry_scheduled",
              "A transient failure parked the record in RETRY with "
              "back-off.", "retry"),
        _spec("error_raised",
              "A permanent failure (or exhausted retries) ended the "
              "record in ERROR.", "error"),
        _spec("health_action",
              "The health service corrected a stuck record or raised an "
              "incident.", None),
        _spec("alert_raised",
              "The alert-rules watchdog crossed a threshold.", None),
        _spec("alert_resolved",
              "A previously firing alert rule fell back under its "
              "threshold.", None),
        _spec("telemetry_anomaly",
              "The telemetry-history EWMA/z-score detector flagged an "
              "excursion on a sampled fleet series.", None),
    ]
)

#: Event types whose payload carries a ``state`` / ``to_state`` field
#: that advances the chain's lifecycle state (used by
#: :meth:`AuditLog.current_states`).
_STATE_BEARING = {"recommendation_registered": "state", "state_changed": "to_state"}


@dataclasses.dataclass(frozen=True)
class AuditEvent:
    """One immutable, sequence-numbered provenance record."""

    seq: int
    at: float  # simulated minutes
    event_type: str
    database: str
    rec_id: Optional[int]
    #: Sequence number of the previous event in the same rec_id chain
    #: (None for chain heads and fleet-level events).
    parent_seq: Optional[int]
    schema_version: int
    payload: dict

    def to_json_line(self) -> str:
        """One deterministic JSON line (sorted keys, no timestamps)."""
        return json.dumps(
            {
                "seq": self.seq,
                "at": self.at,
                "event_type": self.event_type,
                "database": self.database,
                "rec_id": self.rec_id,
                "parent_seq": self.parent_seq,
                "schema_version": self.schema_version,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json_line(cls, line: str) -> "AuditEvent":
        raw = json.loads(line)
        version = raw.get("schema_version", 0)
        if version > AUDIT_SCHEMA_VERSION:
            raise TelemetryError(
                f"audit event schema v{version} is newer than this "
                f"reader (v{AUDIT_SCHEMA_VERSION})"
            )
        return cls(
            seq=raw["seq"],
            at=raw["at"],
            event_type=raw["event_type"],
            database=raw["database"],
            rec_id=raw["rec_id"],
            parent_seq=raw["parent_seq"],
            schema_version=version,
            payload=raw["payload"],
        )


class AuditLog:
    """Append-only store of audit events with per-``rec_id`` chains."""

    def __init__(self) -> None:
        self._events: List[AuditEvent] = []
        self._chains: Dict[int, List[AuditEvent]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Emission

    def emit(
        self,
        at: float,
        event_type: str,
        database: str,
        rec_id: Optional[int] = None,
        **payload,
    ) -> AuditEvent:
        """Append one event; returns it.

        Raises :class:`~repro.errors.TelemetryError` for event types
        missing from :data:`AUDIT_CATALOG` or payloads that are not
        JSON-serializable, and ``ValueError`` when the payload carries
        customer-data keys.
        """
        if event_type not in AUDIT_CATALOG:
            raise TelemetryError(
                f"audit event type {event_type!r} is not in AUDIT_CATALOG "
                "(src/repro/observability/audit.py)"
            )
        ensure_compliant(payload, f"payload of audit event {event_type!r}")
        try:
            json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise TelemetryError(
                f"payload of audit event {event_type!r} is not "
                f"JSON-serializable: {exc}"
            ) from exc
        parent_seq = None
        if rec_id is not None and self._chains.get(rec_id):
            parent_seq = self._chains[rec_id][-1].seq
        self._seq += 1
        event = AuditEvent(
            seq=self._seq,
            at=at,
            event_type=event_type,
            database=database,
            rec_id=rec_id,
            parent_seq=parent_seq,
            schema_version=AUDIT_SCHEMA_VERSION,
            payload=payload,
        )
        self._append(event)
        return event

    def _append(self, event: AuditEvent) -> None:
        self._events.append(event)
        if event.rec_id is not None:
            self._chains.setdefault(event.rec_id, []).append(event)

    # ------------------------------------------------------------------
    # Queries

    def events(
        self,
        event_type: Optional[str] = None,
        database: Optional[str] = None,
        rec_id: Optional[int] = None,
    ) -> List[AuditEvent]:
        out = []
        for event in self._events:
            if event_type is not None and event.event_type != event_type:
                continue
            if database is not None and event.database != database:
                continue
            if rec_id is not None and event.rec_id != rec_id:
                continue
            out.append(event)
        return out

    def events_since(self, index: int) -> List[AuditEvent]:
        """Events appended after the first ``index`` (a drain cursor).

        The fleet-parallel layer drains each worker's log once per tick;
        slicing keeps the drain O(delta) instead of O(log).
        """
        return self._events[index:]

    def chain(self, rec_id: int) -> List[AuditEvent]:
        """Every event of one recommendation, in causal order."""
        return list(self._chains.get(rec_id, ()))

    def rec_ids(self, database: Optional[str] = None) -> List[int]:
        """Recommendation ids with at least one event, ascending."""
        if database is None:
            return sorted(self._chains)
        return sorted(
            rec_id
            for rec_id, chain in self._chains.items()
            if chain and chain[0].database == database
        )

    def counts_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.event_type] = counts.get(event.event_type, 0) + 1
        return counts

    def current_states(self) -> Dict[int, str]:
        """Last known lifecycle state per rec_id, replayed from chains.

        This is the audit stream's answer to
        :meth:`repro.controlplane.store.StateStore.count_by_state` — the
        replay property test asserts the two views agree exactly.
        """
        states: Dict[int, str] = {}
        for rec_id, chain in self._chains.items():
            for event in chain:
                field = _STATE_BEARING.get(event.event_type)
                if field is not None and field in event.payload:
                    states[rec_id] = event.payload[field]
        return states

    def state_counts(self) -> Dict[str, int]:
        """Count of chains currently in each lifecycle state."""
        counts: Dict[str, int] = {}
        for state in self.current_states().values():
            counts[state] = counts.get(state, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Persistence / replay

    def to_jsonl(self) -> str:
        """The whole stream as JSON lines (deterministic)."""
        return "".join(event.to_json_line() + "\n" for event in self._events)

    def dump(self, destination: Union[str, IO[str]]) -> int:
        """Write the stream as JSONL to a path or file object.

        Returns the number of events written.
        """
        text = self.to_jsonl()
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w") as fp:
                fp.write(text)
        return len(self._events)

    @classmethod
    def replay(cls, source: Union[str, Iterable[str]]) -> "AuditLog":
        """Rebuild a log from JSONL text, lines, or a file path.

        Sequence numbers, causal links, and chains are reconstructed
        exactly; emitting into a replayed log continues the sequence.
        """
        if isinstance(source, str):
            if not source.strip():
                lines = []
            elif "\n" not in source and not source.lstrip().startswith("{"):
                with open(source) as fp:
                    lines: Iterable[str] = fp.read().splitlines()
            else:
                lines = source.splitlines()
        else:
            lines = source
        log = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            event = AuditEvent.from_json_line(line)
            if event.seq <= log._seq:
                raise TelemetryError(
                    f"audit stream is not append-only: seq {event.seq} "
                    f"after {log._seq}"
                )
            log._seq = event.seq
            log._append(event)
        return log
