"""Lightweight profiling hooks for engine hot paths.

The simulator's own speed determines how large a fleet a run can cover,
so hot-path regressions (optimizer plan search, what-if costing, B+ tree
operations, Query Store aggregation) must be visible without attaching
an external profiler.  Call sites wrap work in :func:`profile` (a
context manager timing real ``perf_counter`` seconds) or tick
:func:`count` (a bare invocation counter for paths too hot to time,
like per-row B+ tree maintenance).  Both also accumulate *simulated*
cost where the caller knows it (e.g. charged what-if CPU ms), so one
table shows both the model's cost and the host's.

Profilers form a stack: the default global profiler aggregates across
every engine in the process (exactly what the fleet dashboard wants),
and tests swap in a fresh one with :func:`use_profiler`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, Iterator, List


@dataclasses.dataclass
class HotPathStat:
    """Accumulated cost of one named hot path."""

    name: str
    calls: int = 0
    real_seconds: float = 0.0
    sim_ms: float = 0.0

    @property
    def real_ms(self) -> float:
        return self.real_seconds * 1000.0


class _ProfileHandle:
    """Yielded by :func:`profile`; lets the body attach simulated cost."""

    __slots__ = ("sim_ms",)

    def __init__(self) -> None:
        self.sim_ms = 0.0


class Profiler:
    """Accumulates :class:`HotPathStat` rows keyed by hot-path name."""

    def __init__(self) -> None:
        self._stats: Dict[str, HotPathStat] = {}

    def _stat(self, name: str) -> HotPathStat:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = HotPathStat(name)
        return stat

    def record(self, name: str, real_seconds: float, sim_ms: float = 0.0) -> None:
        stat = self._stat(name)
        stat.calls += 1
        stat.real_seconds += real_seconds
        stat.sim_ms += sim_ms

    def count(self, name: str, sim_ms: float = 0.0) -> None:
        """Tick an invocation without timing it (cheapest possible hook)."""
        stat = self._stat(name)
        stat.calls += 1
        stat.sim_ms += sim_ms

    def stats(self) -> Dict[str, HotPathStat]:
        return dict(self._stats)

    def rows(self) -> List[HotPathStat]:
        """Stats ordered by real time spent (descending), then name."""
        return sorted(
            self._stats.values(), key=lambda s: (-s.real_seconds, s.name)
        )

    def reset(self) -> None:
        self._stats.clear()


_stack: List[Profiler] = [Profiler()]


def active() -> Profiler:
    """The profiler hot-path hooks currently record into."""
    return _stack[-1]


@contextlib.contextmanager
def use_profiler(profiler: Profiler) -> Iterator[Profiler]:
    """Temporarily make ``profiler`` the active one (tests, CLI runs)."""
    _stack.append(profiler)
    try:
        yield profiler
    finally:
        _stack.pop()


@contextlib.contextmanager
def profile(name: str) -> Iterator[_ProfileHandle]:
    """Time a block into the active profiler.

    The yielded handle's ``sim_ms`` may be set by the body to attach the
    simulated cost discovered while the block ran.
    """
    handle = _ProfileHandle()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        _stack[-1].record(name, time.perf_counter() - start, handle.sim_ms)


def count(name: str, sim_ms: float = 0.0) -> None:
    """Tick ``name`` on the active profiler without timing."""
    _stack[-1].count(name, sim_ms)
