"""Lightweight profiling hooks for engine hot paths.

The simulator's own speed determines how large a fleet a run can cover,
so hot-path regressions (optimizer plan search, what-if costing, B+ tree
operations, Query Store aggregation) must be visible without attaching
an external profiler.  Call sites wrap work in :func:`profile` (a
context manager timing real ``perf_counter`` seconds) or tick
:func:`count` (a bare invocation counter for paths too hot to time,
like per-row B+ tree maintenance).  Both also accumulate *simulated*
cost where the caller knows it (e.g. charged what-if CPU ms), so one
table shows both the model's cost and the host's.

Profilers form a stack: the default global profiler aggregates across
every engine in the process (exactly what the fleet dashboard wants),
and tests swap in a fresh one with :func:`use_profiler`.  The stack is
**thread-local** so shard workers running on the thread backend can each
install their own profiler without racing: every thread starts from the
shared default profiler and pushes/pops independently.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from typing import Dict, Iterator, List, Tuple


@dataclasses.dataclass
class HotPathStat:
    """Accumulated cost of one named hot path."""

    name: str
    calls: int = 0
    real_seconds: float = 0.0
    sim_ms: float = 0.0

    @property
    def real_ms(self) -> float:
        return self.real_seconds * 1000.0


class _ProfileHandle:
    """Yielded by :func:`profile`; lets the body attach simulated cost."""

    __slots__ = ("sim_ms",)

    def __init__(self) -> None:
        self.sim_ms = 0.0


class Profiler:
    """Accumulates :class:`HotPathStat` rows keyed by hot-path name."""

    def __init__(self) -> None:
        self._stats: Dict[str, HotPathStat] = {}

    def _stat(self, name: str) -> HotPathStat:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = HotPathStat(name)
        return stat

    def record(self, name: str, real_seconds: float, sim_ms: float = 0.0) -> None:
        stat = self._stat(name)
        stat.calls += 1
        stat.real_seconds += real_seconds
        stat.sim_ms += sim_ms

    def count(self, name: str, sim_ms: float = 0.0) -> None:
        """Tick an invocation without timing it (cheapest possible hook)."""
        stat = self._stat(name)
        stat.calls += 1
        stat.sim_ms += sim_ms

    def absorb(
        self,
        name: str,
        calls: int,
        real_seconds: float,
        sim_ms: float = 0.0,
    ) -> None:
        """Fold a pre-aggregated row (e.g. a shipped shard row) in.

        Unlike :meth:`record` this adds ``calls`` invocations at once —
        the merge path for hot-path rows that crossed a process pipe.
        """
        stat = self._stat(name)
        stat.calls += calls
        stat.real_seconds += real_seconds
        stat.sim_ms += sim_ms

    def stats(self) -> Dict[str, HotPathStat]:
        return dict(self._stats)

    def rows(self) -> List[HotPathStat]:
        """Stats ordered by real time spent (descending), then name."""
        return sorted(
            self._stats.values(), key=lambda s: (-s.real_seconds, s.name)
        )

    def drain_rows(self) -> List[Tuple[str, int, float, float]]:
        """Picklable ``(name, calls, real_seconds, sim_ms)`` rows in
        **name order** (a deterministic order, unlike :meth:`rows`' wall
        -clock order), then reset.  Shard workers ship these per tick."""
        rows = [
            (stat.name, stat.calls, stat.real_seconds, stat.sim_ms)
            for stat in sorted(self._stats.values(), key=lambda s: s.name)
        ]
        self._stats.clear()
        return rows

    def reset(self) -> None:
        self._stats.clear()


#: The process-wide default profiler every thread's stack starts from.
_default_profiler = Profiler()


class _ThreadStack(threading.local):
    """Per-thread profiler stack, rooted at the shared default."""

    def __init__(self) -> None:
        self.frames: List[Profiler] = [_default_profiler]


_stack = _ThreadStack()


def active() -> Profiler:
    """The profiler hot-path hooks currently record into (this thread)."""
    return _stack.frames[-1]


@contextlib.contextmanager
def use_profiler(profiler: Profiler) -> Iterator[Profiler]:
    """Temporarily make ``profiler`` the active one (tests, CLI runs).

    Scoped to the calling thread: worker threads that never call this
    still record into the shared default profiler."""
    _stack.frames.append(profiler)
    try:
        yield profiler
    finally:
        _stack.frames.pop()


@contextlib.contextmanager
def profile(name: str) -> Iterator[_ProfileHandle]:
    """Time a block into the active profiler.

    The yielded handle's ``sim_ms`` may be set by the body to attach the
    simulated cost discovered while the block ran.
    """
    handle = _ProfileHandle()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        _stack.frames[-1].record(
            name, time.perf_counter() - start, handle.sim_ms
        )


def count(name: str, sim_ms: float = 0.0) -> None:
    """Tick ``name`` on the active profiler without timing."""
    _stack.frames[-1].count(name, sim_ms)
