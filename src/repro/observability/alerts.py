"""Alert-rules watchdog over the fleet's :class:`MetricsRegistry`.

The paper's service pages an engineer when fleet-level rates drift
(Section 8: revert rates, validation outcomes); this module reproduces
that loop.  A :class:`AlertWatchdog` evaluates declarative threshold
rules against the registry on every ``ControlPlane.process()`` tick.
When a rule crosses its threshold the watchdog raises an alert, records
the evidence into the audit stream (``alert_raised`` /
``alert_resolved`` events), and exposes the firing set to the dashboard
panel.

Rule names live in :data:`ALERT_CATALOG` — the single observability
taxonomy shared with the metric catalog and the audit event catalog,
linted by ``scripts/check_observability_names.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.observability.audit import AuditLog
from repro.observability.metrics import MetricsRegistry

#: Database label used for fleet-level (cross-database) audit events.
FLEET_SCOPE = "<fleet>"


@dataclasses.dataclass(frozen=True)
class AlertRuleSpec:
    """One catalog entry: the contract for an alert rule name."""

    name: str
    description: str


def _spec(name: str, description: str) -> tuple:
    return name, AlertRuleSpec(name, description)


#: The alert-rule taxonomy.  Names are stable public API: audit events,
#: the dashboard panel, and the observability-name lint key on them.
ALERT_CATALOG: Dict[str, AlertRuleSpec] = dict(
    [
        _spec("revert_rate_spike",
              "Share of decided recommendations that ended REVERTED "
              "exceeds the threshold."),
        _spec("validation_failure_spike",
              "Share of completed validations that judged REGRESSED "
              "exceeds the threshold."),
        _spec("plan_cache_hit_rate_collapse",
              "Fleet-wide optimizer plan-cache hit rate fell below the "
              "threshold."),
        # SLO burn-rate rules (repro.observability.slo builds these via
        # burn_alert_rules; the SLO_CATALOG entry of the same name holds
        # the objective and windows).
        _spec("slo_revert_rate",
              "Multi-window revert-rate burn exceeds the SLO's error "
              "budget in both the short and long window."),
        _spec("slo_validation_failure_rate",
              "Multi-window validation-failure burn exceeds the SLO's "
              "error budget in both windows."),
        _spec("slo_plan_cache_hit_rate",
              "Multi-window plan-cache miss burn exceeds the SLO's "
              "error budget in both windows."),
        _spec("slo_time_to_implement",
              "Multi-window p95 time-to-implement burn exceeds the "
              "SLO's error budget in both windows."),
    ]
)


@dataclasses.dataclass
class AlertRule:
    """A threshold rule over the metrics registry.

    ``value(registry)`` returns ``(value, samples)``; the rule fires
    when ``samples >= min_samples`` and the value is past ``threshold``
    in ``direction`` ("above" fires on ``value >= threshold``, "below"
    on ``value <= threshold``).
    """

    name: str
    threshold: float
    direction: str  # "above" | "below"
    min_samples: float
    value: Callable[[MetricsRegistry], Tuple[float, float]]

    def __post_init__(self) -> None:
        if self.name not in ALERT_CATALOG:
            raise TelemetryError(
                f"alert rule {self.name!r} is not in ALERT_CATALOG "
                "(src/repro/observability/alerts.py)"
            )
        if self.direction not in ("above", "below"):
            raise TelemetryError(
                f"alert rule {self.name!r} direction must be "
                "'above' or 'below'"
            )

    def evaluate(self, registry: MetricsRegistry) -> Tuple[bool, float, float]:
        """(firing, value, samples) for the current registry state."""
        value, samples = self.value(registry)
        if samples < self.min_samples:
            return False, value, samples
        if self.direction == "above":
            return value >= self.threshold, value, samples
        return value <= self.threshold, value, samples


@dataclasses.dataclass
class Alert:
    """One firing (or resolved) instance of a rule."""

    rule: str
    raised_at: float
    value: float
    samples: float
    threshold: float
    direction: str
    resolved_at: Optional[float] = None

    @property
    def firing(self) -> bool:
        return self.resolved_at is None


# ----------------------------------------------------------------------
# Default rules

def _revert_rate(registry: MetricsRegistry) -> Tuple[float, float]:
    reverted = registry.total("state_transitions_total", to_state="reverted")
    success = registry.total("state_transitions_total", to_state="success")
    decided = reverted + success
    return (reverted / decided if decided else 0.0), decided


def _validation_failure_rate(registry: MetricsRegistry) -> Tuple[float, float]:
    regressed = registry.total("state_transitions_total", to_state="reverting")
    success = registry.total("state_transitions_total", to_state="success")
    validated = regressed + success
    return (regressed / validated if validated else 0.0), validated


def _plan_cache_hit_rate(registry: MetricsRegistry) -> Tuple[float, float]:
    hits = registry.total("plan_cache_hits")
    misses = registry.total("plan_cache_misses")
    lookups = hits + misses
    return (hits / lookups if lookups else 1.0), lookups


def default_rules(
    revert_rate_threshold: float = 0.30,
    validation_failure_threshold: float = 0.50,
    plan_cache_hit_rate_floor: float = 0.20,
) -> List[AlertRule]:
    """The three fleet rules the paper's on-call would want first."""
    return [
        AlertRule(
            name="revert_rate_spike",
            threshold=revert_rate_threshold,
            direction="above",
            min_samples=1,
            value=_revert_rate,
        ),
        AlertRule(
            name="validation_failure_spike",
            threshold=validation_failure_threshold,
            direction="above",
            min_samples=2,
            value=_validation_failure_rate,
        ),
        AlertRule(
            name="plan_cache_hit_rate_collapse",
            threshold=plan_cache_hit_rate_floor,
            direction="below",
            min_samples=500,
            value=_plan_cache_hit_rate,
        ),
    ]


class AlertWatchdog:
    """Evaluates alert rules each control-plane tick.

    State transitions (inactive -> firing, firing -> resolved) emit
    audit events and bump the ``alerts_raised_total`` counter; the
    current firing set backs the dashboard's alerts panel.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        audit: Optional[AuditLog] = None,
        rules: Optional[List[AlertRule]] = None,
    ) -> None:
        self.registry = registry
        self.audit = audit
        self.rules = rules if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise TelemetryError(f"duplicate alert rule names: {names}")
        self._active: Dict[str, Alert] = {}
        self.history: List[Alert] = []

    def evaluate(self, now: float) -> List[Alert]:
        """One evaluation pass; returns alerts newly raised at ``now``."""
        raised: List[Alert] = []
        for rule in self.rules:
            firing, value, samples = rule.evaluate(self.registry)
            active = self._active.get(rule.name)
            if firing and active is None:
                alert = Alert(
                    rule=rule.name,
                    raised_at=now,
                    value=value,
                    samples=samples,
                    threshold=rule.threshold,
                    direction=rule.direction,
                )
                self._active[rule.name] = alert
                self.history.append(alert)
                raised.append(alert)
                self.registry.counter("alerts_raised_total", rule=rule.name).inc()
                self.registry.gauge("alerts_firing", rule=rule.name).set(1.0)
                if self.audit is not None:
                    self.audit.emit(
                        now, "alert_raised", FLEET_SCOPE,
                        rule=rule.name, value=value, samples=samples,
                        threshold=rule.threshold, direction=rule.direction,
                    )
            elif firing and active is not None:
                # Keep the evidence current while the alert stays up.
                active.value = value
                active.samples = samples
            elif not firing and active is not None:
                active.resolved_at = now
                del self._active[rule.name]
                self.registry.gauge("alerts_firing", rule=rule.name).set(0.0)
                if self.audit is not None:
                    self.audit.emit(
                        now, "alert_resolved", FLEET_SCOPE,
                        rule=rule.name, value=value, samples=samples,
                        threshold=rule.threshold,
                    )
        return raised

    def active(self) -> List[Alert]:
        """Currently firing alerts, ordered by rule name."""
        return [self._active[name] for name in sorted(self._active)]
