"""Fleet observability: metrics, spans, profiling, and exporters.

The measurement substrate for the whole reproduction (the operational
prerequisite the paper leans on in Sections 1.2, 3, and 8): a
:class:`MetricsRegistry` of counters/gauges/histograms, a span-based
:class:`Tracer` over the recommendation state machine and tuning
sessions, :mod:`profiling` hooks on engine hot paths, and exporters
(Prometheus text, JSON, and the ``repro telemetry`` dashboard).

A :class:`Telemetry` object bundles one registry + tracer + recorder;
the control plane owns one and threads it through every micro-service.
"""

from repro.observability.alerts import (
    ALERT_CATALOG,
    Alert,
    AlertRule,
    AlertWatchdog,
    default_rules,
)
from repro.observability.audit import (
    AUDIT_CATALOG,
    AUDIT_SCHEMA_VERSION,
    AuditEvent,
    AuditLog,
)
from repro.observability.compliance import (
    FORBIDDEN_KEYS,
    ensure_compliant,
    find_forbidden_keys,
)
from repro.observability.dashboard import render_dashboard
from repro.observability.explain import (
    build_timeline,
    decision_index,
    render_explain,
)
from repro.observability.exporters import json_export, json_text, prometheus_text
from repro.observability.metrics import (
    CATALOG,
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
)
from repro.observability.profiling import (
    Profiler,
    active,
    count,
    profile,
    use_profiler,
)
from repro.observability.slo import (
    SLO_CATALOG,
    SloSpec,
    SloStatus,
    burn_alert_rules,
    evaluate_catalog,
    render_slo_report,
)
from repro.observability.spans import (
    SPAN_KIND_CATALOG,
    Span,
    SpanRecorder,
    Tracer,
)
from repro.observability.timeseries import (
    SAMPLE_CATALOG,
    AnomalyDetector,
    FleetSampler,
    TelemetryHistory,
    TimeSeriesStore,
)
from repro.observability.trace_export import (
    PARENT_TRACK,
    TraceEvent,
    attribution_summary,
    render_critical_path,
    span_trace_events,
    trace_event_json,
)


class Telemetry:
    """One bundle of telemetry state (registry + tracer + spans + audit)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder()
        self.tracer = Tracer(self.recorder)
        self.audit = AuditLog()


__all__ = [
    "ALERT_CATALOG",
    "AUDIT_CATALOG",
    "AUDIT_SCHEMA_VERSION",
    "Alert",
    "AlertRule",
    "AlertWatchdog",
    "AnomalyDetector",
    "AuditEvent",
    "AuditLog",
    "CATALOG",
    "DEFAULT_BOUNDS",
    "FORBIDDEN_KEYS",
    "Counter",
    "FleetSampler",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "PARENT_TRACK",
    "Profiler",
    "SAMPLE_CATALOG",
    "SLO_CATALOG",
    "SPAN_KIND_CATALOG",
    "SloSpec",
    "SloStatus",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TelemetryHistory",
    "TimeSeriesStore",
    "TraceEvent",
    "Tracer",
    "active",
    "attribution_summary",
    "build_timeline",
    "burn_alert_rules",
    "count",
    "decision_index",
    "default_rules",
    "evaluate_catalog",
    "ensure_compliant",
    "find_forbidden_keys",
    "json_export",
    "json_text",
    "profile",
    "prometheus_text",
    "render_critical_path",
    "render_dashboard",
    "render_explain",
    "render_slo_report",
    "span_trace_events",
    "trace_event_json",
    "use_profiler",
]
