"""Fleet observability: metrics, spans, profiling, and exporters.

The measurement substrate for the whole reproduction (the operational
prerequisite the paper leans on in Sections 1.2, 3, and 8): a
:class:`MetricsRegistry` of counters/gauges/histograms, a span-based
:class:`Tracer` over the recommendation state machine and tuning
sessions, :mod:`profiling` hooks on engine hot paths, and exporters
(Prometheus text, JSON, and the ``repro telemetry`` dashboard).

A :class:`Telemetry` object bundles one registry + tracer + recorder;
the control plane owns one and threads it through every micro-service.
"""

from repro.observability.compliance import (
    FORBIDDEN_KEYS,
    ensure_compliant,
    find_forbidden_keys,
)
from repro.observability.dashboard import render_dashboard
from repro.observability.exporters import json_export, json_text, prometheus_text
from repro.observability.metrics import (
    CATALOG,
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
)
from repro.observability.profiling import (
    Profiler,
    active,
    count,
    profile,
    use_profiler,
)
from repro.observability.spans import Span, SpanRecorder, Tracer


class Telemetry:
    """One bundle of telemetry state (registry + tracer + span recorder)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder()
        self.tracer = Tracer(self.recorder)


__all__ = [
    "CATALOG",
    "DEFAULT_BOUNDS",
    "FORBIDDEN_KEYS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Profiler",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "Tracer",
    "active",
    "count",
    "ensure_compliant",
    "find_forbidden_keys",
    "json_export",
    "json_text",
    "profile",
    "prometheus_text",
    "render_dashboard",
    "use_profiler",
]
