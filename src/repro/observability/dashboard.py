"""The live-style fleet dashboard behind ``repro telemetry``.

Renders what an on-call engineer for the paper's service would want on
one screen (Section 8): where every state machine currently is, how
often validation is reverting, which tuning sessions are slowest, and
where the engine itself is spending its time.  Everything is read from
the telemetry substrate (registry + span recorder + profiler), never
from the control plane's records directly, so the dashboard can only
show what the telemetry actually captured.
"""

from __future__ import annotations

from typing import List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.profiling import Profiler, active
from repro.observability.spans import SpanRecorder
from repro.observability.timeseries import SAMPLE_CATALOG

#: Unicode block ramp for history sparklines (low -> high).
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Series shown as dashboard sparklines, in display order.
_SPARK_SERIES = (
    "revert_rate",
    "validation_failure_rate",
    "plan_cache_hit_rate",
    "records_live",
    "alerts_firing_count",
    "tick_wall_seconds",
)

#: Ticks of trailing history a sparkline compresses.
_SPARK_WINDOW = 64

#: Character width of a sparkline (buckets are resampled onto this).
_SPARK_CELLS = 32


def sparkline(values: List[float], cells: int = _SPARK_CELLS) -> str:
    """Compress ``values`` into a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > cells:
        # Average consecutive runs onto the cell grid.
        step = len(values) / cells
        resampled = []
        for i in range(cells):
            start = int(i * step)
            stop = max(start + 1, int((i + 1) * step))
            chunk = values[start:stop]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    scale = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int(round((v - lo) / span * scale))] for v in values
    )

#: State-machine states rendered in lifecycle order.
_STATE_ORDER = (
    "active", "implementing", "validating", "reverting", "retry",
    "success", "reverted", "expired", "error",
)

#: Span kinds that represent tuning work (Section 5.3's sessions).
TUNING_KINDS = ("dta_session", "analysis")


def _fmt_minutes(minutes: float) -> str:
    if minutes >= 60.0:
        return f"{minutes / 60.0:7.1f} h"
    return f"{minutes:7.1f} m"


def render_dashboard(
    registry: MetricsRegistry,
    recorder: SpanRecorder,
    profiler: Optional[Profiler] = None,
    top_n: int = 5,
    watchdog=None,
    history=None,
) -> List[str]:
    """The fleet dashboard as a list of printable lines.

    ``watchdog`` (an :class:`~repro.observability.alerts.AlertWatchdog`)
    adds the firing-alerts panel; without one the panel falls back to
    the ``alerts_firing`` gauges so a replayed registry still shows
    which rules were up.  ``history`` (a
    :class:`~repro.observability.timeseries.TelemetryHistory` or its
    store) adds trailing-window sparkline panels per sampled series.
    """
    profiler = profiler if profiler is not None else active()
    lines: List[str] = ["== fleet telemetry =="]

    # --- firing alerts (the watchdog's pager view) -------------------
    lines.append("alerts:")
    if watchdog is not None:
        firing = watchdog.active()
        if not firing:
            lines.append("  (none firing)")
        for alert in firing:
            comparator = ">=" if alert.direction == "above" else "<="
            lines.append(
                f"  FIRING {alert.rule:<30} value {alert.value:.3f} "
                f"{comparator} {alert.threshold:.3f} "
                f"(samples {int(alert.samples)}, raised t+{alert.raised_at:.0f}m)"
            )
    else:
        firing_rules = [
            dict(series.labels).get("rule", "?")
            for series in registry.series_for("alerts_firing")
            if series.metric.value
        ]
        if not firing_rules:
            lines.append("  (none firing)")
        for rule in sorted(firing_rules):
            lines.append(f"  FIRING {rule}")

    # --- state machine counts ----------------------------------------
    lines.append("state machine records:")
    any_state = False
    for state in _STATE_ORDER:
        value = registry.total("records_in_state", state=state)
        if value:
            lines.append(f"  {state:<13} {int(value)}")
            any_state = True
    if not any_state:
        lines.append("  (no recommendation records yet)")

    # --- lifecycle counters and revert rate --------------------------
    created = registry.total("recommendations_created_total")
    creates = registry.total("recommendations_created_total", action="create")
    drops = registry.total("recommendations_created_total", action="drop")
    implemented = registry.total("implementations_completed_total")
    success = registry.total("state_transitions_total", to_state="success")
    reverted = registry.total("state_transitions_total", to_state="reverted")
    decided = success + reverted
    revert_rate = reverted / decided if decided else 0.0
    incidents = registry.total("incidents_total")
    lines.append("lifecycle:")
    lines.append(
        f"  recommendations: {int(created)} "
        f"(create={int(creates)}, drop={int(drops)})"
    )
    lines.append(f"  implemented:     {int(implemented)}")
    lines.append(
        f"  revert rate:     {revert_rate:.1%} "
        f"({int(reverted)} of {int(decided)} decided)"
    )
    lines.append(f"  incidents:       {int(incidents)}")

    # --- optimizer plan cache ----------------------------------------
    hits = registry.total("plan_cache_hits")
    misses = registry.total("plan_cache_misses")
    evictions = registry.total("plan_cache_evictions")
    lookups = hits + misses
    if lookups:
        hit_rate = hits / lookups
        lines.append("optimizer plan cache:")
        lines.append(
            f"  lookups:         {int(lookups)} (hit rate {hit_rate:.1%})"
        )
        lines.append(f"  evictions:       {int(evictions)}")

    # --- vectorized executor (present once any statement dispatched) -
    vector_stmts = registry.total(
        "executor_vector_dispatch_total", path="vector"
    )
    interp_stmts = registry.total(
        "executor_vector_dispatch_total", path="interp"
    )
    dispatched = vector_stmts + interp_stmts
    if dispatched:
        vector_share = vector_stmts / dispatched
        batch_rows = registry.total("executor_batch_rows")
        cache_hits = registry.total("executor_column_cache_hits")
        cache_misses = registry.total("executor_column_cache_misses")
        cache_invalidations = registry.total(
            "executor_column_cache_invalidations"
        )
        cache_lookups = cache_hits + cache_misses
        lines.append("vectorized executor:")
        lines.append(
            f"  statements:      {int(dispatched)} "
            f"(vectorized {vector_share:.1%}, batch rows {int(batch_rows)})"
        )
        # Imported lazily: the engine's btree counts pages through
        # observability.profiling, so this package must not import the
        # engine at module level.
        from repro.engine.exec.dispatch import (
            FALLBACK_GAUGES,
            FALLBACK_REASONS,
        )

        fallback_parts = []
        for reason in FALLBACK_REASONS:
            count = registry.total(  # observability-names: allow-dynamic
                FALLBACK_GAUGES[reason]
            )
            if count:
                fallback_parts.append(f"{reason} {int(count)}")
        if fallback_parts:
            lines.append(
                "  fallbacks:       " + ", ".join(fallback_parts)
            )
        if cache_lookups:
            cache_hit_rate = cache_hits / cache_lookups
            lines.append(
                f"  column cache:    {int(cache_lookups)} lookups "
                f"(hit rate {cache_hit_rate:.1%}, "
                f"invalidations {int(cache_invalidations)})"
            )

    # --- batched what-if pricing (present once any batch was priced) -
    batches = registry.total("whatif_batch_batches")
    if batches:
        configurations = registry.total("whatif_batch_configurations")
        substrate_hits = registry.total("whatif_batch_substrate_hits")
        substrate_misses = registry.total("whatif_batch_substrate_misses")
        fallbacks = registry.total("whatif_batch_scalar_fallbacks")
        substrate_lookups = substrate_hits + substrate_misses
        lines.append("batched what-if pricing:")
        lines.append(
            f"  configurations:  {int(configurations)} priced in "
            f"{int(batches)} batches"
        )
        if substrate_lookups:
            reuse = substrate_hits / substrate_lookups
            lines.append(
                f"  substrates:      {int(substrate_lookups)} lookups "
                f"(reuse {reuse:.1%}, builds {int(substrate_misses)})"
            )
        if fallbacks:
            lines.append(f"  scalar fallbacks: {int(fallbacks)}")

    # --- fleet execution (only present on sharded parallel runs) -----
    databases = registry.total("fleet_databases")
    if databases:
        workers = registry.total("fleet_workers")
        ticks = registry.total("fleet_ticks_total")
        skew = registry.total("fleet_tick_skew_seconds")
        lines.append("fleet execution:")
        lines.append(
            f"  databases:       {int(databases)} across "
            f"{int(workers)} shard worker(s)"
        )
        lines.append(f"  ticks merged:    {int(ticks)}")
        busy_series = registry.series_for("fleet_shard_busy")
        if busy_series:
            busy = [series.metric.value for series in busy_series]
            lines.append(
                f"  shard busy:      {sum(busy):.2f}s total "
                f"(max {max(busy):.2f}s, last-tick skew {skew:.2f}s)"
            )
        phase_series = registry.series_for("fleet_phase_seconds")
        if phase_series:
            coverage = registry.total("fleet_tick_attribution_ratio")
            lines.append(
                f"  tick phases (attribution {coverage:.0%} of last tick):"
            )
            ranked = sorted(
                phase_series,
                key=lambda s: (-s.metric.sum, s.labels),
            )
            for series in ranked:
                phase = dict(series.labels).get("phase", "?")
                metric = series.metric
                mean = metric.sum / metric.count if metric.count else 0.0
                lines.append(
                    f"    {phase:<14} {metric.sum:>9.3f}s total "
                    f"{mean:>8.3f}s mean"
                )

    # --- history sparklines (only when a history store is wired) -----
    if history is not None:
        store = getattr(history, "store", history)
        lines.append(f"history (last {_SPARK_WINDOW} ticks):")
        last = store.last_tick()
        if last is None:
            lines.append("  (no ticks sampled yet)")
        else:
            for name in _SPARK_SERIES:
                buckets = store.range(name, max(0, last - _SPARK_WINDOW + 1))
                if not buckets:
                    continue
                spark = sparkline([bucket.mean for bucket in buckets])
                latest = store.latest(name)
                unit = SAMPLE_CATALOG[name].unit
                if unit == "ratio":
                    shown = f"{latest:.1%}"
                else:
                    shown = f"{latest:.3g} {unit}"
                lines.append(f"  {name:<26} {spark} {shown}")

    # --- slowest tuning sessions -------------------------------------
    lines.append(f"slowest tuning sessions (top {top_n}):")
    slowest = recorder.slowest(TUNING_KINDS, n=top_n)
    if not slowest:
        lines.append("  (no tuning sessions recorded)")
    for rank, span in enumerate(slowest, start=1):
        source = span.attributes.get("source", span.kind)
        lines.append(
            f"  {rank}. {span.database:<12} {str(source):<4} "
            f"{_fmt_minutes(span.duration or 0.0)}  {span.outcome or 'open'}"
        )

    # --- engine hot paths --------------------------------------------
    lines.append("engine hot paths:")
    rows = profiler.rows()
    if not rows:
        lines.append("  (no profiling samples)")
    else:
        lines.append(
            f"  {'path':<26} {'calls':>9} {'real ms':>10} {'sim ms':>12}"
        )
        for row in rows:
            lines.append(
                f"  {row.name:<26} {row.calls:>9} "
                f"{row.real_ms:>10.1f} {row.sim_ms:>12.1f}"
            )
    return lines
