"""Index recommenders (Section 5 of the paper).

Two recommendation sources with complementary cost/quality trade-offs:

- :mod:`mi_recommender` — built on the engine's Missing Indexes DMV:
  near-zero overhead, local (leaf-level) analysis, no maintenance costing;
  used for low-resource databases.
- :mod:`dta` — the Database Engine Tuning Advisor re-architected as a
  service: acquires a workload from Query Store, runs cost-based candidate
  selection and workload-level enumeration over the what-if API under a
  strict resource budget; used for complex/premium databases.

Plus :mod:`drop_recommender` (Section 5.4), the index-merging and impact
statistics shared by both sources, the low-impact classifier trained on
validation history, and the tier policy selecting a source per database.
"""

from repro.recommender.recommendation import (
    Action,
    IndexRecommendation,
)
from repro.recommender.mi_recommender import MiRecommender, MiRecommenderSettings
from repro.recommender.drop_recommender import DropRecommender, DropRecommenderSettings
from repro.recommender.policy import RecommenderPolicy
from repro.recommender.dta import DtaSession, DtaSettings

__all__ = [
    "Action",
    "DropRecommender",
    "DropRecommenderSettings",
    "DtaSession",
    "DtaSettings",
    "IndexRecommendation",
    "MiRecommender",
    "MiRecommenderSettings",
    "RecommenderPolicy",
]
