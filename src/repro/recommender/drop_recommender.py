"""Drop-index analysis (Section 5.4).

Deliberately *not* workload-driven: the recommender reads long-horizon
server-tracked statistics (index usage counters) to find indexes with
little or no read benefit but real maintenance overhead, plus duplicate
indexes (identical key columns including order).  Conservative exclusions
prevent application breakage:

- indexes referenced by query hints or forced plans are never candidates
  (dropping one would break the hinting query);
- unique indexes (stand-ins for application constraints) are excluded;
- indexes younger than the observation window are excluded — an index
  serving an occasional weekly report may simply not have been read *yet*.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from repro.clock import DAYS
from repro.engine.engine import SqlEngine
from repro.recommender.recommendation import Action, IndexRecommendation


@dataclasses.dataclass
class DropRecommenderSettings:
    """Conservatism knobs."""

    #: Observation horizon (the paper analyzes ~60 days of statistics).
    observation_days: float = 60.0
    #: Maximum reads over the horizon for an index to count as unused.
    max_reads: int = 0
    #: Minimum writes over the horizon — dropping an unused index that is
    #: also never maintained saves little and risks much.
    min_writes: int = 10
    include_duplicates: bool = True
    include_unused: bool = True


class DropRecommender:
    """Duplicate and unused index analysis for one database."""

    def __init__(
        self,
        engine: SqlEngine,
        settings: Optional[DropRecommenderSettings] = None,
    ) -> None:
        self.engine = engine
        self.settings = settings or DropRecommenderSettings()

    # ------------------------------------------------------------------

    def hinted_index_names(self) -> Set[str]:
        """Indexes referenced by query hints or forced plans — dropping one
        would prevent the hinting/forced query from executing (§5.4)."""
        hinted: Set[str] = set()
        for info in self.engine.query_store.queries():
            query = self.engine.observed_statement(info.query_id)
            hint = getattr(query, "index_hint", None)
            if hint:
                hinted.add(hint)
        hinted |= self.engine.query_store.forced_plan_indexes()
        return hinted

    def recommend(self) -> List[IndexRecommendation]:
        now = self.engine.now
        horizon = self.settings.observation_days * DAYS
        hinted = self.hinted_index_names()
        recommendations: List[IndexRecommendation] = []
        if self.settings.include_duplicates:
            recommendations.extend(self._duplicates(hinted))
        if self.settings.include_unused:
            recommendations.extend(self._unused(hinted, now, horizon))
        return recommendations

    # ------------------------------------------------------------------

    def _protected(self, definition, hinted: Set[str]) -> bool:
        if definition.name in hinted:
            return True
        if definition.unique:
            return True  # enforcing an application constraint
        return False

    def _duplicates(self, hinted: Set[str]) -> List[IndexRecommendation]:
        """Indexes with identical key columns (including order)."""
        recommendations = []
        for table in self.engine.database.tables.values():
            definitions = table.index_definitions()
            by_key: dict = {}
            for definition in definitions:
                by_key.setdefault(
                    (definition.table, definition.key_columns), []
                ).append(definition)
            for _key, group in by_key.items():
                if len(group) < 2:
                    continue
                keep, drops = self._choose_among_duplicates(group, hinted)
                for definition in drops:
                    recommendations.append(
                        IndexRecommendation(
                            action=Action.DROP,
                            table=definition.table,
                            key_columns=definition.key_columns,
                            included_columns=definition.included_columns,
                            source="DROP_ANALYSIS",
                            existing_index_name=definition.name,
                            details=f"duplicate of {keep.name}",
                            created_at=self.engine.now,
                        )
                    )
        return recommendations

    def _choose_among_duplicates(self, group, hinted: Set[str]):
        """Keep the most-read, least-droppable duplicate; drop the rest."""
        def read_count(definition):
            usage = self.engine.usage_stats.get(definition.name)
            return usage.reads if usage else 0

        protected = [d for d in group if self._protected(d, hinted)]
        unprotected = [d for d in group if not self._protected(d, hinted)]
        if protected:
            keep = max(protected, key=read_count)
            return keep, unprotected
        # Prefer keeping user-created wider-include indexes over
        # auto-created ones; tie-break by reads.
        keep = max(
            unprotected,
            key=lambda d: (not d.auto_created, len(d.included_columns), read_count(d)),
        )
        return keep, [d for d in unprotected if d.name != keep.name]

    def _unused(
        self, hinted: Set[str], now: float, horizon: float
    ) -> List[IndexRecommendation]:
        recommendations = []
        for table in self.engine.database.tables.values():
            for name, index in table.indexes.items():
                definition = index.definition
                if self._protected(definition, hinted):
                    continue
                if now - index.created_at < horizon:
                    continue  # not observed long enough (weekly reports!)
                usage = self.engine.usage_stats.get(name)
                reads = usage.reads if usage else 0
                writes = usage.writes if usage else 0
                if reads > self.settings.max_reads:
                    continue
                if writes < self.settings.min_writes:
                    continue
                last_read = usage.last_read() if usage else None
                if last_read is not None and now - last_read < horizon:
                    continue
                recommendations.append(
                    IndexRecommendation(
                        action=Action.DROP,
                        table=definition.table,
                        key_columns=definition.key_columns,
                        included_columns=definition.included_columns,
                        source="DROP_ANALYSIS",
                        existing_index_name=name,
                        details=(
                            f"unused for {self.settings.observation_days:.0f} days; "
                            f"{writes} maintenance writes"
                        ),
                        created_at=self.engine.now,
                    )
                )
        return recommendations
