"""Recommender-source policy (Section 5.1.1).

MI and DTA have complementary benefits: MI's negligible overhead suits
low-resource databases (Basic tier); DTA's comprehensive analysis suits
complex applications in the Premium tier.  A pre-configured control-plane
policy decides per database, from the service tier, activity level, and
resource consumption, which source to invoke.
"""

from __future__ import annotations

import dataclasses

from repro.clock import HOURS
from repro.engine.engine import SqlEngine


@dataclasses.dataclass
class PolicyDecision:
    """One source choice plus the predicate evidence that drove it.

    ``rule`` names the first predicate that decided the outcome;
    ``evidence`` holds the measured values and thresholds so the audit
    stream can show *why* (not just *what*) was chosen.
    """

    source: str  # "MI" | "DTA"
    rule: str
    evidence: dict


@dataclasses.dataclass
class RecommenderPolicy:
    """Decides MI vs DTA for a given database."""

    #: Tiers that always use the lightweight MI source.
    mi_tiers: tuple = ("basic",)
    #: Tiers that always use DTA.
    dta_tiers: tuple = ("premium",)
    #: For in-between tiers: use DTA when the workload is complex enough —
    #: measured as the share of CPU spent in joins/aggregations.
    complexity_threshold: float = 0.35
    #: ...and active enough to justify a session.
    min_hourly_statements: float = 5.0
    lookback_hours: float = 24.0

    def choose(self, engine: SqlEngine, tier: str) -> str:
        """Returns "MI" or "DTA"."""
        return self.decide(engine, tier).source

    def decide(self, engine: SqlEngine, tier: str) -> PolicyDecision:
        """The full decision: source plus the predicate that chose it."""
        if tier in self.mi_tiers:
            return PolicyDecision("MI", "tier_forces_mi", {"tier": tier})
        if tier in self.dta_tiers:
            return PolicyDecision("DTA", "tier_forces_dta", {"tier": tier})
        now = engine.now
        since = max(0.0, now - self.lookback_hours * HOURS)
        totals = engine.query_store.per_query_totals(since, now)
        if not totals:
            return PolicyDecision(
                "MI", "no_observed_workload",
                {"tier": tier, "lookback_hours": self.lookback_hours},
            )
        executions = sum(
            stats.executions
            for stats in engine.query_store.aggregate(since, now).values()
        )
        hours = max(1e-9, (now - since) / HOURS)
        hourly = executions / hours
        if hourly < self.min_hourly_statements:
            return PolicyDecision(
                "MI", "activity_below_minimum",
                {
                    "tier": tier,
                    "hourly_statements": hourly,
                    "min_hourly_statements": self.min_hourly_statements,
                },
            )
        complex_cpu = 0.0
        total_cpu = 0.0
        for query_id, cpu in totals.items():
            total_cpu += cpu
            query = engine.observed_statement(query_id)
            if query is None:
                continue
            if getattr(query, "join", None) is not None or getattr(
                query, "group_by", ()
            ):
                complex_cpu += cpu
        if total_cpu <= 0:
            return PolicyDecision(
                "MI", "no_cpu_consumed", {"tier": tier, "hourly_statements": hourly}
            )
        complexity = complex_cpu / total_cpu
        evidence = {
            "tier": tier,
            "hourly_statements": hourly,
            "complexity_share": complexity,
            "complexity_threshold": self.complexity_threshold,
        }
        if complexity >= self.complexity_threshold:
            return PolicyDecision("DTA", "workload_complex_enough", evidence)
        return PolicyDecision("MI", "workload_below_complexity", evidence)
