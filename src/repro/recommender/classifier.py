"""Low-impact index classifier (Section 5.2, final MI filtering step).

The MI pipeline performs no extra optimizer calls, so it uses a classifier
trained on *previous index validations* to filter out recommendations that
look beneficial in estimates but historically had low actual impact.
Features follow the paper: estimated impact, table size, index size, and
observation volume.  A tiny from-scratch logistic regression keeps the
dependency surface at numpy.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np


@dataclasses.dataclass
class ValidationExample:
    """One labeled outcome from a past validation (Section 6)."""

    estimated_impact_pct: float
    table_rows: int
    index_size_bytes: int
    observed_seeks: int
    #: True if the index survived validation with improvement; False if it
    #: was reverted or had no measurable impact.
    beneficial: bool


def _features(
    estimated_impact_pct: float,
    table_rows: int,
    index_size_bytes: int,
    observed_seeks: int,
) -> np.ndarray:
    return np.array(
        [
            1.0,  # bias
            math.log1p(max(0.0, estimated_impact_pct)),
            math.log1p(max(0, table_rows)),
            math.log1p(max(0, index_size_bytes)) / 10.0,
            math.log1p(max(0, observed_seeks)),
        ]
    )


class LowImpactClassifier:
    """Logistic regression over validation history.

    Untrained (or trained on too few examples) it accepts everything —
    the service must function before any validation history exists.
    """

    def __init__(self, min_training_examples: int = 30, threshold: float = 0.3):
        self.min_training_examples = min_training_examples
        self.threshold = threshold
        self._weights: Optional[np.ndarray] = None
        self.trained_on = 0

    @property
    def is_trained(self) -> bool:
        return self._weights is not None

    def fit(
        self,
        examples: Sequence[ValidationExample],
        epochs: int = 300,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
    ) -> bool:
        """Train; returns True if enough history existed to train."""
        if len(examples) < self.min_training_examples:
            return False
        labels = np.array([1.0 if e.beneficial else 0.0 for e in examples])
        if labels.min() == labels.max():
            return False  # degenerate history: keep accepting everything
        matrix = np.stack(
            [
                _features(
                    e.estimated_impact_pct,
                    e.table_rows,
                    e.index_size_bytes,
                    e.observed_seeks,
                )
                for e in examples
            ]
        )
        weights = np.zeros(matrix.shape[1])
        n = len(examples)
        for _ in range(epochs):
            logits = matrix @ weights
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            gradient = matrix.T @ (probs - labels) / n + l2 * weights
            weights -= learning_rate * gradient
        self._weights = weights
        self.trained_on = len(examples)
        return True

    def probability_beneficial(
        self,
        estimated_impact_pct: float,
        table_rows: int,
        index_size_bytes: int,
        observed_seeks: int,
    ) -> float:
        if self._weights is None:
            return 1.0
        x = _features(
            estimated_impact_pct, table_rows, index_size_bytes, observed_seeks
        )
        logit = float(x @ self._weights)
        return 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, logit))))

    def accepts(
        self,
        estimated_impact_pct: float,
        table_rows: int,
        index_size_bytes: int,
        observed_seeks: int,
    ) -> bool:
        """False when the model predicts low actual impact."""
        probability = self.probability_beneficial(
            estimated_impact_pct, table_rows, index_size_bytes, observed_seeks
        )
        return probability >= self.threshold

    # ------------------------------------------------------------------
    # State transfer (the fleet-parallel layer broadcasts retrained
    # weights from the region service to its shard workers).

    def export_state(self) -> Optional[dict]:
        """Picklable snapshot of the trained model (None if untrained)."""
        if self._weights is None:
            return None
        return {
            "weights": [float(w) for w in self._weights],
            "trained_on": self.trained_on,
            "threshold": self.threshold,
            "min_training_examples": self.min_training_examples,
        }

    def load_state(self, state: Optional[dict]) -> None:
        """Adopt a snapshot produced by :meth:`export_state`."""
        if state is None:
            self._weights = None
            self.trained_on = 0
            return
        self._weights = np.array(state["weights"], dtype=float)
        self.trained_on = int(state["trained_on"])
        self.threshold = float(state["threshold"])
        self.min_training_examples = int(state["min_training_examples"])


def examples_from_history(history: List[dict]) -> List[ValidationExample]:
    """Adapt control-plane validation records into training examples."""
    examples = []
    for record in history:
        examples.append(
            ValidationExample(
                estimated_impact_pct=record.get("estimated_impact_pct", 0.0),
                table_rows=record.get("table_rows", 0),
                index_size_bytes=record.get("index_size_bytes", 0),
                observed_seeks=record.get("observed_seeks", 0),
                beneficial=bool(record.get("beneficial", False)),
            )
        )
    return examples
