"""The Missing-Indexes-based recommender (Section 5.2).

Pipeline, mirroring the paper's five steps plus the classifier filter:

1. define candidates from MI DMV groups (EQUALITY columns as keys, one
   INEQUALITY column appended, the rest included);
2. aggregate each candidate's benefit from the DMV statistics;
3. filter out candidates with too few query executions (ad-hoc queries);
4. require a statistically robust positive impact slope over snapshot
   time (t-test, tolerant of DMV resets);
5. merge prefix-compatible candidates conservatively;
then pick the top-N by impact and drop those the low-impact classifier
(trained on validation history) predicts will not help in execution.

The recommender never makes optimizer calls of its own — that is the
whole point of the MI source's low overhead.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.engine.engine import SqlEngine, resolve_whatif_mode
from repro.engine.schema import IndexDefinition
from repro.recommender.classifier import LowImpactClassifier
from repro.recommender.impact import (
    SnapshotAccumulator,
    aggregate_benefit,
    candidate_key_columns,
    impact_slope_test,
)
from repro.recommender.merging import MergeCandidate, merge_candidates
from repro.recommender.recommendation import Action, IndexRecommendation


@dataclasses.dataclass
class MiRecommenderSettings:
    """Tunables of the MI pipeline."""

    #: Step 3: minimum seeks (query executions wanting the index).
    min_seeks: int = 5
    #: Step 4: slope t-test threshold.
    slope_t_threshold: float = 2.0
    #: Step 4 off-switch for ablations.
    use_slope_test: bool = True
    #: Step 5 off-switch for ablations.
    use_merging: bool = True
    #: Final step: maximum number of recommendations per run.
    top_n: int = 5
    #: Minimum average estimated impact (%).
    min_avg_impact_pct: float = 20.0
    #: Classifier off-switch for ablations.
    use_classifier: bool = True
    max_include_columns: int = 8
    #: Extension (Section 10 future work, "reduce performance regressions"):
    #: spend a few what-if calls to sanity-check each surviving candidate
    #: against the statements currently in Query Store, dropping candidates
    #: whose hypothetical plans do not actually improve any hot statement.
    #: Trades a little of MI's zero-overhead property for fewer reverts.
    verify_with_whatif: bool = False
    whatif_verify_statements: int = 6
    whatif_lookback_hours: float = 24.0


class MiRecommender:
    """Snapshot-accumulating MI recommendation pipeline for one database."""

    def __init__(
        self,
        engine: SqlEngine,
        settings: Optional[MiRecommenderSettings] = None,
        classifier: Optional[LowImpactClassifier] = None,
    ) -> None:
        self.engine = engine
        self.settings = settings or MiRecommenderSettings()
        self.classifier = classifier or LowImpactClassifier()
        self.accumulator = SnapshotAccumulator()
        self.snapshots_taken = 0
        #: Per-candidate accept/reject decisions of the most recent
        #: :meth:`recommend` run, each with the failed predicate —
        #: provenance evidence for the audit stream.
        self.last_decisions: List[dict] = []

    # ------------------------------------------------------------------

    def take_snapshot(self) -> int:
        """Periodic snapshot of the MI DMV (reset tolerance, Section 5.2).

        Returns the number of groups observed.  Driven by the control
        plane's scheduler.
        """
        snapshot = self.engine.missing_indexes.snapshot(self.engine.now)
        self.accumulator.add_snapshot(snapshot)
        self.snapshots_taken += 1
        return len(snapshot.entries)

    # ------------------------------------------------------------------

    def _reject(self, table, keys, failed_predicate: str, **evidence) -> None:
        self.last_decisions.append(
            {
                "table": table,
                "key_columns": list(keys),
                "accepted": False,
                "failed_predicate": failed_predicate,
                **evidence,
            }
        )

    def recommend(self) -> List[IndexRecommendation]:
        """Run the pipeline over everything accumulated so far."""
        settings = self.settings
        self.last_decisions = []
        candidates: List[MergeCandidate] = []
        impact_by_identity = {}
        for series in self.accumulator.series():
            group_keys, _ = candidate_key_columns(series.group)
            # Step 3: ad-hoc filter.
            if series.seeks < settings.min_seeks:
                self._reject(
                    series.group.table, group_keys, "min_seeks",
                    seeks=series.seeks, min_seeks=settings.min_seeks,
                )
                continue
            # Step 4: statistically robust growth of the impact score.
            if settings.use_slope_test:
                test = impact_slope_test(
                    series.points, t_threshold=settings.slope_t_threshold
                )
                if not test.passed:
                    self._reject(
                        series.group.table, group_keys, "impact_slope_test",
                        t_statistic=test.t_statistic,
                        t_threshold=settings.slope_t_threshold,
                    )
                    continue
            if series.last_avg_impact < settings.min_avg_impact_pct:
                self._reject(
                    series.group.table, group_keys, "min_avg_impact",
                    avg_impact_pct=series.last_avg_impact,
                    min_avg_impact_pct=settings.min_avg_impact_pct,
                )
                continue
            keys, includes = candidate_key_columns(series.group)
            candidate = MergeCandidate(
                table=series.group.table,
                key_columns=keys,
                included_columns=includes,
                benefit=aggregate_benefit(series),
                source="MI",
            )
            candidates.append(candidate)
            impact_by_identity[(candidate.table, candidate.key_columns)] = (
                series.last_avg_impact,
                series.seeks,
            )
        # Step 5: conservative merging.
        if settings.use_merging:
            candidates = merge_candidates(
                candidates, max_include_columns=settings.max_include_columns
            )
        # Drop candidates already satisfied by an existing index.
        surviving = []
        for candidate in candidates:
            if self._already_indexed(candidate):
                self._reject(
                    candidate.table, candidate.key_columns, "already_indexed"
                )
            else:
                surviving.append(candidate)
        candidates = surviving
        # Top-N by aggregate benefit.
        candidates.sort(key=lambda c: -c.benefit)
        for candidate in candidates[settings.top_n:]:
            self._reject(
                candidate.table, candidate.key_columns, "below_top_n",
                benefit=candidate.benefit, top_n=settings.top_n,
            )
        recommendations: List[IndexRecommendation] = []
        for candidate in candidates[: settings.top_n]:
            impact, seeks = impact_by_identity.get(
                (candidate.table, candidate.key_columns),
                (settings.min_avg_impact_pct, settings.min_seeks),
            )
            table = self.engine.database.table(candidate.table)
            size = table.hypothetical_stats_view(
                IndexDefinition(
                    name="_size_probe",
                    table=candidate.table,
                    key_columns=candidate.key_columns,
                    included_columns=candidate.included_columns,
                    hypothetical=True,
                )
            ).size_bytes
            if settings.use_classifier and not self.classifier.accepts(
                estimated_impact_pct=impact,
                table_rows=table.row_count,
                index_size_bytes=size,
                observed_seeks=seeks,
            ):
                self._reject(
                    candidate.table, candidate.key_columns,
                    "low_impact_classifier",
                    estimated_impact_pct=impact, observed_seeks=seeks,
                    index_size_bytes=size,
                )
                continue
            if settings.verify_with_whatif and not self._whatif_confirms(
                candidate
            ):
                self._reject(
                    candidate.table, candidate.key_columns, "whatif_verify",
                    estimated_impact_pct=impact,
                )
                continue
            self.last_decisions.append(
                {
                    "table": candidate.table,
                    "key_columns": list(candidate.key_columns),
                    "accepted": True,
                    "failed_predicate": None,
                    "estimated_impact_pct": impact,
                    "estimated_size_bytes": size,
                    "observed_seeks": seeks,
                }
            )
            recommendations.append(
                IndexRecommendation(
                    action=Action.CREATE,
                    table=candidate.table,
                    key_columns=candidate.key_columns,
                    included_columns=candidate.included_columns,
                    source="MI",
                    estimated_improvement_pct=impact,
                    estimated_size_bytes=size,
                    impacted_queries=candidate.impacted_queries,
                    details=f"MI group benefit {candidate.benefit:.1f}",
                    created_at=self.engine.now,
                )
            )
        return recommendations

    # ------------------------------------------------------------------

    def _whatif_confirms(self, candidate: MergeCandidate) -> bool:
        """Optional what-if double check on a few hot statements.

        The candidate survives if at least one hot statement's estimated
        cost improves *and* the hot DML statements on the table do not get
        disproportionately more expensive — the two revert causes the
        paper reports (Section 8.1).
        """
        settings = self.settings
        engine = self.engine
        now = engine.now
        since = max(0.0, now - settings.whatif_lookback_hours * 60.0)
        top = engine.query_store.top_queries(
            since, now, k=settings.whatif_verify_statements
        )
        definition = IndexDefinition(
            name="_mi_verify",
            table=candidate.table,
            key_columns=candidate.key_columns,
            included_columns=candidate.included_columns,
            hypothetical=True,
        )
        read_gain = 0.0
        write_loss = 0.0
        for query_id, _total in top:
            query = engine.observed_statement(query_id)
            if query is None or getattr(query, "table", None) != candidate.table:
                continue
            try:
                if resolve_whatif_mode(engine.settings) == "batch":
                    base, with_index = engine.whatif_cost_many(
                        query, [(), (definition,)]
                    )
                else:
                    base = engine.whatif_cost(query)
                    with_index = engine.whatif_cost(
                        query, extra_indexes=(definition,)
                    )
            except Exception:
                continue
            delta = base - with_index
            if query.kind == "SELECT" and delta > 0:
                read_gain += delta
            elif query.kind != "SELECT" and delta < 0:
                write_loss += -delta
        if read_gain <= 0:
            return False
        return write_loss < read_gain

    def _already_indexed(self, candidate: MergeCandidate) -> bool:
        """True if an existing index already serves this candidate.

        An existing index serves the candidate when the candidate's keys
        are a prefix of the existing keys (or equal) and the existing
        index covers the candidate's included columns.
        """
        table = self.engine.database.table(candidate.table)
        wanted = set(candidate.key_columns) | set(candidate.included_columns)
        for definition in table.index_definitions():
            prefix = definition.key_columns[: len(candidate.key_columns)]
            if prefix != candidate.key_columns:
                continue
            available = set(definition.all_columns) | set(
                table.schema.primary_key
            )
            if wanted <= available:
                return True
        return False

    def workload_coverage(self, since: float, until: float) -> float:
        """MI-source coverage (Section 5.2): every statement is analyzed
        except inserts and updates/deletes without predicates."""
        qs = self.engine.query_store
        analyzed = []
        for info in qs.queries():
            if info.kind == "INSERT":
                continue
            query = self.engine.observed_statement(info.query_id)
            if (
                info.kind in ("UPDATE", "DELETE")
                and query is not None
                and not getattr(query, "predicates", ())
            ):
                continue
            analyzed.append(info.query_id)
        return self.engine.workload_coverage(analyzed, since, until)
