"""The recommendation object exchanged between components.

This is the unit the control plane's state machine tracks (Section 4),
the UI displays (Section 2), and the validator judges (Section 6).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.engine.schema import IndexDefinition, auto_index_name


class Action(enum.Enum):
    """Recommendation action: create or drop an index."""

    CREATE = "create"
    DROP = "drop"


@dataclasses.dataclass
class IndexRecommendation:
    """A create-index or drop-index recommendation."""

    action: Action
    table: str
    key_columns: Tuple[str, ...]
    included_columns: Tuple[str, ...] = ()
    #: "MI", "DTA", or "DROP_ANALYSIS".
    source: str = ""
    #: Estimated workload-level improvement percentage (optimizer units).
    estimated_improvement_pct: float = 0.0
    #: Estimated on-disk size of the index.
    estimated_size_bytes: int = 0
    #: Query Store ids of the statements expected to be impacted (the
    #: "impacted statements" list shown in the UI, Section 2).
    impacted_queries: Tuple[int, ...] = ()
    #: For DROP actions: the existing index's name.
    existing_index_name: Optional[str] = None
    #: Free-form reason ("duplicate of ix_x", "unused for 60 days", ...).
    details: str = ""
    created_at: float = 0.0
    #: Filled when the recommendation is implemented.
    implemented_index_name: Optional[str] = None

    def to_definition(self, name: Optional[str] = None) -> IndexDefinition:
        """Materializable definition (CREATE actions only)."""
        if self.action is not Action.CREATE:
            raise ValueError("only CREATE recommendations define an index")
        return IndexDefinition(
            name=name or auto_index_name(self.table, self.key_columns),
            table=self.table,
            key_columns=self.key_columns,
            included_columns=self.included_columns,
            auto_created=True,
        )

    def describe(self) -> str:
        """UI-style one-liner."""
        if self.action is Action.DROP:
            return f"DROP INDEX {self.existing_index_name} ON {self.table} ({self.details})"
        keys = ", ".join(self.key_columns)
        text = f"CREATE INDEX ON {self.table}({keys})"
        if self.included_columns:
            text += " INCLUDE(" + ", ".join(self.included_columns) + ")"
        text += f" — est. impact {self.estimated_improvement_pct:.1f}% [{self.source}]"
        return text

    def structure_key(self) -> tuple:
        """Identity for duplicate-recommendation detection.

        Include columns are an unordered set at the leaf, so their order
        is irrelevant to identity — successive analysis runs may emit them
        in different orders.
        """
        return (
            self.action,
            self.table,
            self.key_columns,
            tuple(sorted(self.included_columns)),
            self.existing_index_name,
        )
