"""DTA re-architected as an automated service (Section 5.3).

- :mod:`whatif` — metered wrapper over the engine's what-if API with
  sampled-statistics budgeting;
- :mod:`candidate_selection` — per-query optimal configuration search;
- :mod:`enumeration` — greedy workload-level enumeration under
  max-indexes / storage constraints;
- :mod:`reports` — the per-statement impact report and coverage;
- :mod:`session` — the resumable session state machine with resource
  budgets and abort-on-interference.
"""

from repro.recommender.dta.session import DtaSession, DtaSettings, DtaSessionState

__all__ = ["DtaSession", "DtaSessionState", "DtaSettings"]
