"""The DTA session: lifecycle, budgets, and recommendation assembly.

A session runs the full pipeline — workload acquisition, per-query
candidate selection, MI augmentation, workload-level enumeration — under
the engine's tuning resource pool.  Exhausting the pool raises a
*transient* error so the control plane's retry machinery resumes the
session in a later window (the what-if cost cache preserves progress);
detected interference with user queries aborts the session outright
(Section 5.3.1).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional

from repro.engine.engine import SqlEngine
from repro.recommender.dta.candidate_selection import (
    DtaCandidate,
    select_candidates,
)
from repro.recommender.dta.enumeration import (
    EnumerationConstraints,
    greedy_enumerate,
)
from repro.recommender.dta.reports import DtaReport, build_report
from repro.recommender.dta.whatif import WhatIfSession
from repro.recommender.impact import candidate_key_columns
from repro.recommender.recommendation import Action, IndexRecommendation
from repro.recommender.workload_selection import acquire_workload, window_for_tier
from repro.errors import SessionAbortedError


class DtaSessionState(enum.Enum):
    """Lifecycle of a DTA tuning session (Section 5.3.3)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    ABORTED = "aborted"


@dataclasses.dataclass
class DtaSettings:
    """Session configuration."""

    tier: str = "standard"
    window_hours: Optional[float] = None
    top_k: Optional[int] = None
    max_indexes: int = 5
    storage_budget_bytes: Optional[int] = None
    min_marginal_improvement: float = 0.01
    #: Minimum per-query benefit fraction in candidate selection.
    min_benefit_fraction: float = 0.05
    #: Sampled-statistics budget (None = unlimited; the paper cut DTA's
    #: statistics builds 2-3x without quality loss).
    stats_column_budget: Optional[int] = 24
    sample_fraction: float = 0.05
    use_merging: bool = True
    augment_with_mi: bool = True
    #: Minimum estimated improvement (%) for emitting a recommendation.
    min_improvement_pct: float = 5.0


class DtaSession:
    """One tuning session over one database."""

    def __init__(
        self,
        engine: SqlEngine,
        settings: Optional[DtaSettings] = None,
        interference_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.engine = engine
        self.settings = settings or DtaSettings()
        self.state = DtaSessionState.PENDING
        self.interference_check = interference_check
        hours, k = window_for_tier(self.settings.tier)
        self.window_hours = self.settings.window_hours or hours
        self.top_k = self.settings.top_k or k
        self.whatif = WhatIfSession(
            engine,
            sample_fraction=self.settings.sample_fraction,
            stats_column_budget=self.settings.stats_column_budget,
        )
        self.report: Optional[DtaReport] = None
        self.error: Optional[str] = None

    # ------------------------------------------------------------------

    def _check_interference(self) -> None:
        if self.interference_check is not None and self.interference_check():
            self.state = DtaSessionState.ABORTED
            self._cleanup()
            raise SessionAbortedError(
                "DTA session aborted: slowing down user queries"
            )

    def _cleanup(self) -> None:
        """Remove session temp state (hypothetical indexes, caches)."""
        self.whatif._cost_cache.clear()

    # ------------------------------------------------------------------

    def run(self) -> List[IndexRecommendation]:
        """Execute the pipeline; returns create recommendations.

        Raises :class:`ResourceBudgetExceededError` (transient — control
        plane retries in a later window) or :class:`SessionAbortedError`.
        """
        self.state = DtaSessionState.RUNNING
        try:
            recommendations = self._run_pipeline()
        except Exception:
            if self.state is not DtaSessionState.ABORTED:
                self.state = DtaSessionState.FAILED
            raise
        self.state = DtaSessionState.COMPLETED
        return recommendations

    def _run_pipeline(self) -> List[IndexRecommendation]:
        engine = self.engine
        workload = acquire_workload(
            engine,
            now=engine.now,
            hours=self.window_hours,
            k=self.top_k,
        )
        self._check_interference()
        candidates = select_candidates(
            self.whatif,
            workload.statements,
            min_benefit_fraction=self.settings.min_benefit_fraction,
        )
        self._check_interference()
        if self.settings.augment_with_mi:
            candidates = self._augment_with_mi(candidates)
        constraints = EnumerationConstraints(
            max_indexes=self.settings.max_indexes,
            storage_budget_bytes=self.settings.storage_budget_bytes,
            min_marginal_improvement=self.settings.min_marginal_improvement,
        )
        result = greedy_enumerate(
            engine,
            self.whatif,
            workload.statements,
            candidates,
            constraints=constraints,
            use_merging=self.settings.use_merging,
        )
        self._check_interference()
        self.report = build_report(
            workload, result, result.chosen, self.whatif.stats
        )
        return self._assemble(result, workload)

    # ------------------------------------------------------------------

    def _augment_with_mi(
        self, candidates: List[DtaCandidate]
    ) -> List[DtaCandidate]:
        """Add MI DMV candidates DTA's own analysis missed (Section 5.3.2).

        Benefits for these come from the optimizer estimates recorded in
        the DMV, allowing statements what-if could not cost to still
        contribute candidates to the search.
        """
        from repro.recommender.dta.candidate_selection import _make_candidate

        known = {c.identity for c in candidates}
        for entry in self.engine.missing_indexes.entries():
            keys, includes = candidate_key_columns(entry.group)
            candidate = _make_candidate(entry.group.table, keys, includes, "mi")
            if candidate is None or candidate.identity in known:
                continue
            benefit = (
                entry.user_seeks
                * entry.avg_total_cost
                * entry.avg_user_impact
                / 100.0
            )
            candidate.per_query_benefit = [(0, benefit)]
            candidates.append(candidate)
            known.add(candidate.identity)
        return candidates

    def _assemble(self, result, workload) -> List[IndexRecommendation]:
        if result.improvement_pct < self.settings.min_improvement_pct:
            return []  # the whole configuration is not worth implementing
        recommendations = []
        base = max(result.base_cost, 1e-9)
        for candidate in result.chosen:
            per_index_benefit = sum(b for _q, b in candidate.per_query_benefit)
            improvement = min(99.0, 100.0 * per_index_benefit / base)
            table = self.engine.database.table(candidate.table)
            # Skip candidates an existing index already serves.
            if self._already_indexed(candidate, table):
                continue
            size = table.hypothetical_stats_view(candidate.definition).size_bytes
            recommendations.append(
                IndexRecommendation(
                    action=Action.CREATE,
                    table=candidate.table,
                    key_columns=candidate.key_columns,
                    included_columns=candidate.included_columns,
                    source="DTA",
                    estimated_improvement_pct=max(
                        improvement, result.improvement_pct / max(1, len(result.chosen))
                    ),
                    estimated_size_bytes=size,
                    impacted_queries=tuple(
                        dict.fromkeys(
                            qid for qid, _b in candidate.per_query_benefit if qid
                        )
                    ),
                    details=f"DTA {candidate.origin}; workload -{result.improvement_pct:.1f}%",
                    created_at=self.engine.now,
                )
            )
        return recommendations

    def _already_indexed(self, candidate: DtaCandidate, table) -> bool:
        wanted = set(candidate.key_columns) | set(candidate.included_columns)
        for definition in table.index_definitions():
            prefix = definition.key_columns[: len(candidate.key_columns)]
            if prefix != candidate.key_columns:
                continue
            available = set(definition.all_columns) | set(table.schema.primary_key)
            if wanted <= available:
                return True
        return False
