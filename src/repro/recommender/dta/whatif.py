"""Metered what-if access for DTA (Sections 5.3 and 5.3.1).

All of DTA's optimizer interaction flows through :class:`WhatIfSession`:
it counts calls, builds the sampled statistics DTA needs (charged to the
tuning resource pool), caches (query, configuration) costs so the greedy
enumeration does not re-pay for repeated evaluations, and surfaces
:class:`ResourceBudgetExceededError` to the session for yield/abort
decisions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.engine.engine import SqlEngine
from repro.engine.schema import IndexDefinition
from repro.errors import OptimizeError
from repro.rng import derive


@dataclasses.dataclass
class WhatIfStats:
    """Accounting of a session's optimizer interaction."""

    calls: int = 0
    cache_hits: int = 0
    failed_statements: int = 0
    stats_built: int = 0


class WhatIfSession:
    """Cost evaluation under hypothetical configurations for one engine."""

    #: Virtual CPU ms charged per sampled-statistics build.
    STATS_BUILD_CPU_MS = 25.0

    def __init__(
        self,
        engine: SqlEngine,
        sample_fraction: float = 0.05,
        stats_column_budget: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.sample_fraction = sample_fraction
        #: Maximum number of sampled statistics to build (the paper reduced
        #: DTA's statistics creation 2-3x without quality loss).
        self.stats_column_budget = stats_column_budget
        self.stats = WhatIfStats()
        self._cost_cache: Dict[Tuple[int, FrozenSet[str]], float] = {}
        self._stats_built: set = set()

    # ------------------------------------------------------------------

    def ensure_statistics(self, table_name: str, columns: Sequence[str]) -> int:
        """Create sampled statistics on candidate columns (budgeted)."""
        table = self.engine.database.table(table_name)
        built = 0
        for column in columns:
            key = (table_name, column)
            if key in self._stats_built:
                continue
            if table.statistics.get(column) is not None:
                self._stats_built.add(key)
                continue
            if (
                self.stats_column_budget is not None
                and self.stats.stats_built >= self.stats_column_budget
            ):
                break
            table.build_statistics(
                columns=[column],
                sample_fraction=self.sample_fraction,
                rng=derive(self.engine.database.seed, "dta-stats", table_name, column),
                at_time=self.engine.now,
            )
            self.engine.governor.tuning.charge_cpu(
                self.STATS_BUILD_CPU_MS, self.engine.now
            )
            self._stats_built.add(key)
            self.stats.stats_built += 1
            built += 1
        return built

    # ------------------------------------------------------------------

    def cost(
        self,
        query,
        configuration: Sequence[IndexDefinition] = (),
    ) -> Optional[float]:
        """Estimated cost of one statement under a configuration.

        Returns None for statements the what-if API cannot optimize
        (Section 5.3.2); callers treat those as coverage loss.
        Raises ResourceBudgetExceededError when the tuning pool runs dry.
        """
        key = (
            query.template_key(),
            frozenset(d.name for d in configuration),
        )
        cached = self._cost_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        try:
            cost = self.engine.whatif_cost(query, extra_indexes=configuration)
        except OptimizeError:
            self.stats.failed_statements += 1
            return None
        self.stats.calls += 1
        self._cost_cache[key] = cost
        return cost

    def workload_cost(
        self,
        statements,
        configuration: Sequence[IndexDefinition] = (),
    ) -> float:
        """Execution-weighted estimated cost of a workload."""
        total = 0.0
        for statement in statements:
            cost = self.cost(statement.query, configuration)
            if cost is None:
                continue
            total += cost * statement.executions
        return total
