"""Metered what-if access for DTA (Sections 5.3 and 5.3.1).

All of DTA's optimizer interaction flows through :class:`WhatIfSession`:
it counts calls, builds the sampled statistics DTA needs (charged to the
tuning resource pool), caches (query, configuration) costs so the greedy
enumeration does not re-pay for repeated evaluations, and surfaces
:class:`ResourceBudgetExceededError` to the session for yield/abort
decisions.

Costing runs through the engine's batched what-if pricer by default
(``EngineSettings.whatif_mode`` / ``REPRO_WHATIF``): single lookups are
priced as batches of one so repeated configurations of the same
statement share the memoized plan substrate, and the frontier APIs
(:meth:`WhatIfSession.cost_many`, :meth:`WhatIfSession.workload_cost_many`)
price a whole configuration frontier per statement in one pass.  Both
modes produce bit-identical costs and identical session/cache/governor
accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.engine import SqlEngine, resolve_whatif_mode
from repro.engine.schema import IndexDefinition
from repro.errors import OptimizeError
from repro.rng import derive

#: Cached marker for statements the what-if API cannot optimize.  A
#: distinct sentinel (not None) so "known to fail" is distinguishable
#: from "never tried": repeated un-optimizable statements are charged
#: against the tuning pool once and counted once in
#: :attr:`WhatIfStats.failed_statements`.
_FAILED = object()

#: One index's identity for cost-cache purposes: what it covers, not
#: what it is called.  Two same-named but differently-defined indexes
#: must not collide (and two differently-named twins may share).
_DefinitionFingerprint = Tuple[str, Tuple[str, ...], Tuple[str, ...]]


def _definition_fingerprint(
    definition: IndexDefinition,
) -> _DefinitionFingerprint:
    return (
        definition.table,
        tuple(definition.key_columns),
        tuple(definition.included_columns),
    )


@dataclasses.dataclass
class WhatIfStats:
    """Accounting of a session's optimizer interaction."""

    calls: int = 0
    cache_hits: int = 0
    failed_statements: int = 0
    stats_built: int = 0


class WhatIfSession:
    """Cost evaluation under hypothetical configurations for one engine."""

    #: Virtual CPU ms charged per sampled-statistics build.
    STATS_BUILD_CPU_MS = 25.0

    def __init__(
        self,
        engine: SqlEngine,
        sample_fraction: float = 0.05,
        stats_column_budget: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.sample_fraction = sample_fraction
        #: Maximum number of sampled statistics to build (the paper reduced
        #: DTA's statistics creation 2-3x without quality loss).
        self.stats_column_budget = stats_column_budget
        self.stats = WhatIfStats()
        self._cost_cache: Dict[
            Tuple[int, FrozenSet[_DefinitionFingerprint]], object
        ] = {}
        self._stats_built: set = set()

    # ------------------------------------------------------------------

    def ensure_statistics(self, table_name: str, columns: Sequence[str]) -> int:
        """Create sampled statistics on candidate columns (budgeted)."""
        table = self.engine.database.table(table_name)
        built = 0
        for column in columns:
            key = (table_name, column)
            if key in self._stats_built:
                continue
            if table.statistics.get(column) is not None:
                self._stats_built.add(key)
                continue
            if (
                self.stats_column_budget is not None
                and self.stats.stats_built >= self.stats_column_budget
            ):
                break
            table.build_statistics(
                columns=[column],
                sample_fraction=self.sample_fraction,
                rng=derive(self.engine.database.seed, "dta-stats", table_name, column),
                at_time=self.engine.now,
            )
            self.engine.governor.tuning.charge_cpu(
                self.STATS_BUILD_CPU_MS, self.engine.now
            )
            self.engine.governor.tuning.usage.stats_builds += 1
            self._stats_built.add(key)
            self.stats.stats_built += 1
            built += 1
        return built

    # ------------------------------------------------------------------

    def _cache_key(self, query, configuration: Sequence[IndexDefinition]):
        return (
            query.template_key(),
            frozenset(_definition_fingerprint(d) for d in configuration),
        )

    def cost(
        self,
        query,
        configuration: Sequence[IndexDefinition] = (),
    ) -> Optional[float]:
        """Estimated cost of one statement under a configuration.

        Returns None for statements the what-if API cannot optimize
        (Section 5.3.2); callers treat those as coverage loss.
        Raises ResourceBudgetExceededError when the tuning pool runs dry.
        """
        return self.cost_many(query, (configuration,))[0]

    def cost_many(
        self,
        query,
        configurations: Sequence[Sequence[IndexDefinition]],
    ) -> List[Optional[float]]:
        """Costs of one statement under a frontier of configurations.

        Equivalent to calling :meth:`cost` once per configuration — same
        floats, same cache/stats/governor accounting, in the same order —
        but uncached configurations are priced through one engine batch
        pricer, sharing the statement's plan substrate.  A mid-frontier
        ResourceBudgetExceededError propagates with the configurations
        priced so far already cached (the retry resumes where it left
        off, exactly as the scalar loop would).
        """
        configurations = [tuple(c) for c in configurations]
        results: List[Optional[float]] = [None] * len(configurations)
        batch = None
        use_batch = resolve_whatif_mode(self.engine.settings) == "batch"
        for i, configuration in enumerate(configurations):
            key = self._cache_key(query, configuration)
            cached = self._cost_cache.get(key)
            if cached is _FAILED:
                self.stats.cache_hits += 1
                continue
            if cached is not None:
                self.stats.cache_hits += 1
                results[i] = cached
                continue
            try:
                if use_batch:
                    if batch is None:
                        batch = self.engine.whatif_batch(query)
                    cost = batch.cost(configuration)
                else:
                    cost = self.engine.whatif_cost(
                        query, extra_indexes=configuration
                    )
            except OptimizeError:
                self.stats.failed_statements += 1
                self._cost_cache[key] = _FAILED
                continue
            self.stats.calls += 1
            self._cost_cache[key] = cost
            results[i] = cost
        return results

    def workload_cost(
        self,
        statements,
        configuration: Sequence[IndexDefinition] = (),
    ) -> float:
        """Execution-weighted estimated cost of a workload."""
        return self.workload_cost_many(statements, (configuration,))[0]

    def workload_cost_many(
        self,
        statements,
        configurations: Sequence[Sequence[IndexDefinition]],
    ) -> List[float]:
        """Workload costs of a configuration frontier, statement-major.

        Each statement's frontier is priced in one batch before moving
        to the next statement.  Per configuration, the accumulation
        order (and therefore every float) is identical to
        :meth:`workload_cost`; across configurations the (statement,
        configuration) evaluation set is identical too, so session and
        governor totals match the scalar sweep.
        """
        configurations = [tuple(c) for c in configurations]
        totals = [0.0] * len(configurations)
        for statement in statements:
            costs = self.cost_many(statement.query, configurations)
            for i, cost in enumerate(costs):
                if cost is None:
                    continue
                totals[i] += cost * statement.executions
        return totals
