"""Per-query candidate selection (Section 5.3, the DTA search's first phase).

For each statement in W, DTA proposes candidate indexes derived from
sargable predicates, join columns, group-by and order-by clauses — the
analysis MI cannot do — and keeps the candidates that actually lower the
statement's what-if cost.  Candidates from MI augment the pool for
statements the what-if API cannot cost (Section 5.3.2).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.engine.query import (
    DeleteQuery,
    SelectQuery,
    UpdateQuery,
    equality_predicates,
    range_predicates,
)
from repro.engine.schema import IndexDefinition
from repro.recommender.dta.whatif import WhatIfSession
from repro.recommender.workload_selection import WorkloadStatement

_candidate_counter = itertools.count(1)


@dataclasses.dataclass
class DtaCandidate:
    """A candidate index with per-query benefit bookkeeping."""

    table: str
    key_columns: Tuple[str, ...]
    included_columns: Tuple[str, ...]
    definition: IndexDefinition
    #: (query_id, benefit) pairs from candidate selection.
    per_query_benefit: List[Tuple[int, float]] = dataclasses.field(
        default_factory=list
    )
    #: "sargable", "join", "groupby", "orderby", "mi".
    origin: str = "sargable"

    @property
    def identity(self) -> tuple:
        return (self.table, self.key_columns, self.included_columns)

    @property
    def total_benefit(self) -> float:
        return sum(benefit for _qid, benefit in self.per_query_benefit)


def _make_candidate(
    table: str,
    keys: Sequence[str],
    includes: Sequence[str],
    origin: str,
) -> Optional[DtaCandidate]:
    keys = tuple(dict.fromkeys(keys))
    includes = tuple(dict.fromkeys(c for c in includes if c not in keys))
    if not keys:
        return None
    name = f"_dta_hyp_{next(_candidate_counter)}"
    definition = IndexDefinition(
        name=name,
        table=table,
        key_columns=keys,
        included_columns=includes,
        hypothetical=True,
    )
    return DtaCandidate(
        table=table,
        key_columns=keys,
        included_columns=includes,
        definition=definition,
        origin=origin,
    )


def candidates_for_query(query) -> List[DtaCandidate]:
    """Structural candidates for one statement (no optimizer calls yet)."""
    if isinstance(query, (UpdateQuery, DeleteQuery)):
        if not query.predicates:
            return []
        eq = [p.column for p in equality_predicates(query.predicates)]
        rng = [p.column for p in range_predicates(query.predicates)]
        candidate = _make_candidate(query.table, eq + rng[:1], rng[1:], "sargable")
        return [candidate] if candidate else []
    if not isinstance(query, SelectQuery):
        return []
    out: List[DtaCandidate] = []
    referenced = query.referenced_columns()
    eq = [p.column for p in equality_predicates(query.predicates)]
    rng = [p.column for p in range_predicates(query.predicates)]
    # Sargable key, covering and non-covering variants.
    if eq or rng:
        keys = eq + rng[:1]
        residue = [c for c in referenced if c not in keys] + rng[1:]
        out.append(_make_candidate(query.table, keys, residue, "sargable"))
        out.append(_make_candidate(query.table, keys, (), "sargable"))
    # Order-by: equality prefix + order columns as trailing keys.
    ascending_order = [i.column for i in query.order_by if i.ascending]
    if ascending_order:
        keys = eq + [c for c in ascending_order if c not in eq]
        includes = [c for c in referenced if c not in keys]
        out.append(_make_candidate(query.table, keys, includes, "orderby"))
    # Group-by: group columns as keys, aggregated columns included.
    if query.group_by:
        keys = list(query.group_by)
        agg_columns = [a.column for a in query.aggregates if a.column]
        range_cols = [p.column for p in query.predicates if p.is_range]
        out.append(
            _make_candidate(
                query.table, keys, agg_columns + range_cols, "groupby"
            )
        )
    # Join: an index on the inner table's join column (enables NLJ seeks).
    if query.join is not None:
        join = query.join
        join_includes = list(join.select_columns)
        join_keys = [join.right_column] + [
            p.column for p in join.predicates if p.is_equality
        ]
        out.append(_make_candidate(join.table, join_keys, join_includes, "join"))
        pred_keys = [p.column for p in join.predicates if p.is_equality]
        if pred_keys:
            out.append(
                _make_candidate(
                    join.table,
                    pred_keys,
                    [join.right_column] + join_includes,
                    "join",
                )
            )
    return [c for c in out if c is not None]


def select_candidates(
    whatif: WhatIfSession,
    statements: Sequence[WorkloadStatement],
    min_benefit_fraction: float = 0.05,
) -> List[DtaCandidate]:
    """Evaluate structural candidates per query; keep the beneficial ones.

    For every statement the candidate set is costed one at a time with the
    what-if API; a candidate survives if it reduces the statement's cost by
    at least ``min_benefit_fraction``.  Surviving candidates are pooled and
    deduplicated, accumulating per-query benefits.
    """
    pool: dict = {}
    for statement in statements:
        base_cost = whatif.cost(statement.query, ())
        if base_cost is None:
            continue
        for candidate in candidates_for_query(statement.query):
            whatif.ensure_statistics(
                candidate.table, candidate.key_columns
            )
            cost = whatif.cost(statement.query, (candidate.definition,))
            if cost is None:
                continue
            benefit = (base_cost - cost) * statement.executions
            if benefit <= base_cost * statement.executions * min_benefit_fraction:
                continue
            existing = pool.get(candidate.identity)
            if existing is None:
                pool[candidate.identity] = candidate
                existing = candidate
            existing.per_query_benefit.append((statement.query_id, benefit))
    return list(pool.values())
