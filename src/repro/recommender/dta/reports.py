"""DTA session reports (Section 5.3.2, last paragraph).

After a session completes, DTA emits a report of which statements it
analyzed, which indexes impact which statements, and the workload
coverage — used both to expose recommendation details in the UI and to
measure the effectiveness of the tuning session.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.recommender.dta.candidate_selection import DtaCandidate
from repro.recommender.dta.enumeration import EnumerationResult
from repro.recommender.dta.whatif import WhatIfStats
from repro.recommender.workload_selection import TuningWorkload


@dataclasses.dataclass
class StatementReport:
    """Per-statement outcome of the session."""

    query_id: int
    kind: str
    total_cpu_ms: float
    analyzed: bool
    impacted_by: Tuple[str, ...] = ()


@dataclasses.dataclass
class DtaReport:
    """The session's detailed report."""

    statements: List[StatementReport]
    coverage: float
    estimated_improvement_pct: float
    whatif: WhatIfStats
    iterations: int
    unsupported_query_ids: Tuple[int, ...]

    def analyzed_count(self) -> int:
        return sum(1 for s in self.statements if s.analyzed)

    def error_patterns(self) -> Dict[str, int]:
        """Aggregate of why statements were skipped (improvement backlog)."""
        return {
            "text_unavailable": len(self.unsupported_query_ids),
            "whatif_failed": self.whatif.failed_statements,
        }


def build_report(
    workload: TuningWorkload,
    result: EnumerationResult,
    chosen: List[DtaCandidate],
    whatif_stats: WhatIfStats,
) -> DtaReport:
    """Assemble the session report from the pipeline's artifacts."""
    impacted_by: Dict[int, List[str]] = {}
    for candidate in chosen:
        label = f"{candidate.table}({', '.join(candidate.key_columns)})"
        for query_id, _benefit in candidate.per_query_benefit:
            impacted_by.setdefault(query_id, []).append(label)
    statements = [
        StatementReport(
            query_id=s.query_id,
            kind=s.kind,
            total_cpu_ms=s.total_cpu_ms,
            analyzed=True,
            impacted_by=tuple(impacted_by.get(s.query_id, ())),
        )
        for s in workload.statements
    ]
    statements.extend(
        StatementReport(query_id=qid, kind="?", total_cpu_ms=0.0, analyzed=False)
        for qid in workload.unsupported
    )
    return DtaReport(
        statements=statements,
        coverage=workload.coverage,
        estimated_improvement_pct=result.improvement_pct,
        whatif=whatif_stats,
        iterations=result.iterations,
        unsupported_query_ids=workload.unsupported,
    )
