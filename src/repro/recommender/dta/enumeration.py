"""Workload-level greedy enumeration (Section 5.3).

Given the pooled candidates from per-query selection, DTA picks the final
configuration by greedy search: repeatedly add the candidate that most
reduces the execution-weighted what-if cost of the whole workload —
including DML maintenance overheads, which the what-if DML costing
accounts for — subject to a maximum index count and a storage budget.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.engine.engine import SqlEngine
from repro.engine.schema import IndexDefinition
from repro.recommender.dta.candidate_selection import DtaCandidate
from repro.recommender.dta.whatif import WhatIfSession
from repro.recommender.merging import MergeCandidate, merge_candidates
from repro.recommender.workload_selection import WorkloadStatement


@dataclasses.dataclass
class EnumerationResult:
    """Outcome of the greedy search."""

    chosen: List[DtaCandidate]
    base_cost: float
    final_cost: float
    iterations: int

    @property
    def improvement_pct(self) -> float:
        if self.base_cost <= 0:
            return 0.0
        return 100.0 * (self.base_cost - self.final_cost) / self.base_cost


@dataclasses.dataclass
class EnumerationConstraints:
    """The tuning constraints DTA supports (Section 5.1.1)."""

    max_indexes: int = 5
    storage_budget_bytes: Optional[int] = None
    #: Stop when the best marginal improvement falls below this fraction
    #: of the current workload cost.
    min_marginal_improvement: float = 0.01


def _apply_merging(candidates: List[DtaCandidate]) -> List[DtaCandidate]:
    """Merge prefix-compatible candidates before enumeration."""
    as_merge = [
        MergeCandidate(
            table=c.table,
            key_columns=c.key_columns,
            included_columns=c.included_columns,
            benefit=c.total_benefit,
            impacted_queries=tuple(qid for qid, _b in c.per_query_benefit),
            source="DTA",
        )
        for c in candidates
    ]
    merged = merge_candidates(as_merge)
    out: List[DtaCandidate] = []
    by_identity = {
        (c.table, c.key_columns, c.included_columns): c for c in candidates
    }
    from repro.recommender.dta.candidate_selection import _make_candidate

    for m in merged:
        identity = (m.table, m.key_columns, m.included_columns)
        original = by_identity.get(identity)
        if original is not None:
            out.append(original)
            continue
        rebuilt = _make_candidate(m.table, m.key_columns, m.included_columns, "merged")
        if rebuilt is None:
            continue
        rebuilt.per_query_benefit = [(qid, 0.0) for qid in m.impacted_queries]
        out.append(rebuilt)
    return out


def _candidate_size(engine: SqlEngine, candidate: DtaCandidate) -> int:
    table = engine.database.table(candidate.table)
    return table.hypothetical_stats_view(candidate.definition).size_bytes


def greedy_enumerate(
    engine: SqlEngine,
    whatif: WhatIfSession,
    statements: Sequence[WorkloadStatement],
    candidates: List[DtaCandidate],
    constraints: Optional[EnumerationConstraints] = None,
    use_merging: bool = True,
) -> EnumerationResult:
    """Greedy configuration search over the candidate pool."""
    constraints = constraints or EnumerationConstraints()
    if use_merging:
        candidates = _apply_merging(candidates)
    base_cost = whatif.workload_cost(statements, ())
    chosen: List[DtaCandidate] = []
    chosen_defs: List[IndexDefinition] = []
    remaining = list(candidates)
    current_cost = base_cost
    storage_used = 0
    iterations = 0
    while remaining and len(chosen) < constraints.max_indexes:
        iterations += 1
        # Frontier batching: the round's eligible candidates form one
        # configuration frontier priced per statement in a single batch
        # (shared plan substrate), instead of one workload sweep each.
        eligible: List[DtaCandidate] = []
        for candidate in remaining:
            if constraints.storage_budget_bytes is not None:
                size = _candidate_size(engine, candidate)
                if storage_used + size > constraints.storage_budget_bytes:
                    continue
            eligible.append(candidate)
        frontier = [
            tuple(chosen_defs) + (candidate.definition,)
            for candidate in eligible
        ]
        costs = whatif.workload_cost_many(statements, frontier)
        best: Tuple[Optional[DtaCandidate], float] = (None, current_cost)
        for candidate, cost in zip(eligible, costs):
            if cost < best[1]:
                best = (candidate, cost)
        candidate, cost = best
        if candidate is None:
            break
        improvement = current_cost - cost
        if improvement < constraints.min_marginal_improvement * max(
            current_cost, 1e-9
        ):
            break
        chosen.append(candidate)
        chosen_defs.append(candidate.definition)
        storage_used += _candidate_size(engine, candidate)
        current_cost = cost
        remaining = [c for c in remaining if c.identity != candidate.identity]
    return EnumerationResult(
        chosen=chosen,
        base_cost=base_cost,
        final_cost=current_cost,
        iterations=iterations,
    )
