"""Automatic workload identification (Sections 5.1.2 and 5.3.2).

The service cannot ask a DBA for a representative workload; instead it
selects the K most expensive statements (by CPU or duration) from Query
Store over the past N hours, sizing N and K to the database's resources,
and judges the result by *workload coverage* — the fraction of total
resources consumed by the selected statements.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.clock import HOURS
from repro.engine.engine import SqlEngine
from repro.engine.query import InsertQuery


@dataclasses.dataclass
class WorkloadStatement:
    """One tunable statement: the AST plus its observed weight."""

    query_id: int
    query: object
    total_cpu_ms: float
    executions: int
    kind: str


@dataclasses.dataclass
class TuningWorkload:
    """The workload W handed to DTA."""

    statements: List[WorkloadStatement]
    #: Fraction of total resources covered by the analyzed statements.
    coverage: float
    #: Query ids whose text could not be acquired/tuned (fragments not in
    #: the plan cache, unsupported statements).
    unsupported: Tuple[int, ...]
    window_hours: float
    candidate_count: int

    @property
    def query_ids(self) -> Tuple[int, ...]:
        return tuple(s.query_id for s in self.statements)


def window_for_tier(tier: str) -> Tuple[float, int]:
    """(N hours, K statements) by service tier (Section 5.3.2: N and K are
    set from the resources available to the database)."""
    table = {
        "basic": (12.0, 8),
        "standard": (24.0, 15),
        "premium": (48.0, 30),
    }
    return table.get(tier, (24.0, 15))


def acquire_workload(
    engine: SqlEngine,
    now: float,
    hours: float = 24.0,
    k: int = 15,
    metric: str = "cpu_time_ms",
    rewrite_bulk: bool = True,
) -> TuningWorkload:
    """Select and acquire the top-K statements over the past N hours.

    Statement text acquisition follows the paper's fallback chain: complete
    Query Store text, else the plan cache; BULK INSERTs are rewritten into
    equivalent INSERTs so their maintenance cost is what-if optimizable.
    Statements that cannot be acquired count against coverage.
    """
    since = max(0.0, now - hours * HOURS)
    top = engine.query_store.top_queries(since, now, k=k, metric=metric)
    statements: List[WorkloadStatement] = []
    unsupported: List[int] = []
    covered_ids: List[int] = []
    for query_id, total in top:
        query = engine.statement_for_tuning(query_id)
        if query is None:
            unsupported.append(query_id)
            continue
        if isinstance(query, InsertQuery) and query.bulk:
            if not rewrite_bulk:
                unsupported.append(query_id)
                continue
            query = InsertQuery(table=query.table, rows=query.rows, bulk=False)
        merged = engine.query_store.aggregate(since, now, query_id=query_id)
        executions = sum(stats.executions for stats in merged.values())
        info = engine.query_store.query_info(query_id)
        statements.append(
            WorkloadStatement(
                query_id=query_id,
                query=query,
                total_cpu_ms=total,
                executions=max(1, executions),
                kind=info.kind if info else "SELECT",
            )
        )
        covered_ids.append(query_id)
    coverage = engine.workload_coverage(covered_ids, since, now, metric=metric)
    return TuningWorkload(
        statements=statements,
        coverage=coverage,
        unsupported=tuple(unsupported),
        window_hours=hours,
        candidate_count=len(top),
    )


def coverage_for_k(
    engine: SqlEngine,
    now: float,
    hours: float,
    ks: List[int],
    metric: str = "cpu_time_ms",
) -> List[Tuple[int, float]]:
    """Coverage achieved as K grows (the Section 5.1.2 trade-off curve)."""
    since = max(0.0, now - hours * HOURS)
    results = []
    for k in ks:
        top = engine.query_store.top_queries(since, now, k=k, metric=metric)
        ids = [query_id for query_id, _total in top]
        results.append((k, engine.workload_coverage(ids, since, now, metric=metric)))
    return results
