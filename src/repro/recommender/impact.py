"""Impact accumulation across MI DMV snapshots and the slope test.

The MI DMV resets on restart/failover/schema change, so the recommender
accumulates periodic snapshots and stitches per-group time series back
together (Section 5.2).  Really beneficial indexes show impact scores that
keep growing over time; the paper formulates this as a hypothesis test —
the t-statistic of the regression slope of the impact series must clear a
configurable threshold.  For high-impact indexes a few points suffice.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from scipy import stats as scipy_stats

from repro.engine.missing_index import (
    MissingIndexGroup,
    MissingIndexSnapshot,
)


@dataclasses.dataclass
class ImpactPoint:
    """One stitched observation of a group's cumulative impact."""

    at: float
    cumulative_score: float
    cumulative_seeks: int


@dataclasses.dataclass
class GroupSeries:
    """Reset-stitched accumulation for one MI group."""

    group: MissingIndexGroup
    points: List[ImpactPoint] = dataclasses.field(default_factory=list)
    #: Totals across resets.
    total_seeks: int = 0
    total_score: float = 0.0
    #: Per-snapshot raw values from the segment currently accumulating.
    _segment_seeks: int = 0
    _segment_score: float = 0.0
    last_avg_cost: float = 0.0
    last_avg_impact: float = 0.0

    def observe(self, at: float, seeks: int, score: float, avg_cost: float, avg_impact: float) -> None:
        # Seek counts are monotone within one DMV lifetime; a decrease is
        # the reliable reset signal.  (Scores can legitimately dip when the
        # running averages move, so they must NOT be used for detection.)
        if seeks < self._segment_seeks:
            # The DMV reset since the previous snapshot: close the segment.
            self.total_seeks += self._segment_seeks
            self.total_score += self._segment_score
            self._segment_seeks = 0
            self._segment_score = 0.0
        self._segment_seeks = seeks
        self._segment_score = score
        self.last_avg_cost = avg_cost
        self.last_avg_impact = avg_impact
        self.points.append(
            ImpactPoint(
                at=at,
                cumulative_score=self.total_score + score,
                cumulative_seeks=self.total_seeks + seeks,
            )
        )

    @property
    def seeks(self) -> int:
        return self.total_seeks + self._segment_seeks

    @property
    def score(self) -> float:
        return self.total_score + self._segment_score


class SnapshotAccumulator:
    """Accumulates MI snapshots into per-group stitched series."""

    def __init__(self) -> None:
        self._series: Dict[MissingIndexGroup, GroupSeries] = {}

    def add_snapshot(self, snapshot: MissingIndexSnapshot) -> None:
        for entry in snapshot.entries:
            series = self._series.get(entry.group)
            if series is None:
                series = GroupSeries(group=entry.group)
                self._series[entry.group] = series
            score = entry.user_seeks * entry.avg_total_cost * (
                entry.avg_user_impact / 100.0
            )
            series.observe(
                at=snapshot.taken_at,
                seeks=entry.user_seeks,
                score=score,
                avg_cost=entry.avg_total_cost,
                avg_impact=entry.avg_user_impact,
            )

    def series(self) -> List[GroupSeries]:
        return list(self._series.values())

    def get(self, group: MissingIndexGroup) -> Optional[GroupSeries]:
        return self._series.get(group)

    def clear(self) -> None:
        self._series.clear()


@dataclasses.dataclass
class SlopeTest:
    """Result of the impact-slope hypothesis test."""

    slope: float
    t_statistic: float
    n_points: int
    passed: bool


def impact_slope_test(
    points: List[ImpactPoint],
    min_slope: float = 0.0,
    t_threshold: float = 2.0,
) -> SlopeTest:
    """t-test that the cumulative impact score grows over time.

    Assuming normally distributed errors, the t-statistic of the regression
    slope against zero must exceed ``t_threshold`` (Section 5.2 step 4).
    A strictly increasing series with enough points passes quickly.
    """
    if len(points) < 3:
        return SlopeTest(slope=0.0, t_statistic=0.0, n_points=len(points), passed=False)
    xs = [p.at for p in points]
    ys = [p.cumulative_score for p in points]
    if len(set(xs)) < 2:
        return SlopeTest(slope=0.0, t_statistic=0.0, n_points=len(points), passed=False)
    result = scipy_stats.linregress(xs, ys)
    slope = float(result.slope)
    stderr = float(result.stderr) if result.stderr else 0.0
    if stderr <= 1e-12:
        # A perfectly linear accumulation: infinitely confident slope.
        t_stat = math.inf if slope > 0 else 0.0
    else:
        t_stat = slope / stderr
    passed = slope > min_slope and t_stat > t_threshold
    return SlopeTest(slope=slope, t_statistic=t_stat, n_points=len(points), passed=passed)


def aggregate_benefit(series: GroupSeries) -> float:
    """Aggregated benefit of an MI group (optimizer cost units saved)."""
    return series.score


def candidate_key_columns(
    group: MissingIndexGroup,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """MI column mapping (Section 5.2): EQUALITY columns become keys,
    one INEQUALITY column is appended to the key, the remaining
    inequality and include columns are included columns."""
    keys = group.equality_columns + group.inequality_columns[:1]
    includes = tuple(
        column
        for column in group.inequality_columns[1:] + group.include_columns
        if column not in keys
    )
    return keys, tuple(dict.fromkeys(includes))
