"""Conservative index merging (Section 5.2, step 5; Chaudhuri & Narasayya '99).

To find indexes that benefit multiple queries without exploding the search
space, candidates whose key columns are a *prefix* of another candidate's
keys (include columns may differ) are merged: the wider key wins and the
include sets are unioned.  A merge is kept only if it does not lose benefit
— we approximate the paper's "merge only if the aggregate benefit across
queries improves" by requiring the merged index to subsume both inputs'
column sets, so every query served before is still served (possibly with a
slightly larger index).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple


@dataclasses.dataclass
class MergeCandidate:
    """A candidate index during merging."""

    table: str
    key_columns: Tuple[str, ...]
    included_columns: Tuple[str, ...]
    benefit: float
    impacted_queries: Tuple[int, ...] = ()
    source: str = ""

    def subsumes(self, other: "MergeCandidate") -> bool:
        """True if this candidate serves every query the other serves."""
        if self.table != other.table:
            return False
        if self.key_columns[: len(other.key_columns)] != other.key_columns:
            return False
        own_columns = set(self.key_columns) | set(self.included_columns)
        other_columns = set(other.key_columns) | set(other.included_columns)
        return other_columns <= own_columns


def merge_pair(a: MergeCandidate, b: MergeCandidate) -> MergeCandidate:
    """Merge two candidates where one's keys prefix the other's."""
    wide, narrow = (a, b) if len(a.key_columns) >= len(b.key_columns) else (b, a)
    includes = tuple(
        dict.fromkeys(
            column
            for column in wide.included_columns + narrow.included_columns
            + narrow.key_columns
            if column not in wide.key_columns
        )
    )
    return MergeCandidate(
        table=wide.table,
        key_columns=wide.key_columns,
        included_columns=includes,
        benefit=a.benefit + b.benefit,
        impacted_queries=tuple(
            dict.fromkeys(a.impacted_queries + b.impacted_queries)
        ),
        source=wide.source or narrow.source,
    )


def mergeable(a: MergeCandidate, b: MergeCandidate) -> bool:
    """Conservative rule: same table, one key list prefixes the other."""
    if a.table != b.table:
        return False
    shorter, longer = (
        (a, b) if len(a.key_columns) <= len(b.key_columns) else (b, a)
    )
    return longer.key_columns[: len(shorter.key_columns)] == shorter.key_columns


def merge_candidates(
    candidates: List[MergeCandidate], max_include_columns: int = 8
) -> List[MergeCandidate]:
    """Greedy pass merging prefix-compatible candidates.

    Candidates are processed in descending benefit order; each is merged
    into an existing output candidate when the conservative rule applies
    and the merged include list stays within ``max_include_columns``
    (over-wide indexes cost more to maintain than they save).
    """
    ordered = sorted(candidates, key=lambda c: -c.benefit)
    merged: List[MergeCandidate] = []
    for candidate in ordered:
        target_index = None
        for i, existing in enumerate(merged):
            if not mergeable(existing, candidate):
                continue
            trial = merge_pair(existing, candidate)
            if len(trial.included_columns) <= max_include_columns:
                target_index = i
                break
        if target_index is None:
            merged.append(candidate)
        else:
            merged[target_index] = merge_pair(merged[target_index], candidate)
    return merged
