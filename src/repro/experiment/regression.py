"""A seeded create->validate->revert scenario through the control plane.

The paper's core failure mode (Sections 6, 8.1), staged deterministically
end to end: a table with a heavily skewed column and stale sampled
statistics makes an index look like a clear win to the optimizer; the
control plane implements it; actual execution regresses; the validator's
Welch t-tests detect the regression; and the control plane reverts the
index.  Because the whole lifecycle runs through :class:`ControlPlane`,
every decision lands in the audit stream — this is the fixture behind
``repro explain --regression-demo``, the explain acceptance test, and the
watchdog alert test.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.clock import HOURS, SimClock
from repro.controlplane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlane,
    ControlPlaneSettings,
    RecommendationState,
)
from repro.engine import (
    Column,
    Database,
    IndexDefinition,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    SqlEngine,
    SqlType,
    TableSchema,
)
from repro.recommender.recommendation import Action, IndexRecommendation
from repro.validation import ValidationSettings


@dataclasses.dataclass
class RegressionScenario:
    """Everything the explain/alert consumers need from one run."""

    plane: ControlPlane
    engine: SqlEngine
    database: str
    rec_id: int
    final_state: RecommendationState


def _build_engine(clock: SimClock, seed: int) -> SqlEngine:
    db = Database("regress-demo", seed=seed)
    schema = TableSchema(
        "events",
        [
            Column("e_id", SqlType.BIGINT, nullable=False),
            Column("e_kind", SqlType.INT),
            Column("e_payload", SqlType.TEXT),
        ],
        primary_key=["e_id"],
    )
    table = db.create_table(schema)
    rng = np.random.default_rng(seed + 1)
    for i in range(6000):
        # e_kind is extremely skewed: almost every row is kind 0.
        kind = 0 if rng.random() < 0.97 else int(rng.integers(1, 50))
        table.insert((i, kind, f"payload-{i % 13}"))
    engine = SqlEngine(db, clock=clock)
    # Stale, sampled statistics make kind=0 look selective to the optimizer.
    table.build_statistics(
        sample_fraction=0.02, rng=np.random.default_rng(seed + 7)
    )
    return engine


def run_regression_scenario(
    seed: int = 3, database: str = "db-standard-0"
) -> RegressionScenario:
    """Stage the regression and drive it to its terminal state."""
    clock = SimClock()
    engine = _build_engine(clock, seed)
    plane = ControlPlane(
        clock,
        settings=ControlPlaneSettings(
            validation_settle=30.0,
            validation_window=2 * HOURS,
        ),
        validation_settings=ValidationSettings(min_resource_share=0.01),
    )
    managed = plane.add_database(
        database,
        engine,
        tier="standard",
        config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
    )

    hot = SelectQuery(
        "events", ("e_payload",), (Predicate("e_kind", Op.EQ, 0),)
    )

    def workload_round(i: int, start_id: int) -> None:
        """The app: frequent inserts plus a hot query on the skew."""
        engine.execute(hot)
        batch = tuple((start_id + i * 5 + j, 0, "x") for j in range(5))
        engine.execute(InsertQuery("events", batch))
        clock.advance(3.0)

    # Phase 1: observe the workload before any index change, long enough
    # to fill the validator's before-window.
    for i in range(45):
        workload_round(i, start_id=100_000)

    # The mis-estimated recommendation, with the optimizer's own what-if
    # numbers as its evidence (exactly what the MI/DTA sources would
    # attach).
    probe = IndexDefinition(
        "hyp", "events", ("e_kind",), ("e_payload",), hypothetical=True
    )
    estimated_before = engine.whatif_cost(hot)
    estimated_after = engine.whatif_cost(hot, extra_indexes=[probe])
    improvement = 100.0 * (1.0 - estimated_after / max(estimated_before, 1e-9))
    recommendation = IndexRecommendation(
        action=Action.CREATE,
        table="events",
        key_columns=("e_kind",),
        included_columns=("e_payload",),
        source="MI",
        estimated_improvement_pct=improvement,
        estimated_size_bytes=engine.database.table("events")
        .hypothetical_stats_view(probe)
        .size_bytes,
        details="seeded regression scenario",
        created_at=clock.now,
    )
    records = plane.register_recommendations(managed, [recommendation], clock.now)
    record = records[0]

    # Let the implementation land exactly on a Query Store interval
    # boundary so the validator's before/after windows see unmixed
    # plans: begin the build a few minutes before the boundary, then
    # let the next process() pass complete it at the boundary.
    interval = engine.query_store.interval_minutes
    boundary = (int(clock.now // interval) + 1) * interval
    clock.advance(boundary - 3.0 - clock.now)
    plane.process()  # begins the online build
    clock.advance(3.0)
    plane.process()  # completes it at the boundary

    # Phase 2: keep the workload running while the control plane carries
    # the record through implement -> validate -> revert.
    for i in range(160):
        if record.terminal:
            break
        plane.process()
        workload_round(i, start_id=200_000)
    plane.process()

    return RegressionScenario(
        plane=plane,
        engine=engine,
        database=database,
        rec_id=record.rec_id,
        final_state=record.state,
    )
