"""Experiment design and control framework (Section 7.2).

Experiments over hundreds of databases are expressed as workflows: named
steps stitched into a sequence, executed per candidate database with state
tracking, error detection, and cleanup.  The framework ships a library of
common steps (:mod:`repro.experiment.steps`) and accepts custom ones —
any object with ``name`` and ``run(context)``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, List, Optional

from repro.errors import WorkflowError


class StepOutcome(enum.Enum):
    """Outcome of one workflow step."""

    COMPLETED = "completed"
    FAILED = "failed"
    SKIPPED = "skipped"


@dataclasses.dataclass
class WorkflowContext:
    """Mutable state threaded through a workflow's steps."""

    database: str
    now: float
    values: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.values[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)


class WorkflowStep:
    """Base class for steps; subclasses override :meth:`run`."""

    name = "step"

    def run(self, context: WorkflowContext) -> None:
        raise NotImplementedError

    def cleanup(self, context: WorkflowContext) -> None:
        """Called when a later step fails; default no-op."""


class FunctionStep(WorkflowStep):
    """Wrap a plain callable as a step."""

    def __init__(
        self,
        name: str,
        func: Callable[[WorkflowContext], None],
        cleanup: Optional[Callable[[WorkflowContext], None]] = None,
    ) -> None:
        self.name = name
        self._func = func
        self._cleanup = cleanup

    def run(self, context: WorkflowContext) -> None:
        self._func(context)

    def cleanup(self, context: WorkflowContext) -> None:
        if self._cleanup is not None:
            self._cleanup(context)


@dataclasses.dataclass
class StepRecord:
    """Execution record of one step."""

    name: str
    outcome: StepOutcome
    error: Optional[str] = None


@dataclasses.dataclass
class WorkflowRun:
    """Outcome of a workflow on one database."""

    database: str
    records: List[StepRecord]
    context: WorkflowContext
    succeeded: bool

    def failed_step(self) -> Optional[str]:
        for record in self.records:
            if record.outcome is StepOutcome.FAILED:
                return record.name
        return None


class ExperimentWorkflow:
    """A sequence of steps run per candidate database."""

    def __init__(self, name: str, steps: List[WorkflowStep]) -> None:
        self.name = name
        self.steps = steps

    def run(self, database: str, now: float = 0.0, **initial) -> WorkflowRun:
        """Execute all steps; on failure, clean up completed steps in
        reverse order and mark remaining steps skipped."""
        context = WorkflowContext(database=database, now=now, values=dict(initial))
        records: List[StepRecord] = []
        completed: List[WorkflowStep] = []
        failed = False
        for step in self.steps:
            if failed:
                records.append(StepRecord(step.name, StepOutcome.SKIPPED))
                continue
            try:
                step.run(context)
                records.append(StepRecord(step.name, StepOutcome.COMPLETED))
                completed.append(step)
            except Exception as exc:
                records.append(
                    StepRecord(step.name, StepOutcome.FAILED, error=str(exc))
                )
                failed = True
                for done in reversed(completed):
                    try:
                        done.cleanup(context)
                    except Exception:  # cleanup is best-effort
                        pass
        return WorkflowRun(
            database=database,
            records=records,
            context=context,
            succeeded=not failed,
        )

    def run_many(
        self, databases: List[str], now: float = 0.0, **initial
    ) -> Dict[str, WorkflowRun]:
        """Execute the workflow over each candidate database."""
        return {
            database: self.run(database, now=now, **initial)
            for database in databases
        }


def require(context: WorkflowContext, key: str) -> Any:
    """Fetch a context value a step depends on, with a clear error."""
    if key not in context.values:
        raise WorkflowError(f"workflow context is missing {key!r}")
    return context.values[key]
