"""Experimentation in production (Section 7): B-instances, the workflow
engine, the User-arm emulation heuristic, and the phase-based recommender
comparison that regenerates Figure 6."""

from repro.experiment.binstance import BInstance
from repro.experiment.workflow import (
    ExperimentWorkflow,
    StepOutcome,
    WorkflowContext,
    WorkflowStep,
)
from repro.experiment.compare import (
    ComparisonSettings,
    DatabaseComparison,
    FleetComparisonSummary,
    compare_database,
    compare_fleet,
)
from repro.experiment.emulate_user import seed_user_indexes

__all__ = [
    "BInstance",
    "ComparisonSettings",
    "DatabaseComparison",
    "ExperimentWorkflow",
    "FleetComparisonSummary",
    "StepOutcome",
    "WorkflowContext",
    "WorkflowStep",
    "compare_database",
    "compare_fleet",
    "seed_user_indexes",
]
