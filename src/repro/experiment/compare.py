"""Phase-based recommender comparison — the Figure 6 experiment (§7.3).

Per database:

1. emulate the user's historical tuning (:mod:`emulate_user`);
2. run warm-up traffic on the primary to populate usage statistics;
3. apply the paper's heuristic — among the top-N beneficial existing
   indexes pick a random k to drop (N=20, k=5);
4. on a B-instance with those k dropped, replay learning traffic and let
   **MI** and **DTA** each recommend up to k indexes;
5. measure four phases, each on a fresh B-instance replaying a day-plus of
   forked traffic: *baseline* (k dropped), *User* (original indexes),
   *MI* and *DTA* (k dropped + their recommendations);
6. compare phase CPU with fixed execution counts and Welch-style
   significance: the winning arm must beat both others significantly,
   otherwise the database counts as *Comparable*.

``compare_fleet`` aggregates the per-database winners into the Figure 6
pie shares and the mean CPU-improvement percentages the paper reports
(DTA ≈ 82%, MI ≈ 72%, User ≈ 35%).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiment.binstance import BInstance
from repro.experiment.emulate_user import pick_indexes_to_drop, seed_user_indexes
from repro.experiment.steps import standard_phase_steps
from repro.experiment.workflow import ExperimentWorkflow
from repro.recommender import MiRecommender, MiRecommenderSettings
from repro.recommender.dta import DtaSession, DtaSettings
from repro.rng import derive
from repro.workload.app_profiles import ApplicationProfile
from repro.workload.generator import WorkloadRecording

ARMS = ("User", "MI", "DTA")


@dataclasses.dataclass
class ComparisonSettings:
    """Experiment parameters (paper defaults where stated)."""

    n_top: int = 20
    k_drop: int = 5
    seed_user: bool = True
    user_learn_hours: float = 24.0
    user_learn_statements: int = 700
    warmup_hours: float = 12.0
    warmup_statements: int = 450
    learn_hours: float = 24.0
    learn_statements: int = 800
    phase_hours: float = 26.0  # "more than a day" per phase
    phase_statements: int = 700
    #: Significance for declaring a winner.
    z_threshold: float = 1.96
    #: Minimum relative CPU difference to count as a win.
    min_effect: float = 0.03
    mi_snapshot_chunks: int = 4


@dataclasses.dataclass
class PhaseSummary:
    """Fixed-count score of one phase."""

    name: str
    score: float
    variance: float
    templates: int


@dataclasses.dataclass
class DatabaseComparison:
    """Per-database outcome."""

    database: str
    tier: str
    winner: str  # "DTA" | "MI" | "User" | "Comparable"
    improvements: Dict[str, float]
    phases: Dict[str, PhaseSummary]
    dropped_indexes: int
    mi_recommended: int
    dta_recommended: int
    usable: bool = True
    note: str = ""


def _collect_recommendations(
    profile: ApplicationProfile,
    drops: List[Tuple[str, str]],
    settings: ComparisonSettings,
) -> Tuple[List, List]:
    """Learn on a B-instance with the k indexes dropped; return
    (MI definitions, DTA definitions), each capped at k."""
    learn = BInstance(profile.engine, f"{profile.name}-learn", fork_seed=101)
    learn.drop_indexes(drops)
    recording = profile.workload.generate_recording(
        start=profile.engine.now,
        hours=settings.learn_hours,
        max_statements=settings.learn_statements,
    )
    mi = MiRecommender(
        learn.engine, MiRecommenderSettings(top_n=settings.k_drop)
    )
    chunks = max(3, settings.mi_snapshot_chunks)
    size = max(1, len(recording.statements) // chunks)
    for start in range(0, len(recording.statements), size):
        chunk = WorkloadRecording(
            statements=recording.statements[start : start + size]
        )
        learn.replay(chunk)
        mi.take_snapshot()
    mi_definitions = [
        r.to_definition(f"nci_mi_{i}") for i, r in enumerate(mi.recommend())
    ]
    dta_session = DtaSession(
        learn.engine,
        DtaSettings(
            tier=profile.tier,
            max_indexes=settings.k_drop,
            window_hours=settings.learn_hours,
        ),
    )
    try:
        dta_recommendations = dta_session.run()
    except Exception:
        dta_recommendations = []
    dta_definitions = [
        r.to_definition(f"nci_dta_{i}")
        for i, r in enumerate(dta_recommendations[: settings.k_drop])
    ]
    return mi_definitions, dta_definitions


def _run_phase(
    profile: ApplicationProfile,
    arm: str,
    settings: ComparisonSettings,
    drops: List[Tuple[str, str]],
    creates: List,
    recording: WorkloadRecording,
) -> Optional[Dict[int, dict]]:
    """One phase on a fresh B-instance; returns per-template stats.

    All phases replay forks of the *same* recorded stream — the paper's
    B-instances all receive the TDS fork of the same A-instance traffic —
    so cross-phase differences reflect the index configurations, not
    different parameter draws.
    """
    workflow = ExperimentWorkflow(
        f"fig6-phase-{arm}",
        standard_phase_steps(
            phase_window_hours=settings.phase_hours + 1, suffix=arm.lower()
        ),
    )
    run = workflow.run(
        profile.name,
        now=profile.engine.now,
        profile=profile,
        recording=recording,
        indexes_to_drop=drops,
        indexes_to_create=creates,
    )
    if not run.succeeded:
        return None
    return run.context["phase_stats"]


def _phase_summaries(
    stats_by_arm: Dict[str, Dict[int, dict]]
) -> Dict[str, PhaseSummary]:
    """Fixed-execution-count scores over templates common to all phases."""
    common = None
    for stats in stats_by_arm.values():
        ids = {qid for qid, entry in stats.items() if entry["executions"] >= 2}
        common = ids if common is None else (common & ids)
    common = common or set()
    summaries = {}
    for arm, stats in stats_by_arm.items():
        score = 0.0
        variance = 0.0
        for qid in common:
            fixed = min(stats_by_arm[a][qid]["executions"] for a in stats_by_arm)
            entry = stats[qid]
            n = entry["executions"]
            mean = entry["total"] / n
            var_mean = (entry["m2_weighted"] / max(1, n - 1)) / n
            score += fixed * mean
            variance += (fixed ** 2) * var_mean
        summaries[arm] = PhaseSummary(
            name=arm, score=score, variance=variance, templates=len(common)
        )
    return summaries


def _pick_winner(
    summaries: Dict[str, PhaseSummary], settings: ComparisonSettings
) -> str:
    """Best arm must significantly beat every other arm, else Comparable."""
    arms = [a for a in ARMS if a in summaries]
    best = min(arms, key=lambda a: summaries[a].score)
    for other in arms:
        if other == best:
            continue
        a, b = summaries[best], summaries[other]
        diff = b.score - a.score
        se = math.sqrt(max(a.variance + b.variance, 1e-12))
        if diff < settings.min_effect * max(b.score, 1e-9):
            return "Comparable"
        if diff / se < settings.z_threshold:
            return "Comparable"
    return best


def compare_database(
    profile: ApplicationProfile,
    settings: Optional[ComparisonSettings] = None,
    rng: Optional[np.random.Generator] = None,
) -> DatabaseComparison:
    """Run the full four-phase experiment on one database."""
    settings = settings or ComparisonSettings()
    rng = rng if rng is not None else derive(profile.database.seed, "fig6", profile.name)
    if settings.seed_user:
        seed_user_indexes(
            profile,
            rng,
            learn_hours=settings.user_learn_hours,
            max_statements=settings.user_learn_statements,
        )
    # Warm-up on the primary: populates usage statistics and Query Store.
    profile.workload.run(
        profile.engine,
        settings.warmup_hours,
        max_statements=settings.warmup_statements,
    )
    drops = pick_indexes_to_drop(
        profile, rng, n_top=settings.n_top, k=settings.k_drop
    )
    mi_defs, dta_defs = _collect_recommendations(profile, drops, settings)
    phases = {
        "baseline": (drops, []),
        "User": ([], []),
        "MI": (drops, mi_defs),
        "DTA": (drops, dta_defs),
    }
    phase_recording = profile.workload.generate_recording(
        start=profile.engine.now,
        hours=settings.phase_hours,
        max_statements=settings.phase_statements,
    )
    stats_by_arm: Dict[str, Dict[int, dict]] = {}
    for arm, (arm_drops, arm_creates) in phases.items():
        stats = _run_phase(
            profile, arm, settings, arm_drops, arm_creates, phase_recording
        )
        if stats is None:
            return DatabaseComparison(
                database=profile.name,
                tier=profile.tier,
                winner="Comparable",
                improvements={},
                phases={},
                dropped_indexes=len(drops),
                mi_recommended=len(mi_defs),
                dta_recommended=len(dta_defs),
                usable=False,
                note=f"phase {arm} failed (divergence or error)",
            )
        stats_by_arm[arm] = stats
    summaries = _phase_summaries(stats_by_arm)
    baseline = summaries["baseline"].score
    improvements = {}
    for arm in ARMS:
        if baseline > 0:
            improvements[arm] = max(
                0.0, 100.0 * (baseline - summaries[arm].score) / baseline
            )
        else:
            improvements[arm] = 0.0
    winner = _pick_winner(
        {arm: summaries[arm] for arm in ARMS}, settings
    )
    return DatabaseComparison(
        database=profile.name,
        tier=profile.tier,
        winner=winner,
        improvements=improvements,
        phases=summaries,
        dropped_indexes=len(drops),
        mi_recommended=len(mi_defs),
        dta_recommended=len(dta_defs),
    )


@dataclasses.dataclass
class FleetComparisonSummary:
    """Aggregated Figure 6-style result for one tier."""

    tier: str
    results: List[DatabaseComparison]

    @property
    def usable(self) -> List[DatabaseComparison]:
        return [r for r in self.results if r.usable]

    def shares(self) -> Dict[str, float]:
        """Pie-chart shares: winner percentages over usable databases."""
        usable = self.usable
        if not usable:
            return {}
        counts: Dict[str, int] = {"DTA": 0, "MI": 0, "User": 0, "Comparable": 0}
        for result in usable:
            counts[result.winner] += 1
        return {k: 100.0 * v / len(usable) for k, v in counts.items()}

    def mean_improvements(self) -> Dict[str, float]:
        """Mean CPU-time improvement per arm across databases (§7.3 text)."""
        usable = [r for r in self.usable if r.improvements]
        if not usable:
            return {arm: 0.0 for arm in ARMS}
        return {
            arm: float(np.mean([r.improvements[arm] for r in usable]))
            for arm in ARMS
        }

    def automation_matches_user_pct(self) -> float:
        """Share of databases where automation matched or beat the user."""
        usable = self.usable
        if not usable:
            return 0.0
        good = sum(1 for r in usable if r.winner != "User")
        return 100.0 * good / len(usable)

    def table_rows(self) -> List[str]:
        shares = self.shares()
        means = self.mean_improvements()
        rows = [f"Figure 6 ({self.tier} tier), {len(self.usable)} databases:"]
        for arm in ("DTA", "MI", "User", "Comparable"):
            rows.append(f"  {arm:<11} {shares.get(arm, 0.0):5.1f}%")
        rows.append("Mean CPU-time improvement vs baseline:")
        for arm in ARMS:
            rows.append(f"  {arm:<11} {means[arm]:5.1f}%")
        rows.append(
            f"Automation matched/beat User on {self.automation_matches_user_pct():.0f}% of databases"
        )
        return rows


def compare_fleet(
    fleet,
    settings: Optional[ComparisonSettings] = None,
) -> FleetComparisonSummary:
    """Run the comparison over every database in a fleet."""
    settings = settings or ComparisonSettings()
    results = []
    for profile in fleet:
        results.append(compare_database(profile, settings))
    return FleetComparisonSummary(tier=fleet.spec.tier, results=results)


def select_experiment_candidates(
    fleet,
    rng: np.random.Generator,
    n: int,
    min_statements_per_hour: float = 1.0,
) -> List[ApplicationProfile]:
    """Randomly choose *active* databases meeting experiment criteria.

    Mirrors Section 7.3: "randomly selecting active databases" from a
    tier.  A database qualifies when its recent Query Store activity
    clears the threshold; ``n`` qualifying databases are drawn without
    replacement.
    """
    qualifying = []
    for profile in fleet:
        engine = profile.engine
        now = engine.now
        window = engine.query_store.aggregate(max(0.0, now - 24 * 60.0), now)
        executions = sum(stats.executions for stats in window.values())
        hours = min(24.0, max(now / 60.0, 1e-9))
        if now == 0.0 or executions / hours >= min_statements_per_hour:
            qualifying.append(profile)
    if len(qualifying) <= n:
        return qualifying
    picks = rng.choice(len(qualifying), size=n, replace=False)
    return [qualifying[int(i)] for i in picks]
