"""B-instances (Section 7.1).

A B-instance is an independent, invisible copy of a database seeded from a
snapshot of the primary (the A-instance).  It receives a best-effort fork
of the primary's statement stream and replays it without synchronization —
failures or divergence on the B-instance never affect the primary.  Index
changes and feature experiments happen here, never on the primary.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.clock import SimClock
from repro.engine.engine import Database, EngineSettings, SqlEngine
from repro.engine.schema import IndexDefinition
from repro.rng import derive
from repro.workload.generator import WorkloadRecording
from repro.workload.replay import ReplayReport, StreamReplayer, TdsStream


@dataclasses.dataclass
class BInstanceSettings:
    """Fork fidelity knobs."""

    drop_rate: float = 0.004
    reorder_rate: float = 0.01
    #: Divergence fraction above which the instance is flagged unusable.
    divergence_tolerance: float = 0.10


class BInstance:
    """An experimental clone of a primary database."""

    def __init__(
        self,
        primary_engine: SqlEngine,
        name: str,
        settings: Optional[BInstanceSettings] = None,
        engine_settings: Optional[EngineSettings] = None,
        fork_seed: int = 0,
    ) -> None:
        self.name = name
        self.settings = settings or BInstanceSettings()
        snapshot: Database = primary_engine.database.snapshot(name)
        # The clone runs the same engine bits by default, but an experiment
        # may install a different binary (engine settings) — Section 7.1.
        self.engine = SqlEngine(
            snapshot,
            settings=engine_settings or primary_engine.settings,
            clock=SimClock(start=primary_engine.clock.now),
        )
        # Statistics snapshots carry over; what a production clone has.
        self._fork_rng: np.random.Generator = derive(
            primary_engine.database.seed, "binstance", name, str(fork_seed)
        )
        self.replay_reports: List[ReplayReport] = []

    # ------------------------------------------------------------------

    def apply_indexes(self, definitions: List[IndexDefinition]) -> int:
        """Implement a configuration change on the clone."""
        created = 0
        for definition in definitions:
            if not self.engine.index_exists(definition.table, definition.name):
                self.engine.create_index(definition)
                created += 1
        return created

    def drop_indexes(self, names: List[tuple]) -> int:
        """Drop (table, index_name) pairs if present."""
        dropped = 0
        for table, index_name in names:
            if self.engine.index_exists(table, index_name):
                self.engine.drop_index(table, index_name)
                dropped += 1
        return dropped

    def replay(self, recording: WorkloadRecording) -> ReplayReport:
        """Fork the recorded stream and replay it on the clone."""
        fork = TdsStream(recording).fork(
            self._fork_rng,
            drop_rate=self.settings.drop_rate,
            reorder_rate=self.settings.reorder_rate,
        )
        report = StreamReplayer(self.engine).replay(fork)
        self.replay_reports.append(report)
        return report

    def diverged(self) -> bool:
        """True when accumulated divergence exceeds tolerance (Section 7.2's
        divergence-detection workflow step)."""
        total = sum(r.total for r in self.replay_reports)
        if not total:
            return False
        bad = sum(r.failed + r.dropped for r in self.replay_reports)
        return bad / total > self.settings.divergence_tolerance
