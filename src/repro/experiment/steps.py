"""Library of common workflow steps (Section 7.2).

Steps read and write well-known context keys:

- ``profile`` — the :class:`repro.workload.app_profiles.ApplicationProfile`
  of the candidate database (supplied by the caller);
- ``binstance`` — the live :class:`BInstance`;
- ``recording`` — the statement stream to replay;
- ``phase_stats`` — per-phase collected statistics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.clock import HOURS
from repro.errors import BInstanceDivergedError
from repro.experiment.binstance import BInstance, BInstanceSettings
from repro.experiment.workflow import WorkflowContext, WorkflowStep, require


class CreateBInstanceStep(WorkflowStep):
    """Snapshot the primary into a fresh B-instance."""

    name = "create_b_instance"

    def __init__(
        self,
        suffix: str = "b",
        settings: Optional[BInstanceSettings] = None,
        fork_seed: int = 0,
    ) -> None:
        self.suffix = suffix
        self.settings = settings
        self.fork_seed = fork_seed

    def run(self, context: WorkflowContext) -> None:
        profile = require(context, "profile")
        context["binstance"] = BInstance(
            profile.engine,
            name=f"{profile.name}-{self.suffix}",
            settings=self.settings,
            fork_seed=self.fork_seed,
        )

    def cleanup(self, context: WorkflowContext) -> None:
        context.values.pop("binstance", None)


class DropIndexesStep(WorkflowStep):
    """Drop a subset of indexes on the B-instance (custom experiment step)."""

    name = "drop_indexes"

    def __init__(self, context_key: str = "indexes_to_drop") -> None:
        self.context_key = context_key

    def run(self, context: WorkflowContext) -> None:
        binstance: BInstance = require(context, "binstance")
        to_drop = context.get(self.context_key, [])
        context["dropped_count"] = binstance.drop_indexes(to_drop)


class ImplementIndexesStep(WorkflowStep):
    """Implement a list of index definitions on the B-instance."""

    name = "implement_indexes"

    def __init__(self, context_key: str = "indexes_to_create") -> None:
        self.context_key = context_key

    def run(self, context: WorkflowContext) -> None:
        binstance: BInstance = require(context, "binstance")
        definitions = context.get(self.context_key, [])
        context["created_count"] = binstance.apply_indexes(definitions)

    def cleanup(self, context: WorkflowContext) -> None:
        binstance: Optional[BInstance] = context.get("binstance")
        if binstance is None:
            return
        definitions = context.get(self.context_key, [])
        binstance.drop_indexes([(d.table, d.name) for d in definitions])


class ReplayStep(WorkflowStep):
    """Replay the context's recording on the B-instance."""

    name = "replay"

    def __init__(self, recording_key: str = "recording") -> None:
        self.recording_key = recording_key

    def run(self, context: WorkflowContext) -> None:
        binstance: BInstance = require(context, "binstance")
        recording = require(context, self.recording_key)
        context["replay_report"] = binstance.replay(recording)


class DetectDivergenceStep(WorkflowStep):
    """Abort the experiment when the clone has diverged too far."""

    name = "detect_divergence"

    def run(self, context: WorkflowContext) -> None:
        binstance: BInstance = require(context, "binstance")
        if binstance.diverged():
            raise BInstanceDivergedError(
                f"B-instance {binstance.name} diverged beyond tolerance"
            )


class CollectStatsStep(WorkflowStep):
    """Summarize per-template execution statistics from the clone's QS."""

    name = "collect_stats"

    def __init__(self, window_hours: float, output_key: str = "phase_stats"):
        self.window_hours = window_hours
        self.output_key = output_key

    def run(self, context: WorkflowContext) -> None:
        binstance: BInstance = require(context, "binstance")
        engine = binstance.engine
        now = engine.now
        window = engine.query_store.aggregate(
            max(0.0, now - self.window_hours * HOURS), now
        )
        per_query = {}
        for (query_id, _plan), stats in window.items():
            cpu = stats.metrics["cpu_time_ms"]
            entry = per_query.setdefault(
                query_id, {"executions": 0, "total": 0.0, "m2_weighted": 0.0}
            )
            entry["executions"] += stats.executions
            entry["total"] += cpu.total
            entry["m2_weighted"] += cpu.m2
        context[self.output_key] = per_query


def standard_phase_steps(
    phase_window_hours: float,
    suffix: str,
    drops_key: str = "indexes_to_drop",
    creates_key: str = "indexes_to_create",
) -> List[WorkflowStep]:
    """The canonical phase pipeline: clone, reconfigure, replay, collect."""
    return [
        CreateBInstanceStep(suffix=suffix),
        DropIndexesStep(context_key=drops_key),
        ImplementIndexesStep(context_key=creates_key),
        ReplayStep(),
        DetectDivergenceStep(),
        CollectStatsStep(window_hours=phase_window_hours),
    ]
