"""Emulating the human administrator (the *User* arm of Section 7.3).

Real Azure databases arrive with indexes their users created; synthetic
databases start bare.  ``seed_user_indexes`` plays the role of the user's
historical tuning: it clones the database, replays a slice of workload,
runs a DTA-style analysis *as the user would* — premium-tier experts
estimate better than the optimizer (their intuition corrects its
mistakes), standard-tier users estimate worse and strip include columns —
and materializes the chosen indexes on the primary as ordinary
user-created indexes.

The experiment then follows the paper's own heuristic: among the top-N
most beneficial existing indexes, drop a random k; performance without
those k is "before the user tuned", performance with them is the User arm
(N=20, k=5 in the paper).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro.clock import SimClock
from repro.engine.engine import EngineSettings, SqlEngine
from repro.engine.schema import IndexDefinition
from repro.recommender.dta import DtaSession, DtaSettings
from repro.workload.app_profiles import ApplicationProfile


@dataclasses.dataclass
class UserSkill:
    """How well the emulated user tunes."""

    #: Multiplier on the optimizer's estimation error during the user's
    #: analysis (<1 = expert intuition, >1 = novice guesswork).
    error_scale: float
    #: Probability of keeping include columns (novices often skip them).
    include_probability: float
    max_indexes: int
    #: Probability the user actually implements each identified index —
    #: real users tune partially and move on.
    adoption_probability: float = 1.0


TIER_SKILL = {
    # Premium experts iterate against actual execution feedback, which is
    # equivalent to tuning with near-oracle cost estimates — this is how
    # they sometimes beat both automated arms in Figure 6(a).
    "premium": UserSkill(
        error_scale=0.12, include_probability=0.85, max_indexes=6,
        adoption_probability=0.9,
    ),
    "standard": UserSkill(
        error_scale=1.2, include_probability=0.3, max_indexes=4,
        adoption_probability=0.65,
    ),
    "basic": UserSkill(
        error_scale=2.0, include_probability=0.15, max_indexes=3,
        adoption_probability=0.5,
    ),
}


def seed_user_indexes(
    profile: ApplicationProfile,
    rng: np.random.Generator,
    learn_hours: float = 24.0,
    max_statements: int = 800,
) -> List[IndexDefinition]:
    """Create the user's historical indexes on the primary database."""
    skill = TIER_SKILL.get(profile.tier, TIER_SKILL["standard"])
    # The user analyzes on a scratch copy with their own estimation skill.
    scratch = profile.database.snapshot(f"{profile.name}-user-analysis")
    settings = profile.engine.settings
    user_cost_model = dataclasses.replace(
        settings.cost_model,
        error_sigma=settings.cost_model.error_sigma * skill.error_scale,
        severe_error_rate=settings.cost_model.severe_error_rate
        * min(1.0, skill.error_scale),
    )
    user_settings = EngineSettings(
        interval_minutes=settings.interval_minutes,
        cost_model=user_cost_model,
        execution=settings.execution,
    )
    engine = SqlEngine(scratch, settings=user_settings, clock=SimClock())
    recording = profile.workload.generate_recording(
        start=0.0, hours=learn_hours, max_statements=max_statements
    )
    for statement in recording.statements:
        if statement.at > engine.clock.now:
            engine.clock.advance_to(statement.at)
        try:
            engine.execute(statement.query)
        except Exception:
            continue
    session = DtaSession(
        engine,
        DtaSettings(
            tier=profile.tier,
            max_indexes=skill.max_indexes,
            window_hours=learn_hours,
        ),
    )
    try:
        recommendations = session.run()
    except Exception:
        recommendations = []
    created: List[IndexDefinition] = []
    for i, recommendation in enumerate(recommendations):
        if rng.random() > skill.adoption_probability:
            continue
        includes = recommendation.included_columns
        if rng.random() > skill.include_probability:
            includes = ()
        definition = IndexDefinition(
            name=f"ix_user_{profile.name.replace('-', '_')}_{i}",
            table=recommendation.table,
            key_columns=recommendation.key_columns,
            included_columns=includes,
            auto_created=False,
        )
        if profile.engine.index_exists(definition.table, definition.name):
            continue
        profile.engine.create_index(definition)
        created.append(definition)
    return created


def pick_indexes_to_drop(
    profile: ApplicationProfile,
    rng: np.random.Generator,
    n_top: int = 20,
    k: int = 5,
) -> List[Tuple[str, str]]:
    """The paper's heuristic: among the N most beneficial existing
    non-clustered indexes (by server-tracked read counts), pick a random
    subset of k to drop.  Returns (table, index_name) pairs."""
    candidates = []
    for table in profile.database.tables.values():
        for name, index in table.indexes.items():
            usage = profile.engine.usage_stats.get(name)
            reads = usage.reads if usage else 0
            candidates.append((reads, table.name, name))
    candidates.sort(reverse=True)
    top = candidates[:n_top]
    if not top:
        return []
    k = min(k, len(top))
    chosen = rng.choice(len(top), size=k, replace=False)
    return [(top[int(i)][1], top[int(i)][2]) for i in chosen]
