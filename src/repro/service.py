"""The region-level auto-indexing service facade.

Ties a :class:`repro.fleet.Fleet` to a
:class:`repro.controlplane.ControlPlane` and drives the closed loop the
paper describes: workloads run, recommendations are generated for *every*
database, auto-implementation applies them where enabled, validation
reverts regressions, and the classifier periodically retrains on the
accumulated validation history (Section 5.2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.clock import HOURS
from repro.controlplane import (
    AutoIndexingConfig,
    ControlPlane,
    ControlPlaneSettings,
)
from repro.fleet import Fleet, FleetSpec
from repro.recommender.classifier import LowImpactClassifier, examples_from_history
from repro.recommender.policy import RecommenderPolicy
from repro.validation import ValidationSettings


@dataclasses.dataclass
class ServiceSettings:
    """Closed-loop cadence settings."""

    step_hours: float = 2.0
    #: Statement cap per database per step (None = rate-driven).
    max_statements_per_step: Optional[int] = None
    #: Retrain the low-impact classifier every this many hours.
    classifier_retrain_hours: float = 48.0


class AutoIndexingService:
    """One region's auto-indexing service over a fleet."""

    def __init__(
        self,
        fleet: Fleet,
        control_settings: Optional[ControlPlaneSettings] = None,
        service_settings: Optional[ServiceSettings] = None,
        validation_settings: Optional[ValidationSettings] = None,
        policy: Optional[RecommenderPolicy] = None,
        default_config: Optional[AutoIndexingConfig] = None,
        mi_settings=None,
        fault_seed: int = 0,
    ) -> None:
        self.fleet = fleet
        self.settings = service_settings or ServiceSettings()
        self.classifier = LowImpactClassifier()
        self.plane = ControlPlane(
            fleet.clock,
            settings=control_settings,
            policy=policy,
            validation_settings=validation_settings,
            classifier=self.classifier,
            mi_settings=mi_settings,
            fault_seed=fault_seed,
        )
        self.configs: Dict[str, AutoIndexingConfig] = {}
        for profile in fleet:
            config = dataclasses.replace(
                default_config
            ) if default_config is not None else AutoIndexingConfig()
            self.configs[profile.name] = config
            self.plane.add_database(
                profile.name, profile.engine, tier=profile.tier, config=config
            )
        self._last_retrain = 0.0

    # ------------------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the closed loop by ``hours`` of virtual time."""
        remaining = hours
        while remaining > 0:
            step = min(self.settings.step_hours, remaining)
            self.fleet.run_workloads(
                step, max_statements_per_db=self.settings.max_statements_per_step
            )
            self.plane.process()
            self._maybe_retrain()
            remaining -= step

    def _maybe_retrain(self) -> None:
        now = self.fleet.clock.now
        if now - self._last_retrain < self.settings.classifier_retrain_hours * HOURS:
            return
        self._last_retrain = now
        examples = examples_from_history(self.plane.validation_history)
        if self.classifier.fit(examples):
            self.plane.events.emit(
                now,
                "classifier_retrained",
                "<region>",
                examples=len(examples),
            )

    # ------------------------------------------------------------------

    @property
    def telemetry(self):
        """The control plane's telemetry bundle (registry/tracer/spans)."""
        return self.plane.telemetry

    def set_config(self, database: str, config: AutoIndexingConfig) -> None:
        """Update a database's automation settings (the Section 2 portal)."""
        managed = self.plane.databases[database]
        managed.config = config
        self.configs[database] = config


def build_service(
    n_databases: int,
    tier: str = "standard",
    seed: int = 0,
    **kwargs,
) -> AutoIndexingService:
    """Convenience constructor: fleet + service in one call."""
    fleet = Fleet(FleetSpec(n_databases=n_databases, tier=tier, seed=seed))
    return AutoIndexingService(fleet, **kwargs)


def build_fleet_service(n_databases: int, workers: int = 0, **kwargs):
    """Sharded fleet-parallel counterpart of :func:`build_service`.

    Shards the fleet across ``workers`` shard workers and merges each
    tick deterministically; see :mod:`repro.parallel`.  Imported lazily
    because :mod:`repro.parallel.service` reuses this module's
    :class:`ServiceSettings`.
    """
    from repro.parallel.service import build_fleet_service as _build

    return _build(n_databases, workers=workers, **kwargs)
