"""Execution settings for the fleet-parallel layer."""

from __future__ import annotations

import dataclasses


#: Recognized execution backends.
BACKENDS = ("auto", "serial", "thread", "process")


@dataclasses.dataclass(frozen=True)
class ParallelSettings:
    """How the fleet's per-tick work is executed.

    ``workers`` is the number of shards the fleet is split into (and,
    for the thread/process backends, the number of concurrent workers).
    ``backend`` selects the execution substrate:

    - ``"serial"`` — shards run inline, one after another (the baseline;
      also the fallback when ``workers <= 1``);
    - ``"thread"`` — one thread per shard (GIL-bound; exercises the
      pool/merge machinery without process overhead);
    - ``"process"`` — one long-lived OS process per shard.  Shard state
      is *built inside* the worker from the picklable specs, so only
      commands and per-tick deltas ever cross the pipe;
    - ``"auto"`` — ``process`` when ``workers > 1``, else ``serial``.

    Determinism does not depend on the backend: merged output is
    byte-identical across all of them for the same seed.
    """

    workers: int = 0
    backend: str = "auto"
    #: Multiprocessing start method; None picks ``fork`` when available
    #: (cheap on Linux) and ``spawn`` otherwise.
    mp_context: str = ""
    #: Collect per-tick phase timings and trace events (the ``repro
    #: profile`` data source).  Off is the ``--no-profile`` escape hatch
    #: the overhead benchmark gate compares against.
    instrument: bool = True
    #: Ticks dispatched to the pool per round-trip (``--batch-ticks``).
    #: At 1 the parent runs the classic synchronous loop; above 1 it
    #: sends K tick commands at once, workers run them back-to-back
    #: while staying hot, and the parent overlaps merging finished ticks
    #: with the workers' compute of later ones.  Merged output is
    #: byte-identical for every value — a batch is always flushed at a
    #: classifier-retrain boundary so broadcast state still lands at the
    #: same virtual time it would serially.
    batch_ticks: int = 1
    #: Sample the merged registry into the telemetry-history store each
    #: tick (sparklines, SLO burn rates, anomaly detection).  Sampling
    #: reads only merged virtual-time state, so it never perturbs the
    #: determinism contract; the flag exists for the history overhead
    #: gate in bench_fleet_scale.py, not because off is ever unsafe.
    history: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend {self.backend!r} not one of {BACKENDS}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.batch_ticks < 1:
            raise ValueError("batch_ticks must be >= 1")

    @property
    def effective_backend(self) -> str:
        """The backend actually used after ``auto`` resolution."""
        if self.backend == "auto":
            return "process" if self.workers > 1 else "serial"
        return self.backend

    @property
    def effective_workers(self) -> int:
        """At least one shard."""
        return max(1, self.workers)
