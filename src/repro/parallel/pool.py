"""Worker pools: serial, thread, and process execution of shard ticks.

All three backends expose the same surface — ``tick_batch(ends,
max_statements, classifier_state) -> Iterator[ShardResult]`` (plus the
one-tick ``tick`` convenience wrapper and ``close()``) — and all three
produce identical deltas for the same seed; only wall-clock behaviour
differs.  The process backend keeps one long-lived OS process per
shard: shard state is built inside the child from the picklable payload
at startup, and only commands / per-tick deltas cross the pipe
afterwards.

``tick_batch`` is the pipelined protocol: the parent pushes a batch of
K tick commands in one round-trip, workers run all K ticks back-to-back
while staying hot, and results stream back **in completion order** —
shard 2 may deliver its tick 3 before shard 1 delivers its tick 0.  The
service buffers the stream and releases it to the merger in stable
``(tick_index, shard_index)`` order, so arrival order never reaches
merged output.

Every backend brackets its ``dispatch`` (pushing the tick commands out)
and ``wait`` (blocking on shard results) segments on the service's
shared :class:`~repro.parallel.timing.TickPhaseTimer`, so ``repro
profile`` attributes IPC cost per backend without the backends having
to know anything else about profiling.  Under pipelining each blocking
receive is bracketed individually, so ``wait`` accrues to whichever
tick the parent is currently assembling.

A shard process that dies mid-protocol (killed, OOMed, segfaulted —
anything that skips its own ``("error", ...)`` report) surfaces as a
:class:`~repro.errors.ShardCrashError` naming the shard and the last
command it was sent; the pool closes its surviving workers before
raising.
"""

from __future__ import annotations

import multiprocessing
import queue
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import connection as mp_connection
from typing import Iterator, List, Optional, Sequence

from repro.errors import ShardCrashError
from repro.parallel.spec import ShardPayload
from repro.parallel.timing import TickPhaseTimer
from repro.parallel.worker import ShardResult, ShardRunner, shard_worker_main


def _collect_one_tick(pool, end, max_statements, classifier_state):
    """The one-tick wrapper every backend shares: batch of 1, results
    gathered and returned in shard order (the pre-pipelining contract)."""
    results = list(pool.tick_batch([end], max_statements, classifier_state))
    results.sort(key=lambda result: result.shard_index)
    return results


class SerialPool:
    """Shards executed inline, one after another (the baseline).

    Inline execution has no dispatch/wait split: the whole loop counts
    as ``wait`` (the parent is "blocked on shard work" for all of it),
    keeping phase semantics comparable across backends.  ``tick_batch``
    runs tick-major — every shard finishes tick T before any starts
    T+1 — mirroring the synchronous baseline; batching buys nothing
    inline, but the protocol (and its determinism) is still exercised.
    """

    backend = "serial"

    def __init__(
        self,
        payloads: List[ShardPayload],
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        self.runners = [ShardRunner(payload) for payload in payloads]

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        return _collect_one_tick(self, end, max_statements, classifier_state)

    def tick_batch(
        self,
        ends: Sequence[float],
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> Iterator[ShardResult]:
        with self.timer.phase("dispatch"):
            pass

        def stream() -> Iterator[ShardResult]:
            for index, end in enumerate(ends):
                state = classifier_state if index == 0 else None
                for runner in self.runners:
                    with self.timer.phase("wait"):
                        result = runner.tick(
                            end, max_statements, state, tick_index=index
                        )
                    yield result

        return stream()

    def close(self) -> None:
        pass


class ThreadPool:
    """One thread per shard.

    CPython's GIL serializes the pure-Python engine work, so this is not
    a speedup backend — it exercises the exact pool/merge machinery of
    the process backend without process startup cost, which is what the
    determinism tests and the ``workers=2`` CI variant lean on.  Batched
    ticks run back-to-back inside each shard thread and stream home
    through a queue in completion order, exactly like the process pipe.
    """

    backend = "thread"

    def __init__(
        self,
        payloads: List[ShardPayload],
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        self.runners = [ShardRunner(payload) for payload in payloads]
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, len(self.runners)),
            thread_name_prefix="repro-shard",
        )

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        return _collect_one_tick(self, end, max_statements, classifier_state)

    def tick_batch(
        self,
        ends: Sequence[float],
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> Iterator[ShardResult]:
        results: "queue.Queue[tuple]" = queue.Queue()

        def run_shard(runner: ShardRunner) -> None:
            try:
                for result in runner.tick_batch(
                    list(ends), max_statements, classifier_state
                ):
                    results.put(("ok", result))
            except BaseException as exc:  # propagated to the parent pull
                results.put(("error", exc))

        with self.timer.phase("dispatch"):
            for runner in self.runners:
                self._executor.submit(run_shard, runner)

        def stream() -> Iterator[ShardResult]:
            expected = len(self.runners) * len(ends)
            for _ in range(expected):
                with self.timer.phase("wait"):
                    kind, payload = results.get()
                if kind == "error":
                    raise payload
                yield payload

        return stream()

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessPool:
    """One long-lived process per shard, command/response over a pipe."""

    backend = "process"

    def __init__(
        self,
        payloads: List[ShardPayload],
        mp_context: str = "",
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        method = mp_context or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        self._connections = []
        self._processes = []
        self._shard_indices = [payload.shard_index for payload in payloads]
        self._last_command = "start"
        # Construction is all-or-nothing: a failure after some children
        # have already been spawned must not leak them.
        try:
            for payload in payloads:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=shard_worker_main,
                    args=(child_conn, payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
            for shard_index, conn in zip(self._shard_indices, self._connections):
                try:
                    reply = conn.recv()
                except (EOFError, ConnectionError, OSError):
                    raise ShardCrashError(shard_index, self._last_command)
                if reply[0] != "ready":
                    raise RuntimeError(
                        f"shard worker failed to start: {reply[1]}"
                    )
        except BaseException:
            self._reap()
            raise

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        return _collect_one_tick(self, end, max_statements, classifier_state)

    def tick_batch(
        self,
        ends: Sequence[float],
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> Iterator[ShardResult]:
        command = ("tick_batch", list(ends), max_statements, classifier_state)
        self._last_command = "tick_batch"
        with self.timer.phase("dispatch"):
            for shard_index, conn in zip(self._shard_indices, self._connections):
                try:
                    conn.send(command)
                except (BrokenPipeError, ConnectionError, OSError):
                    crash = ShardCrashError(shard_index, self._last_command)
                    self.close()
                    raise crash
        return self._stream_results(len(ends))

    def _stream_results(self, n_ticks: int) -> Iterator[ShardResult]:
        """Yield ShardResults in completion order across all shards.

        ``multiprocessing.connection.wait`` multiplexes the pipes, so a
        fast shard's later ticks are drained while a slow shard still
        computes its first — the parent never head-of-line blocks on one
        pipe, and pipe buffers stay drained (workers block on ``send``
        only when the parent is genuinely busier than every shard).
        """
        shard_of = dict(zip(self._connections, self._shard_indices))
        pending = {conn: n_ticks for conn in self._connections}
        ready: List = []
        while pending:
            if not ready:
                with self.timer.phase("wait"):
                    ready = list(mp_connection.wait(list(pending)))
            conn = ready.pop()
            with self.timer.phase("wait"):
                try:
                    reply = conn.recv()
                except (EOFError, ConnectionError, OSError):
                    crash = ShardCrashError(shard_of[conn], self._last_command)
                    self.close()
                    raise crash
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(f"shard worker failed:\n{reply[1]}")
            pending[conn] -= 1
            if pending[conn] == 0:
                del pending[conn]
            yield reply[1]

    def _reap(self) -> None:
        """Terminate and join every spawned child, then drop the pipes."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._connections = []
        self._processes = []

    def close(self) -> None:
        self._last_command = "stop"
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, ConnectionError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._connections:
            conn.close()
        self._connections = []
        self._processes = []


def make_pool(
    backend: str,
    payloads: List[ShardPayload],
    mp_context: str = "",
    timer: Optional[TickPhaseTimer] = None,
):
    """Build the pool for an *effective* (already auto-resolved) backend."""
    if backend == "serial":
        return SerialPool(payloads, timer=timer)
    if backend == "thread":
        return ThreadPool(payloads, timer=timer)
    if backend == "process":
        return ProcessPool(payloads, mp_context=mp_context, timer=timer)
    raise ValueError(f"unknown backend {backend!r}")
