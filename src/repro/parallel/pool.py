"""Worker pools: serial, thread, and process execution of shard ticks.

All three backends expose the same surface — ``tick(end,
max_statements, classifier_state) -> List[ShardResult]`` plus
``close()`` — and all three produce identical deltas for the same
seed; only wall-clock behaviour differs.  The process backend keeps one
long-lived OS process per shard: shard state is built inside the child
from the picklable payload at startup, and only commands / per-tick
deltas cross the pipe afterwards.

Every backend brackets its ``dispatch`` (pushing the tick command out)
and ``wait`` (blocking on shard results) segments on the service's
shared :class:`~repro.parallel.timing.TickPhaseTimer`, so ``repro
profile`` attributes IPC cost per backend without the backends having
to know anything else about profiling.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

from repro.parallel.spec import ShardPayload
from repro.parallel.timing import TickPhaseTimer
from repro.parallel.worker import ShardResult, ShardRunner, shard_worker_main


class SerialPool:
    """Shards executed inline, one after another (the baseline).

    Inline execution has no dispatch/wait split: the whole loop counts
    as ``wait`` (the parent is "blocked on shard work" for all of it),
    keeping phase semantics comparable across backends.
    """

    backend = "serial"

    def __init__(
        self,
        payloads: List[ShardPayload],
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        self.runners = [ShardRunner(payload) for payload in payloads]

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        with self.timer.phase("dispatch"):
            pass
        with self.timer.phase("wait"):
            return [
                runner.tick(end, max_statements, classifier_state)
                for runner in self.runners
            ]

    def close(self) -> None:
        pass


class ThreadPool:
    """One thread per shard.

    CPython's GIL serializes the pure-Python engine work, so this is not
    a speedup backend — it exercises the exact pool/merge machinery of
    the process backend without process startup cost, which is what the
    determinism tests and the ``workers=2`` CI variant lean on.
    """

    backend = "thread"

    def __init__(
        self,
        payloads: List[ShardPayload],
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        self.runners = [ShardRunner(payload) for payload in payloads]
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, len(self.runners)),
            thread_name_prefix="repro-shard",
        )

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        with self.timer.phase("dispatch"):
            futures = [
                self._executor.submit(
                    runner.tick, end, max_statements, classifier_state
                )
                for runner in self.runners
            ]
        with self.timer.phase("wait"):
            return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessPool:
    """One long-lived process per shard, command/response over a pipe."""

    backend = "process"

    def __init__(
        self,
        payloads: List[ShardPayload],
        mp_context: str = "",
        timer: Optional[TickPhaseTimer] = None,
    ) -> None:
        self.timer = timer if timer is not None else TickPhaseTimer(enabled=False)
        method = mp_context or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        self._connections = []
        self._processes = []
        for payload in payloads:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, payload),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        for conn in self._connections:
            reply = conn.recv()
            if reply[0] != "ready":
                raise RuntimeError(f"shard worker failed to start: {reply[1]}")

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ) -> List[ShardResult]:
        with self.timer.phase("dispatch"):
            for conn in self._connections:
                conn.send(("tick", end, max_statements, classifier_state))
        with self.timer.phase("wait"):
            results = []
            for conn in self._connections:
                reply = conn.recv()
                if reply[0] != "ok":
                    self.close()
                    raise RuntimeError(f"shard worker failed:\n{reply[1]}")
                results.append(reply[1])
            return results

    def close(self) -> None:
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._connections:
            conn.close()
        self._connections = []
        self._processes = []


def make_pool(
    backend: str,
    payloads: List[ShardPayload],
    mp_context: str = "",
    timer: Optional[TickPhaseTimer] = None,
):
    """Build the pool for an *effective* (already auto-resolved) backend."""
    if backend == "serial":
        return SerialPool(payloads, timer=timer)
    if backend == "thread":
        return ThreadPool(payloads, timer=timer)
    if backend == "process":
        return ProcessPool(payloads, mp_context=mp_context, timer=timer)
    raise ValueError(f"unknown backend {backend!r}")
