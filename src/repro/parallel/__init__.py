"""Fleet-parallel control plane: sharded workers + deterministic merge.

The paper operates the auto-indexing loop over *millions* of databases
per region; stepping them serially in one thread leaves every other core
idle.  Because each managed database owns an independent engine,
workload, and recommendation state machine, the per-tick work is
embarrassingly parallel.  This package shards the fleet across a worker
pool (process-based, with thread and serial fallbacks), runs each
virtual-time tick's per-database work concurrently, and merges the
results **deterministically**: every worker buffers its journal entries,
audit events, span operations, bus events, and metric deltas per
database, and the region service replays them in stable
``(db_name, seq)`` order — so a parallel run is byte-identical to a
serial run under the same seed.

Entry points:

- :class:`ShardedFleetService` — the region service facade
  (``repro run --workers N`` on the CLI);
- :class:`ParallelSettings` — worker count + backend selection;
- :func:`repro.service.build_fleet_service` — convenience constructor.
"""

from repro.parallel.delta import (
    TickDelta,
    apply_metric_diff,
    diff_snapshots,
    registry_snapshot,
)
from repro.parallel.merge import CompletionBuffer, DeterministicMerger
from repro.parallel.pool import make_pool
from repro.parallel.service import ShardedFleetService, build_fleet_service
from repro.parallel.settings import ParallelSettings
from repro.parallel.spec import DatabaseSpec, SharedSettings, ShardPayload
from repro.parallel.timing import (
    PARENT_PHASES,
    PHASE_CATALOG,
    WORKER_PHASES,
    ShardTickTrace,
    TickPhaseTimer,
    rebase_span_ops,
)
from repro.parallel.worker import DatabaseWorker, RecordingTracer, ShardRunner

__all__ = [
    "CompletionBuffer",
    "DatabaseSpec",
    "DatabaseWorker",
    "DeterministicMerger",
    "PARENT_PHASES",
    "PHASE_CATALOG",
    "ParallelSettings",
    "RecordingTracer",
    "ShardPayload",
    "ShardRunner",
    "ShardTickTrace",
    "SharedSettings",
    "ShardedFleetService",
    "TickDelta",
    "TickPhaseTimer",
    "WORKER_PHASES",
    "apply_metric_diff",
    "build_fleet_service",
    "diff_snapshots",
    "make_pool",
    "rebase_span_ops",
    "registry_snapshot",
]
