"""Picklable build specs for shard workers.

Process-backed shards never receive live engines or planes over the
pipe: they receive these specs and build their own state, which keeps
the transport payload tiny and sidesteps pickling closures (scheduler
callbacks), RNGs, and page trees.  Everything here must stay picklable
and deterministic: ``(DatabaseSpec, SharedSettings)`` fully determines a
database's schema, data, workload, and automation behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.controlplane import AutoIndexingConfig, ControlPlaneSettings
from repro.engine.engine import EngineSettings
from repro.recommender import MiRecommenderSettings
from repro.recommender.policy import RecommenderPolicy
from repro.rng import stable_hash
from repro.validation import ValidationSettings


@dataclasses.dataclass(frozen=True)
class DatabaseSpec:
    """Everything needed to rebuild one managed database in a worker."""

    name: str
    #: Seed for :func:`repro.workload.app_profiles.make_profile` — the
    #: same ``fleet_seed * 1_000_003 + index`` formula the serial
    #: :class:`repro.fleet.Fleet` uses, so profiles match exactly.
    profile_seed: int
    tier: str
    #: Per-database fault seed: the serial plane shares one injector
    #: RNG across databases (draw order depends on interleaving), which
    #: can never be deterministic under sharding — so the parallel layer
    #: derives an independent stream per database instead.
    fault_seed: int
    config: AutoIndexingConfig = dataclasses.field(
        default_factory=AutoIndexingConfig
    )


@dataclasses.dataclass(frozen=True)
class SharedSettings:
    """Fleet-wide settings shipped to every worker once at build time."""

    control_settings: Optional[ControlPlaneSettings] = None
    validation_settings: Optional[ValidationSettings] = None
    mi_settings: Optional[MiRecommenderSettings] = None
    policy: Optional[RecommenderPolicy] = None
    engine_settings: Optional[EngineSettings] = None
    #: Collect worker-side phase traces each tick (the profiling layer's
    #: worker half; hot-path rows ship regardless of this flag).
    instrument: bool = True


@dataclasses.dataclass(frozen=True)
class ShardPayload:
    """One shard's build order: its databases plus the shared settings."""

    shard_index: int
    databases: List[DatabaseSpec]
    shared: SharedSettings


def database_specs(
    n_databases: int,
    tier: str = "standard",
    seed: int = 0,
    name_prefix: str = "db",
    fault_seed: int = 0,
    config: Optional[AutoIndexingConfig] = None,
) -> List[DatabaseSpec]:
    """Specs for a fleet, mirroring :class:`repro.fleet.FleetSpec` naming."""
    specs = []
    for i in range(n_databases):
        name = f"{name_prefix}-{tier}-{i}"
        specs.append(
            DatabaseSpec(
                name=name,
                profile_seed=seed * 1_000_003 + i,
                tier=tier,
                fault_seed=stable_hash("fleet-faults", fault_seed, name)
                & 0x7FFFFFFF,
                config=config
                if config is not None
                else AutoIndexingConfig(),
            )
        )
    return specs


def shard_payloads(
    specs: List[DatabaseSpec], n_shards: int, shared: SharedSettings
) -> List[ShardPayload]:
    """Split specs across ``n_shards`` round-robin in sorted-name order.

    Round-robin keeps shards balanced when per-database cost correlates
    with index (bigger fleets are built with ascending seeds).  The
    assignment has no effect on merged output — only on load balance.
    """
    ordered = sorted(specs, key=lambda s: s.name)
    buckets: List[List[DatabaseSpec]] = [[] for _ in range(max(1, n_shards))]
    for i, spec in enumerate(ordered):
        buckets[i % len(buckets)].append(spec)
    return [
        ShardPayload(shard_index=i, databases=bucket, shared=shared)
        for i, bucket in enumerate(buckets)
        if bucket
    ]
