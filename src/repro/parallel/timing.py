"""Per-tick phase timers: where the fleet tick's wall-clock goes.

``BENCH_fleet_scale.json`` showed the sharded control plane buying only
~1.27x at 4 workers; this module makes the reason measurable.  A
:class:`TickPhaseTimer` brackets every phase of a fleet tick **on both
sides of the process pipe**:

- parent side — ``build`` (tick command construction), ``dispatch``
  (pipe send / task submit), ``wait`` (blocking on shard results),
  ``merge`` (deterministic replay), ``finalize`` (watchdog, retrain,
  busy accounting).  These five partition the tick, so their sum over
  the tick's wall-clock is the attribution-coverage figure ``repro
  profile`` reports (and the test suite gates at >= 95%).
- worker side — ``worker_run`` / ``worker_drain`` per database, captured
  by a :class:`ShardTickTrace` inside the shard (any backend) and
  shipped home in the :class:`~repro.parallel.worker.ShardResult`.

Worker events carry offsets relative to the shard's own tick start;
:meth:`TickPhaseTimer.absorb_shard` re-anchors them at the parent's
``wait``-phase start, which sidesteps any cross-process clock-base
question (``perf_counter`` bases are not guaranteed comparable across
processes).  The same anchoring rebases span wall clocks via
:func:`rebase_span_ops` before the deterministic merge, so every
exported timestamp shares one timeline rooted at the service's epoch.

Phase names are a taxonomy (:data:`PHASE_CATALOG`) linted by
``scripts/check_observability_names.py`` exactly like metric names.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace_export import PARENT_TRACK, TraceEvent

#: The phase taxonomy.  Every ``timer.phase("...")`` /
#: ``trace.observe_phase("...")`` call site must use a name declared
#: here (the observability-names lint enforces it).
PHASE_CATALOG: Dict[str, str] = {
    "build": "Parent: tick command construction (classifier state, "
             "statement caps) before anything is dispatched.",
    "dispatch": "Parent: pushing the tick command into the pool "
                "(pipe send / thread submit / serial loop setup).",
    "wait": "Parent: blocked on shard results — covers worker compute "
            "plus IPC serialization and transfer.",
    "merge": "Parent: DeterministicMerger replay of per-database deltas "
             "into the region store/audit/registry/spans.",
    "finalize": "Parent: busy accounting, watchdog evaluation, and "
                "classifier retraining after the merge.",
    "worker_run": "Worker: one database's workload advance plus "
                  "control-plane processing.",
    "worker_drain": "Worker: one database's tick-delta drain "
                    "(journal/audit/span/metric snapshot diff).",
}

#: Parent-side phases; they partition the tick, so their per-tick sum is
#: the attribution-coverage numerator.
PARENT_PHASES: Tuple[str, ...] = (
    "build", "dispatch", "wait", "merge", "finalize",
)

#: Worker-side phases; they run *inside* the parent's ``wait`` phase and
#: are reported but never counted toward coverage (no double counting).
WORKER_PHASES: Tuple[str, ...] = ("worker_run", "worker_drain")

#: Histogram bounds for per-tick phase durations, in wall seconds.
PHASE_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 15.0, 60.0,
)


class ShardTickTrace:
    """Worker-side phase collector for one shard tick.

    Offsets are relative to the trace's creation (the shard tick start),
    so the payload shipped home is meaningful regardless of which
    process — with which ``perf_counter`` base — produced it.
    """

    __slots__ = ("started", "events")

    def __init__(self) -> None:
        self.started = time.perf_counter()
        #: ``(phase, database, start_offset_s, duration_s)`` rows.
        self.events: List[Tuple[str, str, float, float]] = []

    def observe_phase(
        self, phase: str, database: str, started: float, ended: float
    ) -> None:
        """Record one phase bracket given raw ``perf_counter`` readings."""
        self.events.append(
            (phase, database, started - self.started, max(0.0, ended - started))
        )

    def totals(self) -> Dict[str, float]:
        """Seconds per phase summed over this shard's databases."""
        out: Dict[str, float] = {}
        for phase, _database, _offset, duration in self.events:
            out[phase] = out.get(phase, 0.0) + duration
        return out


def rebase_span_ops(
    ops: List[tuple], started_wall: float, anchor: float
) -> List[tuple]:
    """Shift span-op wall clocks from a shard's clock onto the parent's.

    ``started_wall`` is the shard's tick start in its own clock;
    ``anchor`` is where that instant lands on the parent timeline
    (seconds since the profiling epoch).  Ops without wall values pass
    through unchanged.
    """
    rebased = []
    for op in ops:
        if op[0] == "start" and len(op) > 7 and op[7] is not None:
            op = op[:7] + (anchor + (op[7] - started_wall),)
        elif op[0] == "end" and len(op) > 5 and op[5] is not None:
            op = op[:5] + (anchor + (op[5] - started_wall),)
        rebased.append(op)
    return rebased


class TickPhaseTimer:
    """Brackets and records the phases of each fleet tick.

    One instance lives on the :class:`ShardedFleetService`; the worker
    pool shares it (for ``dispatch``/``wait``) and the service brackets
    ``build``/``merge``/``finalize`` itself.  When ``enabled`` is False
    every method is a cheap no-op — the ``--no-profile`` escape hatch
    the overhead benchmark gate measures against.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = True,
        max_events: int = 200_000,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        self.max_events = max_events
        self.epoch = time.perf_counter()
        #: Parent + re-anchored worker events for the trace export.
        self.events: List[TraceEvent] = []
        #: One row per tick: ``{"tick", "wall_seconds", "phases", "coverage"}``.
        self.ticks: List[dict] = []
        self._tick_index = -1
        self._current: Dict[str, float] = {}
        self._wait_anchor = 0.0
        self._dropped = 0

    # ------------------------------------------------------------------

    def begin_tick(self) -> None:
        if not self.enabled:
            return
        self._tick_index += 1
        self._current = {}
        self._wait_anchor = time.perf_counter() - self.epoch

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a parent-side phase bracket of the current tick."""
        if not self.enabled:
            yield
            return
        if name not in PHASE_CATALOG:
            raise TelemetryError(
                f"phase {name!r} is not in the PHASE_CATALOG taxonomy "
                "(src/repro/parallel/timing.py)"
            )
        started = time.perf_counter()
        try:
            yield
        finally:
            ended = time.perf_counter()
            seconds = ended - started
            self._current[name] = self._current.get(name, 0.0) + seconds
            if name == "wait":
                # Worker events and span wall clocks are re-anchored at
                # the moment the parent started waiting — the closest
                # parent-side instant to "the shard began computing".
                self._wait_anchor = started - self.epoch
            self._add_event(
                TraceEvent(
                    track=PARENT_TRACK,
                    name=name,
                    ts=started - self.epoch,
                    dur=seconds,
                    category="phase",
                    args={"tick": self._tick_index},
                )
            )

    @property
    def wait_anchor(self) -> float:
        """Parent-timeline seconds where the current tick's shard work
        is anchored (the start of the ``wait`` phase)."""
        return self._wait_anchor

    def now(self) -> float:
        """Parent-timeline seconds since the profiling epoch.

        The service stamps each streamed ShardResult with this at
        receipt; per-shard deltas of the shard's own ``started_wall``
        readings then place every tick of a batch on the parent timeline
        without ever comparing clock bases across processes.
        """
        return time.perf_counter() - self.epoch

    def absorb_shard(self, result, anchor: Optional[float] = None) -> None:
        """Fold one :class:`ShardResult`'s worker-side phase events in.

        ``anchor`` is where the shard's tick start lands on the parent
        timeline.  Pipelined dispatch passes an explicit per-result
        anchor (results for several ticks can arrive while one parent
        ``wait`` phase is open); the default is the classic behaviour —
        anchor at the current tick's wait-phase start.
        """
        if not self.enabled:
            return
        if anchor is None:
            anchor = self._wait_anchor
        track = result.shard_index + 1
        for phase, database, offset, duration in result.events:
            self._current[phase] = self._current.get(phase, 0.0) + duration
            self._add_event(
                TraceEvent(
                    track=track,
                    name=phase,
                    ts=anchor + offset,
                    dur=duration,
                    category="phase",
                    args={"tick": self._tick_index, "database": database},
                )
            )
        if self.registry is not None:
            for phase, seconds in sorted(result.phase_seconds.items()):
                self.registry.histogram(
                    "fleet_phase_seconds", bounds=PHASE_BOUNDS, phase=phase
                ).observe(seconds)  # observability-names: allow-dynamic

    def end_tick(self, wall_seconds: float) -> None:
        """Close the tick: publish histograms and the coverage gauge."""
        if not self.enabled:
            return
        covered = sum(
            self._current.get(phase, 0.0) for phase in PARENT_PHASES
        )
        coverage = covered / wall_seconds if wall_seconds > 0 else 0.0
        if self.registry is not None:
            for phase in PARENT_PHASES:
                if phase in self._current:
                    self.registry.histogram(
                        "fleet_phase_seconds", bounds=PHASE_BOUNDS, phase=phase
                    ).observe(self._current[phase])  # observability-names: allow-dynamic
            self.registry.gauge("fleet_tick_attribution_ratio").set(coverage)
        self.ticks.append(
            {
                "tick": self._tick_index,
                "wall_seconds": wall_seconds,
                "phases": dict(self._current),
                "coverage": coverage,
            }
        )

    # ------------------------------------------------------------------

    def _add_event(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self._dropped += 1
            if self.registry is not None:
                self.registry.counter(
                    "fleet_profile_events_dropped_total"
                ).inc()
            return
        self.events.append(event)

    @property
    def dropped_events(self) -> int:
        return self._dropped

    def phase_totals(self) -> Dict[str, float]:
        """Seconds per phase summed over all recorded ticks."""
        totals: Dict[str, float] = {}
        for row in self.ticks:
            for phase, seconds in row["phases"].items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals
