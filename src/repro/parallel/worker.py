"""Shard workers: per-database planes that buffer their tick output.

Each managed database gets its **own** single-database
:class:`~repro.controlplane.ControlPlane` (local rec ids, local journal
seqs, local audit seqs, local span ids).  That is what makes the merge
order canonical: a database's stream is identical no matter which shard
or backend executed it, so replaying streams in sorted ``(db_name,
seq)`` order yields one global, byte-stable history.

A :class:`ShardRunner` owns a list of :class:`DatabaseWorker` and runs
one tick over all of them; :func:`shard_worker_main` is the process
entrypoint that builds a runner from a picklable
:class:`~repro.parallel.spec.ShardPayload` and serves tick commands over
a pipe.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from typing import Dict, List, Optional

from repro.controlplane import ControlPlane
from repro.observability.profiling import Profiler, use_profiler
from repro.observability.spans import Span, Tracer
from repro.parallel.delta import TickDelta, diff_snapshots, registry_snapshot
from repro.parallel.spec import DatabaseSpec, ShardPayload, SharedSettings
from repro.parallel.timing import ShardTickTrace
from repro.workload.app_profiles import make_profile


class RecordingTracer(Tracer):
    """A tracer that also journals every start/end as a picklable op.

    The ops (not the span objects) cross the process pipe; the merger
    replays them against the region service's recorder with globally
    remapped span ids.  Each op's final element is the span's wall-clock
    ``perf_counter`` reading in *this* process's clock — the service
    rebases it onto the parent timeline before the merge (see
    :func:`repro.parallel.timing.rebase_span_ops`).
    """

    def __init__(self, recorder) -> None:
        super().__init__(recorder)
        self.ops: List[tuple] = []

    def start(
        self,
        kind: str,
        database: str,
        at: float,
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        span = super().start(kind, database, at, parent=parent, **attributes)
        self.ops.append(
            (
                "start",
                span.span_id,
                kind,
                database,
                at,
                span.parent_id,
                dict(attributes),
                span.wall_start,
            )
        )
        return span

    def end(self, span: Span, at: float, outcome: str = "ok", **attributes) -> Span:
        super().end(span, at, outcome, **attributes)
        self.ops.append(
            ("end", span.span_id, at, outcome, dict(attributes), span.wall_end)
        )
        return span

    def drain(self) -> List[tuple]:
        ops, self.ops = self.ops, []
        return ops


class DatabaseWorker:
    """One managed database: profile + single-database control plane."""

    def __init__(self, spec: DatabaseSpec, shared: SharedSettings) -> None:
        self.spec = spec
        #: Process-local hot-path stats for *this database only*.  Every
        #: backend installs it around its engine work via
        #: :func:`~repro.observability.profiling.use_profiler`, so
        #: shard-side profiling neither leaks into the parent's global
        #: profiler (the old thread/serial double count) nor dies with a
        #: worker process (the old process-backend data loss): rows are
        #: drained into every tick delta and merged at the parent.
        self.profiler = Profiler()
        self.profile = make_profile(
            spec.name,
            seed=spec.profile_seed,
            tier=spec.tier,
            engine_settings=shared.engine_settings,
        )
        self.plane = ControlPlane(
            self.profile.engine.clock,
            settings=shared.control_settings,
            policy=shared.policy,
            validation_settings=shared.validation_settings,
            mi_settings=shared.mi_settings,
            fault_seed=spec.fault_seed,
            enable_watchdog=False,
        )
        # Journal span activity instead of only recording it; the merge
        # replays the ops into the region-level recorder.
        self.plane.telemetry.tracer = RecordingTracer(
            self.plane.telemetry.recorder
        )
        self.plane.add_database(
            spec.name, self.profile.engine, tier=spec.tier, config=spec.config
        )
        self._bus_buffer: List[object] = []
        self.plane.events.subscribe("*", self._on_bus_event)
        self._journal_cursor = 0
        self._audit_cursor = 0
        self._history_cursor = 0
        self._incident_cursor = 0
        self._metric_snapshot = registry_snapshot(self.plane.telemetry.registry)

    def _on_bus_event(self, event) -> None:
        self._bus_buffer.append(event)

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        trace: Optional[ShardTickTrace] = None,
    ) -> TickDelta:
        """Advance the workload to ``end`` (simulated minutes), process
        the plane once, and drain everything emitted."""
        run_started = time.perf_counter()
        with use_profiler(self.profiler):
            engine = self.profile.engine
            remaining_hours = (end - engine.clock.now) / 60.0
            if remaining_hours > 0:
                self.profile.workload.run(
                    engine, remaining_hours, max_statements=max_statements
                )
            if engine.clock.now < end:
                engine.clock.advance_to(end)
            self.plane.process(end)
        drain_started = time.perf_counter()
        delta = self._drain()
        drained = time.perf_counter()
        if trace is not None:
            trace.observe_phase(
                "worker_run", self.spec.name, run_started, drain_started
            )
            trace.observe_phase(
                "worker_drain", self.spec.name, drain_started, drained
            )
        return delta

    def _drain(self) -> TickDelta:
        plane = self.plane
        journal = plane.store.journal_since(self._journal_cursor)
        self._journal_cursor += len(journal)
        audit = plane.telemetry.audit.events_since(self._audit_cursor)
        self._audit_cursor += len(audit)
        spans = plane.telemetry.tracer.drain()
        bus, self._bus_buffer = self._bus_buffer, []
        history = plane.validation_history[self._history_cursor:]
        self._history_cursor += len(history)
        incidents = plane.incidents[self._incident_cursor:]
        self._incident_cursor += len(incidents)
        snapshot = registry_snapshot(plane.telemetry.registry)
        metrics = diff_snapshots(self._metric_snapshot, snapshot)
        self._metric_snapshot = snapshot
        return TickDelta(
            database=self.spec.name,
            journal=list(journal),
            audit=list(audit),
            spans=spans,
            bus=list(bus),
            metrics=metrics,
            validation_history=list(history),
            incidents=list(incidents),
            hot_paths=self.profiler.drain_rows(),
        )

    def load_classifier(self, state: Optional[dict]) -> None:
        self.plane.classifier.load_state(state)


@dataclasses.dataclass
class ShardResult:
    """One shard's tick output plus its wall-clock cost.

    ``started_wall`` and the ``events`` offsets are in the *shard
    process's* ``perf_counter`` clock; the parent re-anchors them on its
    own timeline (see :meth:`repro.parallel.timing.TickPhaseTimer
    .absorb_shard`) rather than comparing clock bases across processes.
    """

    deltas: List[TickDelta]
    busy_seconds: float
    shard_index: int = 0
    #: Position of this tick inside its dispatch batch (0 for the
    #: classic one-tick round-trip).  The parent buffers streamed
    #: results and releases them to the merger in ``(tick_index,
    #: shard_index)`` order, so completion order never leaks into
    #: merged output.
    tick_index: int = 0
    #: The shard clock's reading at tick start (anchor for offsets).
    started_wall: float = 0.0
    #: Seconds per worker-side phase, summed over this shard's databases.
    phase_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: ``(phase, database, start_offset_s, duration_s)`` trace rows.
    events: List[tuple] = dataclasses.field(default_factory=list)


class ShardRunner:
    """Executes ticks for one shard's databases (any backend)."""

    def __init__(self, payload: ShardPayload) -> None:
        self.shard_index = payload.shard_index
        self.instrument = payload.shared.instrument
        self.workers = [
            DatabaseWorker(spec, payload.shared) for spec in payload.databases
        ]

    def tick(
        self,
        end: float,
        max_statements: Optional[int],
        classifier_state: Optional[dict],
        tick_index: int = 0,
    ) -> ShardResult:
        trace = ShardTickTrace() if self.instrument else None
        started = trace.started if trace is not None else time.perf_counter()
        if classifier_state is not None:
            for worker in self.workers:
                worker.load_classifier(classifier_state)
        deltas = [
            worker.tick(end, max_statements, trace) for worker in self.workers
        ]
        return ShardResult(
            deltas=deltas,
            busy_seconds=time.perf_counter() - started,
            shard_index=self.shard_index,
            tick_index=tick_index,
            started_wall=started,
            phase_seconds=trace.totals() if trace is not None else {},
            events=trace.events if trace is not None else [],
        )

    def tick_batch(
        self,
        ends: List[float],
        max_statements: Optional[int],
        classifier_state: Optional[dict],
    ):
        """Run ``ends`` back-to-back, yielding one ShardResult per tick.

        Broadcast classifier state applies before the batch's first tick
        only — the parent flushes a batch at every retrain boundary, so
        this is exactly the "new model at the next tick" semantics of
        the one-tick protocol.
        """
        for index, end in enumerate(ends):
            yield self.tick(
                end,
                max_statements,
                classifier_state if index == 0 else None,
                tick_index=index,
            )


def shard_worker_main(conn, payload: ShardPayload) -> None:
    """Process entrypoint: build the shard, then serve tick commands.

    Protocol (all picklable):

    - recv ``("tick", end, max_statements, classifier_state)`` →
      send ``("ok", ShardResult)``;
    - recv ``("tick_batch", ends, max_statements, classifier_state)`` →
      send ``("ok", ShardResult)`` **once per tick, streamed as each
      tick finishes** — the worker stays hot across the whole batch and
      the parent merges early ticks while later ones still compute;
    - recv ``("stop",)`` → exit.

    Any exception is reported as ``("error", formatted_traceback)`` and
    the worker exits; the pool raises it in the parent.
    """
    try:
        runner = ShardRunner(payload)
        conn.send(("ready", runner.shard_index, len(runner.workers)))
        while True:
            command = conn.recv()
            if command[0] == "stop":
                break
            if command[0] == "tick":
                _cmd, end, max_statements, classifier_state = command
                result = runner.tick(end, max_statements, classifier_state)
                conn.send(("ok", result))
            elif command[0] == "tick_batch":
                _cmd, ends, max_statements, classifier_state = command
                for result in runner.tick_batch(
                    ends, max_statements, classifier_state
                ):
                    conn.send(("ok", result))
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {command[0]!r}"))
                break
    except Exception:  # pragma: no cover - exercised via pool error test
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
