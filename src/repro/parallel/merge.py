"""The deterministic merge: per-database streams → one global history.

Workers emit per-database streams keyed by *local* ids (rec ids, span
ids, journal seqs, audit seqs).  The merger replays them into the region
service's store/audit/recorder/registry/bus in **stable order**: deltas
sorted by database name, each database's stream in its own emission
(seq) order.  Global ids are assigned during replay, so two runs that
produce the same per-database streams — which sharding guarantees,
because every database's work is seeded and independent — produce
byte-identical global output regardless of worker count or backend.

Ordering guarantee, precisely: within one tick, database A's entire
stream lands before database B's iff ``A < B`` lexicographically;
across ticks, tick T lands before tick T+1.  Journal entries are
replayed before the same database's audit/span/bus events so that
events referencing records inserted in the same tick always find their
global id already assigned.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

from repro.controlplane.control_plane import Incident
from repro.controlplane.events import Event, EventBus
from repro.controlplane.store import StateStore
from repro.errors import TelemetryError
from repro.observability.audit import AuditLog
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiling import Profiler
from repro.observability.spans import Span, SpanRecorder
from repro.parallel.delta import (
    TickDelta,
    apply_metric_diff,
    remap_payload_rec_id,
)


class CompletionBuffer:
    """Re-orders a completion-order ShardResult stream for the merger.

    Pipelined dispatch streams results as shards finish them: a fast
    shard's tick 3 can arrive before a slow shard's tick 0.  The merge
    order must not depend on that race, so the service parks every
    arrival here and releases tick T only once **all** shards have
    delivered it — sorted by shard index, which (with the merger's own
    by-database sort) pins the global replay order to ``(tick, shard,
    db)`` regardless of arrival order, backend, or batch size.

    Each arrival is stored with its parent-timeline anchor (computed at
    receipt) so phase absorption and span rebasing survive the
    reordering.
    """

    def __init__(self, shard_indices: List[int], n_ticks: int) -> None:
        self._expected = frozenset(shard_indices)
        self.n_ticks = n_ticks
        #: (tick_index, shard_index) -> (ShardResult, anchor_seconds).
        self._arrived: Dict[Tuple[int, int], Tuple[object, float]] = {}
        self._released = 0

    def add(self, result, anchor: float = 0.0) -> None:
        """Park one streamed result (any order), tagged with its anchor."""
        key = (result.tick_index, result.shard_index)
        if result.shard_index not in self._expected:
            raise TelemetryError(
                f"shard {result.shard_index} is not part of this batch"
            )
        if not 0 <= result.tick_index < self.n_ticks:
            raise TelemetryError(
                f"tick {result.tick_index} outside batch of {self.n_ticks}"
            )
        if key in self._arrived:
            raise TelemetryError(
                f"duplicate result for tick {result.tick_index} from "
                f"shard {result.shard_index}"
            )
        self._arrived[key] = (result, anchor)

    def complete(self, tick_index: int) -> bool:
        """Whether every shard's result for ``tick_index`` has arrived."""
        return all(
            (tick_index, shard) in self._arrived for shard in self._expected
        )

    def release(self, tick_index: int) -> List[Tuple[object, float]]:
        """Pop tick ``tick_index``'s results in stable shard order."""
        if not self.complete(tick_index):
            missing = sorted(
                shard
                for shard in self._expected
                if (tick_index, shard) not in self._arrived
            )
            raise TelemetryError(
                f"tick {tick_index} released before shards {missing} "
                "delivered it"
            )
        self._released += 1
        return [
            self._arrived.pop((tick_index, shard))
            for shard in sorted(self._expected)
        ]

    @property
    def buffered(self) -> int:
        """Results parked awaiting their tick's stragglers (gauge feed)."""
        return len(self._arrived)


class DeterministicMerger:
    """Replays sorted per-database tick deltas into region-level state."""

    def __init__(
        self,
        store: StateStore,
        audit: AuditLog,
        registry: MetricsRegistry,
        recorder: SpanRecorder,
        bus: EventBus,
        incidents: List[Incident],
        validation_history: List[dict],
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.store = store
        self.audit = audit
        self.registry = registry
        self.recorder = recorder
        self.bus = bus
        self.incidents = incidents
        self.validation_history = validation_history
        #: Region-level profiler that absorbs worker hot-path rows.  The
        #: rows arrive pre-sorted by name and deltas merge in stable db
        #: order, so the float accumulation order — hence the aggregate —
        #: is identical across backends and worker counts.
        self.profiler = profiler
        #: (database, local rec_id) -> global rec_id, stable for the run.
        self.rec_ids: Dict[Tuple[str, int], int] = {}
        #: (database, local span_id) -> the merged Span object, while open.
        self._open_spans: Dict[Tuple[str, int], Span] = {}
        #: (database, local span_id) -> global span_id (kept for parents).
        self._span_ids: Dict[Tuple[str, int], int] = {}
        self._next_rec_id = itertools.count(1)
        self._next_span_id = itertools.count(1)

    # ------------------------------------------------------------------

    def merge(self, deltas: List[TickDelta]) -> None:
        """Merge one tick's deltas (any arrival order) deterministically."""
        for delta in sorted(deltas, key=lambda d: d.database):
            self._merge_one(delta)

    def _merge_one(self, delta: TickDelta) -> None:
        database = delta.database
        for entry in delta.journal:
            if entry.op == "insert":
                global_id = next(self._next_rec_id)
                self.rec_ids[(database, entry.rec_id)] = global_id
            else:
                global_id = self._require_rec_id(database, entry.rec_id)
            self.store.ingest(entry.op, entry.at, global_id, entry.payload)
        for event in delta.audit:
            rec_id = (
                self._require_rec_id(database, event.rec_id)
                if event.rec_id is not None
                else None
            )
            self.audit.emit(  # observability-names: allow-dynamic
                event.at,
                event.event_type,
                event.database,
                rec_id=rec_id,
                **event.payload,
            )
        for op in delta.spans:
            self._apply_span_op(database, op)
        for event in delta.bus:
            self.bus.ingest(
                Event(
                    at=event.at,
                    kind=event.kind,
                    database=event.database,
                    payload=remap_payload_rec_id(
                        event.payload, self.rec_ids, database
                    ),
                )
            )
        apply_metric_diff(self.registry, delta.metrics)
        if self.profiler is not None:
            for row in delta.hot_paths:
                name, calls, real_seconds, sim_ms = row
                self.profiler.absorb(
                    name, calls, real_seconds, sim_ms=sim_ms
                )
        self.validation_history.extend(delta.validation_history)
        for incident in delta.incidents:
            self.incidents.append(
                dataclasses.replace(
                    incident,
                    rec_id=(
                        self._require_rec_id(database, incident.rec_id)
                        if incident.rec_id is not None
                        else None
                    ),
                )
            )

    # ------------------------------------------------------------------

    def _require_rec_id(self, database: str, local: int) -> int:
        mapped = self.rec_ids.get((database, local))
        if mapped is None:
            raise TelemetryError(
                f"merge saw rec_id {local} of {database!r} before its "
                "journal insert — shard stream out of order"
            )
        return mapped

    def _apply_span_op(self, database: str, op: tuple) -> None:
        # Wall-clock elements are optional trailing fields: older dumps
        # (and unit-test fixtures) ship the bare 7/5-tuples, live workers
        # append a rebased ``perf_counter`` reading.  Wall values never
        # participate in determinism comparisons — sim-time fields do.
        if op[0] == "start":
            _kind, local_id, kind, span_db, at, local_parent, attributes = op[:7]
            wall_start = op[7] if len(op) > 7 else None
            parent_id: Optional[int] = None
            if local_parent is not None:
                parent_id = self._span_ids.get((database, local_parent))
                if parent_id is None:
                    raise TelemetryError(
                        f"merge saw child span before parent {local_parent} "
                        f"of {database!r}"
                    )
            global_id = next(self._next_span_id)
            self._span_ids[(database, local_id)] = global_id
            span = Span(
                span_id=global_id,
                kind=kind,
                database=span_db,
                start=at,
                parent_id=parent_id,
                attributes=remap_payload_rec_id(
                    dict(attributes), self.rec_ids, database
                ),
                wall_start=wall_start,
            )
            self._open_spans[(database, local_id)] = span
            self.recorder.record(span)
        else:
            _kind, local_id, at, outcome, attributes = op[:5]
            wall_end = op[5] if len(op) > 5 else None
            span = self._open_spans.pop((database, local_id), None)
            if span is None:
                raise TelemetryError(
                    f"merge saw end for unknown span {local_id} of "
                    f"{database!r}"
                )
            span.end = at
            span.outcome = outcome
            span.wall_end = wall_end
            span.attributes.update(
                remap_payload_rec_id(dict(attributes), self.rec_ids, database)
            )
