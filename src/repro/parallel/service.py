"""The sharded fleet service: dispatch ticks, merge deterministically.

:class:`ShardedFleetService` is the fleet-parallel counterpart of
:class:`repro.service.AutoIndexingService`.  Databases are sharded
across a worker pool (process, thread, or serial — see
:class:`~repro.parallel.settings.ParallelSettings`); each virtual-time
tick every shard advances its databases' workloads and control planes
concurrently, and the parent replays the resulting per-database deltas
through the :class:`~repro.parallel.merge.DeterministicMerger` into one
region-level store/audit/registry/span/event history.

Because global ordering is assigned at merge time in stable
``(db_name, seq)`` order, a run's audit JSONL, recovered store state,
and span trees are byte-identical across backends and worker counts for
the same seed.  Cross-database services stay at the parent, where they
see the same merged state at the same virtual time in every backend:
the alert watchdog evaluates over the merged registry, and the
low-impact classifier retrains on the merged validation history (the
new state is broadcast to workers with the *next* tick command).
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.clock import HOURS, SimClock
from repro.controlplane import (
    AutoIndexingConfig,
    ControlPlaneSettings,
)
from repro.controlplane.control_plane import Incident
from repro.controlplane.events import EventBus
from repro.controlplane.store import StateStore
from repro.engine.engine import EngineSettings
from repro.observability import AlertWatchdog, Telemetry
from repro.recommender import MiRecommenderSettings
from repro.recommender.classifier import (
    LowImpactClassifier,
    examples_from_history,
)
from repro.recommender.policy import RecommenderPolicy
from repro.service import ServiceSettings
from repro.parallel.merge import DeterministicMerger
from repro.parallel.pool import make_pool
from repro.parallel.settings import ParallelSettings
from repro.parallel.spec import (
    SharedSettings,
    database_specs,
    shard_payloads,
)
from repro.validation import ValidationSettings


class ShardedFleetService:
    """One region's auto-indexing service, executed shard-parallel."""

    def __init__(
        self,
        n_databases: int,
        tier: str = "standard",
        seed: int = 0,
        parallel: Optional[ParallelSettings] = None,
        service_settings: Optional[ServiceSettings] = None,
        control_settings: Optional[ControlPlaneSettings] = None,
        validation_settings: Optional[ValidationSettings] = None,
        policy: Optional[RecommenderPolicy] = None,
        mi_settings: Optional[MiRecommenderSettings] = None,
        engine_settings: Optional[EngineSettings] = None,
        default_config: Optional[AutoIndexingConfig] = None,
        fault_seed: int = 0,
        name_prefix: str = "db",
    ) -> None:
        self.parallel = parallel or ParallelSettings()
        self.settings = service_settings or ServiceSettings()
        self.clock = SimClock()
        # Region-level merged state: same shapes the serial service's
        # control plane exposes, so reporting/CLI code reads either.
        self.telemetry = Telemetry()
        self.store = StateStore()
        self.events = EventBus(metrics=self.telemetry.registry)
        self.incidents: List[Incident] = []
        self.validation_history: List[dict] = []
        self.classifier = LowImpactClassifier()
        self.watchdog = AlertWatchdog(
            self.telemetry.registry, audit=self.telemetry.audit
        )
        self.merger = DeterministicMerger(
            store=self.store,
            audit=self.telemetry.audit,
            registry=self.telemetry.registry,
            recorder=self.telemetry.recorder,
            bus=self.events,
            incidents=self.incidents,
            validation_history=self.validation_history,
        )
        self.specs = database_specs(
            n_databases,
            tier=tier,
            seed=seed,
            name_prefix=name_prefix,
            fault_seed=fault_seed,
            config=default_config,
        )
        self.database_names = [spec.name for spec in self.specs]
        shared = SharedSettings(
            control_settings=control_settings,
            validation_settings=validation_settings,
            mi_settings=mi_settings,
            policy=policy,
            engine_settings=engine_settings,
        )
        self.payloads = shard_payloads(
            self.specs, self.parallel.effective_workers, shared
        )
        self.backend = self.parallel.effective_backend
        self.pool = make_pool(
            self.backend, self.payloads, mp_context=self.parallel.mp_context
        )
        registry = self.telemetry.registry
        registry.gauge("fleet_databases").set(len(self.specs))
        registry.gauge("fleet_workers").set(len(self.payloads))
        self._shard_busy = [0.0] * len(self.payloads)
        #: Wall-clock seconds per tick (dispatch + merge); the fleet
        #: benchmark derives p95 tick latency from this.
        self.tick_wall_seconds: List[float] = []
        self._pending_classifier_state: Optional[dict] = None
        self._last_retrain = 0.0
        self._closed = False

    # ------------------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the closed loop by ``hours`` of virtual time."""
        remaining = hours
        while remaining > 0:
            step = min(self.settings.step_hours, remaining)
            self._tick(self.clock.now + step * HOURS)
            remaining -= step

    def _tick(self, end: float) -> None:
        started = time.perf_counter()
        classifier_state = self._pending_classifier_state
        self._pending_classifier_state = None
        results = self.pool.tick(
            end, self.settings.max_statements_per_step, classifier_state
        )
        deltas = [delta for result in results for delta in result.deltas]
        registry = self.telemetry.registry
        registry.gauge("fleet_merge_queue_depth").set(len(deltas))
        self.merger.merge(deltas)
        busy = [result.busy_seconds for result in results]
        for i, seconds in enumerate(busy):
            self._shard_busy[i] += seconds
            registry.gauge("fleet_shard_busy", shard=str(i)).set(
                self._shard_busy[i]
            )
        registry.gauge("fleet_tick_skew_seconds").set(
            max(busy) - min(busy) if busy else 0.0
        )
        registry.counter("fleet_ticks_total").inc()
        self.clock.advance_to(end)
        self.watchdog.evaluate(end)
        self._maybe_retrain()
        self.tick_wall_seconds.append(time.perf_counter() - started)

    def _maybe_retrain(self) -> None:
        now = self.clock.now
        if now - self._last_retrain < (
            self.settings.classifier_retrain_hours * HOURS
        ):
            return
        self._last_retrain = now
        examples = examples_from_history(self.validation_history)
        if self.classifier.fit(examples):
            # Broadcast with the next tick command so every backend
            # applies the new model at the same virtual time.
            self._pending_classifier_state = self.classifier.export_state()
            self.events.emit(
                now,
                "classifier_retrained",
                "<region>",
                examples=len(examples),
            )

    # ------------------------------------------------------------------

    @property
    def audit(self):
        """The merged decision-provenance stream."""
        return self.telemetry.audit

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "ShardedFleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_fleet_service(
    n_databases: int,
    workers: int = 0,
    backend: str = "auto",
    **kwargs,
) -> ShardedFleetService:
    """Convenience constructor mirroring :func:`repro.service.build_service`."""
    parallel = ParallelSettings(workers=workers, backend=backend)
    return ShardedFleetService(n_databases, parallel=parallel, **kwargs)
