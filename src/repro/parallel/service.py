"""The sharded fleet service: dispatch ticks, merge deterministically.

:class:`ShardedFleetService` is the fleet-parallel counterpart of
:class:`repro.service.AutoIndexingService`.  Databases are sharded
across a worker pool (process, thread, or serial — see
:class:`~repro.parallel.settings.ParallelSettings`); each virtual-time
tick every shard advances its databases' workloads and control planes
concurrently, and the parent replays the resulting per-database deltas
through the :class:`~repro.parallel.merge.DeterministicMerger` into one
region-level store/audit/registry/span/event history.

Because global ordering is assigned at merge time in stable
``(db_name, seq)`` order, a run's audit JSONL, recovered store state,
and span trees are byte-identical across backends and worker counts for
the same seed.  Cross-database services stay at the parent, where they
see the same merged state at the same virtual time in every backend:
the alert watchdog evaluates over the merged registry, and the
low-impact classifier retrains on the merged validation history (the
new state is broadcast to workers with the *next* tick command).
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.clock import HOURS, SimClock
from repro.controlplane import (
    AutoIndexingConfig,
    ControlPlaneSettings,
)
from repro.controlplane.control_plane import Incident
from repro.controlplane.events import EventBus
from repro.controlplane.store import StateStore
from repro.engine.engine import EngineSettings
from repro.observability import AlertWatchdog, Telemetry
from repro.observability.profiling import Profiler
from repro.observability.trace_export import (
    TraceEvent,
    attribution_summary,
    span_trace_events,
)
from repro.recommender import MiRecommenderSettings
from repro.recommender.classifier import (
    LowImpactClassifier,
    examples_from_history,
)
from repro.recommender.policy import RecommenderPolicy
from repro.service import ServiceSettings
from repro.parallel.merge import DeterministicMerger
from repro.parallel.pool import make_pool
from repro.parallel.settings import ParallelSettings
from repro.parallel.spec import (
    SharedSettings,
    database_specs,
    shard_payloads,
)
from repro.parallel.timing import (
    PARENT_PHASES,
    TickPhaseTimer,
    rebase_span_ops,
)
from repro.validation import ValidationSettings


class ShardedFleetService:
    """One region's auto-indexing service, executed shard-parallel."""

    def __init__(
        self,
        n_databases: int,
        tier: str = "standard",
        seed: int = 0,
        parallel: Optional[ParallelSettings] = None,
        service_settings: Optional[ServiceSettings] = None,
        control_settings: Optional[ControlPlaneSettings] = None,
        validation_settings: Optional[ValidationSettings] = None,
        policy: Optional[RecommenderPolicy] = None,
        mi_settings: Optional[MiRecommenderSettings] = None,
        engine_settings: Optional[EngineSettings] = None,
        default_config: Optional[AutoIndexingConfig] = None,
        fault_seed: int = 0,
        name_prefix: str = "db",
    ) -> None:
        self.parallel = parallel or ParallelSettings()
        self.settings = service_settings or ServiceSettings()
        self.clock = SimClock()
        # Region-level merged state: same shapes the serial service's
        # control plane exposes, so reporting/CLI code reads either.
        self.telemetry = Telemetry()
        self.store = StateStore()
        self.events = EventBus(metrics=self.telemetry.registry)
        self.incidents: List[Incident] = []
        self.validation_history: List[dict] = []
        self.classifier = LowImpactClassifier()
        self.watchdog = AlertWatchdog(
            self.telemetry.registry, audit=self.telemetry.audit
        )
        #: Region-level hot-path aggregate, merged from worker profilers
        #: in stable db order each tick (``repro profile`` ranks these).
        self.profiler = Profiler()
        self.merger = DeterministicMerger(
            store=self.store,
            audit=self.telemetry.audit,
            registry=self.telemetry.registry,
            recorder=self.telemetry.recorder,
            bus=self.events,
            incidents=self.incidents,
            validation_history=self.validation_history,
            profiler=self.profiler,
        )
        self.specs = database_specs(
            n_databases,
            tier=tier,
            seed=seed,
            name_prefix=name_prefix,
            fault_seed=fault_seed,
            config=default_config,
        )
        self.database_names = [spec.name for spec in self.specs]
        shared = SharedSettings(
            control_settings=control_settings,
            validation_settings=validation_settings,
            mi_settings=mi_settings,
            policy=policy,
            engine_settings=engine_settings,
            instrument=self.parallel.instrument,
        )
        self.payloads = shard_payloads(
            self.specs, self.parallel.effective_workers, shared
        )
        self.backend = self.parallel.effective_backend
        #: One timer for the whole service: the pool brackets
        #: dispatch/wait on it, ``_tick`` brackets build/merge/finalize.
        self.phase_timer = TickPhaseTimer(
            registry=self.telemetry.registry,
            enabled=self.parallel.instrument,
        )
        self.pool = make_pool(
            self.backend,
            self.payloads,
            mp_context=self.parallel.mp_context,
            timer=self.phase_timer,
        )
        #: Database name -> export track (1 + shard index): spans from a
        #: database render on the worker track that executed it.
        self._db_track = {
            spec.name: payload.shard_index + 1
            for payload in self.payloads
            for spec in payload.databases
        }
        registry = self.telemetry.registry
        registry.gauge("fleet_databases").set(len(self.specs))
        registry.gauge("fleet_workers").set(len(self.payloads))
        self._shard_busy = [0.0] * len(self.payloads)
        #: Wall-clock seconds per tick (dispatch + merge); the fleet
        #: benchmark derives p95 tick latency from this.
        self.tick_wall_seconds: List[float] = []
        self._pending_classifier_state: Optional[dict] = None
        self._last_retrain = 0.0
        self._closed = False

    # ------------------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the closed loop by ``hours`` of virtual time."""
        remaining = hours
        while remaining > 0:
            step = min(self.settings.step_hours, remaining)
            self._tick(self.clock.now + step * HOURS)
            remaining -= step

    def _tick(self, end: float) -> None:
        started = time.perf_counter()
        timer = self.phase_timer
        timer.begin_tick()
        # The five parent phases (build / dispatch / wait / merge /
        # finalize) partition this method with only context-manager
        # transitions between them, which is what makes the >= 95%
        # attribution-coverage gate structurally achievable.
        with timer.phase("build"):
            classifier_state = self._pending_classifier_state
            self._pending_classifier_state = None
            max_statements = self.settings.max_statements_per_step
        # The pool brackets "dispatch" and "wait" internally.
        results = self.pool.tick(end, max_statements, classifier_state)
        registry = self.telemetry.registry
        with timer.phase("merge"):
            anchor = timer.wait_anchor
            deltas = []
            for result in results:
                timer.absorb_shard(result)
                for delta in result.deltas:
                    if timer.enabled and delta.spans:
                        # Shift span wall clocks from the shard's
                        # perf_counter base onto the parent timeline so
                        # the export shares one epoch.  Sim-time fields
                        # are untouched — determinism is unaffected.
                        delta.spans = rebase_span_ops(
                            delta.spans, result.started_wall, anchor
                        )
                    deltas.append(delta)
            registry.gauge("fleet_merge_queue_depth").set(len(deltas))
            self.merger.merge(deltas)
        with timer.phase("finalize"):
            busy = [result.busy_seconds for result in results]
            for i, seconds in enumerate(busy):
                self._shard_busy[i] += seconds
                registry.gauge("fleet_shard_busy", shard=str(i)).set(
                    self._shard_busy[i]
                )
            registry.gauge("fleet_tick_skew_seconds").set(
                max(busy) - min(busy) if busy else 0.0
            )
            registry.counter("fleet_ticks_total").inc()
            self.clock.advance_to(end)
            self.watchdog.evaluate(end)
            self._maybe_retrain()
        wall = time.perf_counter() - started
        timer.end_tick(wall)
        self.tick_wall_seconds.append(wall)

    def _maybe_retrain(self) -> None:
        now = self.clock.now
        if now - self._last_retrain < (
            self.settings.classifier_retrain_hours * HOURS
        ):
            return
        self._last_retrain = now
        examples = examples_from_history(self.validation_history)
        if self.classifier.fit(examples):
            # Broadcast with the next tick command so every backend
            # applies the new model at the same virtual time.
            self._pending_classifier_state = self.classifier.export_state()
            self.events.emit(
                now,
                "classifier_retrained",
                "<region>",
                examples=len(examples),
            )

    # ------------------------------------------------------------------

    @property
    def audit(self):
        """The merged decision-provenance stream."""
        return self.telemetry.audit

    def attribution(self) -> dict:
        """Where the wall-clock went: per-phase totals and coverage."""
        return attribution_summary(self.phase_timer.ticks, PARENT_PHASES)

    def trace_events(self) -> List[TraceEvent]:
        """Phase brackets plus merged-span events for the trace export."""
        return list(self.phase_timer.events) + span_trace_events(
            self.telemetry.recorder.spans(), self._db_track
        )

    def track_names(self) -> dict:
        """Export track index -> human-readable label."""
        names = {0: "control plane (parent)"}
        for payload in self.payloads:
            names[payload.shard_index + 1] = (
                f"shard-{payload.shard_index} "
                f"({len(payload.databases)} db, {self.backend})"
            )
        return names

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "ShardedFleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_fleet_service(
    n_databases: int,
    workers: int = 0,
    backend: str = "auto",
    instrument: bool = True,
    **kwargs,
) -> ShardedFleetService:
    """Convenience constructor mirroring :func:`repro.service.build_service`."""
    parallel = ParallelSettings(
        workers=workers, backend=backend, instrument=instrument
    )
    return ShardedFleetService(n_databases, parallel=parallel, **kwargs)
