"""The sharded fleet service: dispatch ticks, merge deterministically.

:class:`ShardedFleetService` is the fleet-parallel counterpart of
:class:`repro.service.AutoIndexingService`.  Databases are sharded
across a worker pool (process, thread, or serial — see
:class:`~repro.parallel.settings.ParallelSettings`); each virtual-time
tick every shard advances its databases' workloads and control planes
concurrently, and the parent replays the resulting per-database deltas
through the :class:`~repro.parallel.merge.DeterministicMerger` into one
region-level store/audit/registry/span/event history.

Because global ordering is assigned at merge time in stable
``(db_name, seq)`` order, a run's audit JSONL, recovered store state,
and span trees are byte-identical across backends and worker counts for
the same seed.

With ``ParallelSettings.batch_ticks > 1`` the loop is **pipelined**:
the parent dispatches a batch of K tick commands in one round-trip,
workers run them back-to-back while staying hot and stream one result
per tick, and the parent merges finished ticks while later ones still
compute.  Results are released to the merger in stable ``(tick,
shard)`` order via a :class:`~repro.parallel.merge.CompletionBuffer`,
and batches flush at classifier-retrain boundaries, so batched runs
stay byte-identical to ``batch_ticks=1`` runs too.  Cross-database services stay at the parent, where they
see the same merged state at the same virtual time in every backend:
the alert watchdog evaluates over the merged registry, and the
low-impact classifier retrains on the merged validation history (the
new state is broadcast to workers with the *next* tick command).
"""

from __future__ import annotations

import collections
import time
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.clock import HOURS, SimClock
from repro.controlplane import (
    AutoIndexingConfig,
    ControlPlaneSettings,
)
from repro.controlplane.control_plane import Incident
from repro.controlplane.events import EventBus
from repro.controlplane.store import StateStore
from repro.engine.engine import EngineSettings
from repro.observability import AlertWatchdog, Telemetry
from repro.observability.alerts import default_rules
from repro.observability.profiling import Profiler
from repro.observability.slo import burn_alert_rules
from repro.observability.timeseries import SAMPLE_CATALOG, TelemetryHistory
from repro.observability.trace_export import (
    TraceEvent,
    attribution_summary,
    history_counter_events,
    span_trace_events,
)
from repro.recommender import MiRecommenderSettings
from repro.recommender.classifier import (
    LowImpactClassifier,
    examples_from_history,
)
from repro.recommender.policy import RecommenderPolicy
from repro.service import ServiceSettings
from repro.parallel.merge import CompletionBuffer, DeterministicMerger
from repro.parallel.pool import make_pool
from repro.parallel.settings import ParallelSettings
from repro.parallel.spec import (
    SharedSettings,
    database_specs,
    shard_payloads,
)
from repro.parallel.timing import (
    PARENT_PHASES,
    PHASE_BOUNDS,
    TickPhaseTimer,
    rebase_span_ops,
)
from repro.validation import ValidationSettings

#: Per-tick wall times kept in memory for p95 derivation.  Long runs
#: used to grow ``tick_wall_seconds`` without bound; the ring buffer
#: keeps the recent window while ``tick_wall_total``/``ticks_completed``
#: and the ``fleet_tick_wall_seconds`` histogram carry whole-run truth.
TICK_WALL_WINDOW = 4096


class ShardedFleetService:
    """One region's auto-indexing service, executed shard-parallel."""

    def __init__(
        self,
        n_databases: int,
        tier: str = "standard",
        seed: int = 0,
        parallel: Optional[ParallelSettings] = None,
        service_settings: Optional[ServiceSettings] = None,
        control_settings: Optional[ControlPlaneSettings] = None,
        validation_settings: Optional[ValidationSettings] = None,
        policy: Optional[RecommenderPolicy] = None,
        mi_settings: Optional[MiRecommenderSettings] = None,
        engine_settings: Optional[EngineSettings] = None,
        default_config: Optional[AutoIndexingConfig] = None,
        fault_seed: int = 0,
        name_prefix: str = "db",
    ) -> None:
        self.parallel = parallel or ParallelSettings()
        self.settings = service_settings or ServiceSettings()
        self.clock = SimClock()
        # Region-level merged state: same shapes the serial service's
        # control plane exposes, so reporting/CLI code reads either.
        self.telemetry = Telemetry()
        self.store = StateStore()
        self.events = EventBus(metrics=self.telemetry.registry)
        self.incidents: List[Incident] = []
        self.validation_history: List[dict] = []
        self.classifier = LowImpactClassifier()
        #: Fleet telemetry history: sampled at the post-merge point of
        #: every tick, over merged virtual-time state only, so runs stay
        #: byte-identical across backends with sampling enabled.
        self.history = (
            TelemetryHistory() if self.parallel.history else None
        )
        rules = default_rules()
        if self.history is not None:
            rules += burn_alert_rules(self.history.store)
        self.watchdog = AlertWatchdog(
            self.telemetry.registry, audit=self.telemetry.audit, rules=rules
        )
        #: Region-level hot-path aggregate, merged from worker profilers
        #: in stable db order each tick (``repro profile`` ranks these).
        self.profiler = Profiler()
        self.merger = DeterministicMerger(
            store=self.store,
            audit=self.telemetry.audit,
            registry=self.telemetry.registry,
            recorder=self.telemetry.recorder,
            bus=self.events,
            incidents=self.incidents,
            validation_history=self.validation_history,
            profiler=self.profiler,
        )
        self.specs = database_specs(
            n_databases,
            tier=tier,
            seed=seed,
            name_prefix=name_prefix,
            fault_seed=fault_seed,
            config=default_config,
        )
        self.database_names = [spec.name for spec in self.specs]
        shared = SharedSettings(
            control_settings=control_settings,
            validation_settings=validation_settings,
            mi_settings=mi_settings,
            policy=policy,
            engine_settings=engine_settings,
            instrument=self.parallel.instrument,
        )
        self.payloads = shard_payloads(
            self.specs, self.parallel.effective_workers, shared
        )
        self.backend = self.parallel.effective_backend
        #: One timer for the whole service: the pool brackets
        #: dispatch/wait on it, ``_tick`` brackets build/merge/finalize.
        self.phase_timer = TickPhaseTimer(
            registry=self.telemetry.registry,
            enabled=self.parallel.instrument,
        )
        self.pool = make_pool(
            self.backend,
            self.payloads,
            mp_context=self.parallel.mp_context,
            timer=self.phase_timer,
        )
        self._closed = False
        # The pool has live worker processes from here on: any failure
        # in the rest of construction must reap them, or ``close()``
        # semantics never get a chance to hold.
        try:
            self._finish_init()
        except BaseException:
            self.close()
            raise

    def _finish_init(self) -> None:
        """Construction after the pool exists (reaped on failure)."""
        #: Database name -> export track (1 + shard index): spans from a
        #: database render on the worker track that executed it.
        self._db_track = {
            spec.name: payload.shard_index + 1
            for payload in self.payloads
            for spec in payload.databases
        }
        self._shard_indices = [payload.shard_index for payload in self.payloads]
        registry = self.telemetry.registry
        registry.gauge("fleet_databases").set(len(self.specs))
        registry.gauge("fleet_workers").set(len(self.payloads))
        #: Cumulative busy seconds keyed by shard index (results arrive
        #: in completion order under pipelining, so positional indexing
        #: would misattribute).
        self._shard_busy: Dict[int, float] = {
            index: 0.0 for index in self._shard_indices
        }
        #: Recent per-tick wall-clock seconds (dispatch + merge); the
        #: fleet benchmark derives p95 tick latency from this window.
        self.tick_wall_seconds: Deque[float] = collections.deque(
            maxlen=TICK_WALL_WINDOW
        )
        #: Whole-run totals (the window above is capped).
        self.tick_wall_total = 0.0
        self.ticks_completed = 0
        self._pending_classifier_state: Optional[dict] = None
        self._last_retrain = 0.0
        #: ``(wall_ts, {series: value})`` per sampled tick, for the
        #: Perfetto counter tracks (wall clocks live only here and in
        #: the wall-flagged series — never in the audit stream).
        self._counter_samples: Deque[Tuple[float, Dict[str, float]]] = (
            collections.deque(maxlen=TICK_WALL_WINDOW)
        )

    # ------------------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the closed loop by ``hours`` of virtual time.

        Tick ends are planned up front and dispatched in batches of up
        to ``ParallelSettings.batch_ticks`` per pool round-trip; each
        batch is flushed at classifier-retrain boundaries so broadcast
        state lands at the same virtual time a one-tick run applies it.
        """
        ends: List[float] = []
        now = self.clock.now
        remaining = hours
        while remaining > 0:
            step = min(self.settings.step_hours, remaining)
            now = now + step * HOURS
            ends.append(now)
            remaining -= step
        cursor = 0
        while cursor < len(ends):
            batch = self._plan_batch(ends[cursor:])
            self._run_batch(batch)
            cursor += len(batch)

    def _plan_batch(self, ends: Sequence[float]) -> List[float]:
        """Up to ``batch_ticks`` tick ends, cut at a retrain boundary.

        The classifier retrain check fires on virtual time alone
        (``end - _last_retrain >= retrain period``), so the boundary is
        predictable at planning time: the batch ends *with* the first
        tick whose finalize will run the check.  Any state the retrain
        broadcasts then rides the next batch's dispatch — the exact
        "new model at the next tick" semantics of the serial loop.
        """
        period = self.settings.classifier_retrain_hours * HOURS
        batch: List[float] = []
        for end in ends[: self.parallel.batch_ticks]:
            batch.append(end)
            if end - self._last_retrain >= period:
                break
        return batch

    def _run_batch(self, ends: Sequence[float]) -> None:
        """Dispatch one batch of ticks; overlap merging with compute.

        The pool streams ShardResults in completion order; arrivals are
        parked in a :class:`CompletionBuffer` and each tick is merged —
        in stable ``(tick, shard)`` order — as soon as every shard has
        delivered it, while workers keep computing the batch's later
        ticks.  Per tick, the parent phases (build/dispatch on the
        batch's first tick, then wait/merge/finalize) still partition
        the loop body, which keeps the >= 95% attribution-coverage gate
        structurally achievable under pipelining.
        """
        timer = self.phase_timer
        registry = self.telemetry.registry
        buffer = CompletionBuffer(self._shard_indices, len(ends))
        #: shard index -> (shard-clock wall of its first arrival, that
        #: arrival's parent anchor).  Later ticks are anchored by the
        #: shard clock's own delta, so a batch renders back-to-back on
        #: its worker track instead of bunching at parent receipt times.
        bases: Dict[int, Tuple[float, float]] = {}
        stream = None
        for tick_index, end in enumerate(ends):
            tick_started = time.perf_counter()
            timer.begin_tick()
            if stream is None:
                with timer.phase("build"):
                    classifier_state = self._pending_classifier_state
                    self._pending_classifier_state = None
                    max_statements = self.settings.max_statements_per_step
                # The pool brackets "dispatch" here and each blocking
                # pull below as "wait", so IPC cost lands on whichever
                # tick the parent is currently assembling.
                stream = self.pool.tick_batch(
                    ends, max_statements, classifier_state
                )
            while not buffer.complete(tick_index):
                result = next(stream)
                received = timer.now()
                base_wall, base_anchor = bases.setdefault(
                    result.shard_index, (result.started_wall, received)
                )
                buffer.add(
                    result, base_anchor + (result.started_wall - base_wall)
                )
            with timer.phase("merge"):
                released = buffer.release(tick_index)
                registry.gauge("fleet_pipeline_buffered_results").set(
                    buffer.buffered
                )
                deltas = []
                for result, anchor in released:
                    timer.absorb_shard(result, anchor=anchor)
                    for delta in result.deltas:
                        if timer.enabled and delta.spans:
                            # Shift span wall clocks from the shard's
                            # perf_counter base onto the parent timeline
                            # so the export shares one epoch.  Sim-time
                            # fields are untouched — determinism is
                            # unaffected.
                            delta.spans = rebase_span_ops(
                                delta.spans, result.started_wall, anchor
                            )
                        deltas.append(delta)
                registry.gauge("fleet_merge_queue_depth").set(len(deltas))
                self.merger.merge(deltas)
            with timer.phase("finalize"):
                self._account_busy([result for result, _anchor in released])
                registry.counter("fleet_ticks_total").inc()
                self.clock.advance_to(end)
                # History samples the *merged* registry here — the
                # post-merge point, before the watchdog pass so SLO
                # burn-rate rules read a store including this tick.
                history_tick = None
                if self.history is not None:
                    history_tick = self.history.observe_tick(
                        registry, end, audit=self.telemetry.audit
                    )
                    if timer.enabled:
                        self._counter_samples.append(
                            (timer.now(), self._history_snapshot())
                        )
                self.watchdog.evaluate(end)
                self._maybe_retrain()
            wall = time.perf_counter() - tick_started
            timer.end_tick(wall)
            self._observe_tick_wall(wall)
            if self.history is not None and history_tick is not None:
                # Wall time is only known after end_tick; it lives in
                # the wall-flagged series, outside the anomaly/audit
                # path, so it cannot perturb determinism.
                self.history.observe_wall(history_tick, wall)

    def _history_snapshot(self) -> Dict[str, float]:
        """Latest non-wall history values, for the counter tracks."""
        store = self.history.store
        return {
            name: value
            for name in store.series_names()
            if not SAMPLE_CATALOG[name].wall
            for value in [store.latest(name)]
            if value is not None
        }

    def _account_busy(self, results) -> None:
        """Accumulate per-shard busy seconds keyed by ``shard_index``.

        Keyed by each result's own shard index — never by arrival
        position, which is meaningless once results stream home in
        completion order.
        """
        registry = self.telemetry.registry
        busy = []
        for result in results:
            index = result.shard_index
            self._shard_busy[index] += result.busy_seconds
            registry.gauge("fleet_shard_busy", shard=str(index)).set(
                self._shard_busy[index]
            )
            busy.append(result.busy_seconds)
        registry.gauge("fleet_tick_skew_seconds").set(
            max(busy) - min(busy) if busy else 0.0
        )

    def _observe_tick_wall(self, wall: float) -> None:
        """Record one tick's wall time: capped window + running totals."""
        self.tick_wall_seconds.append(wall)
        self.tick_wall_total += wall
        self.ticks_completed += 1
        self.telemetry.registry.histogram(
            "fleet_tick_wall_seconds", bounds=PHASE_BOUNDS
        ).observe(wall)

    def _maybe_retrain(self) -> None:
        now = self.clock.now
        if now - self._last_retrain < (
            self.settings.classifier_retrain_hours * HOURS
        ):
            return
        self._last_retrain = now
        examples = examples_from_history(self.validation_history)
        if self.classifier.fit(examples):
            # Broadcast with the next tick command so every backend
            # applies the new model at the same virtual time.
            self._pending_classifier_state = self.classifier.export_state()
            self.events.emit(
                now,
                "classifier_retrained",
                "<region>",
                examples=len(examples),
            )

    # ------------------------------------------------------------------

    @property
    def audit(self):
        """The merged decision-provenance stream."""
        return self.telemetry.audit

    def attribution(self) -> dict:
        """Where the wall-clock went: per-phase totals and coverage."""
        return attribution_summary(self.phase_timer.ticks, PARENT_PHASES)

    def trace_events(self) -> List[TraceEvent]:
        """Phase brackets, merged-span events, and history counter
        tracks for the trace export."""
        return (
            list(self.phase_timer.events)
            + span_trace_events(
                self.telemetry.recorder.spans(), self._db_track
            )
            + history_counter_events(self._counter_samples)
        )

    def track_names(self) -> dict:
        """Export track index -> human-readable label."""
        names = {0: "control plane (parent)"}
        for payload in self.payloads:
            names[payload.shard_index + 1] = (
                f"shard-{payload.shard_index} "
                f"({len(payload.databases)} db, {self.backend})"
            )
        return names

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "ShardedFleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_fleet_service(
    n_databases: int,
    workers: int = 0,
    backend: str = "auto",
    instrument: bool = True,
    batch_ticks: int = 1,
    history: bool = True,
    **kwargs,
) -> ShardedFleetService:
    """Convenience constructor mirroring :func:`repro.service.build_service`."""
    parallel = ParallelSettings(
        workers=workers,
        backend=backend,
        instrument=instrument,
        batch_ticks=batch_ticks,
        history=history,
    )
    return ShardedFleetService(n_databases, parallel=parallel, **kwargs)
