"""Per-database tick deltas and mergeable registry snapshots.

A :class:`TickDelta` is everything one database produced during one
virtual-time tick, in emission order: state-store journal entries, audit
events, span operations, event-bus events, metric deltas, validation
history, and incidents.  Deltas are picklable (they cross the process
pipe) and *positional* — all ids inside are the worker plane's local
ids, remapped to global ids by the merger.

Metric deltas are snapshot diffs: counters and gauges carry a value
delta (gauges may go down), histograms carry per-bucket count deltas
plus sum/count/min/max.  Applying a delta is commutative across
databases for counters/histograms and exact for gauges because every
shared (unlabeled-by-database) gauge in the taxonomy is maintained by
inc/dec, which sums correctly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.controlplane.control_plane import Incident
from repro.controlplane.events import Event
from repro.controlplane.store import JournalEntry
from repro.errors import TelemetryError
from repro.observability.audit import AuditEvent
from repro.observability.metrics import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Snapshot / diff key: (metric name, kind, ((label, value), ...)).
SeriesKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


@dataclasses.dataclass
class TickDelta:
    """Everything one database emitted during one tick."""

    database: str
    #: Journal entries with the worker plane's local seq / rec_id.
    journal: List[JournalEntry]
    #: Audit events with local seq / parent_seq / rec_id.
    audit: List[AuditEvent]
    #: Span operations from the worker's recording tracer:
    #: ("start", span_id, kind, database, at, parent_id, attributes) or
    #: ("end", span_id, at, outcome, attributes).
    spans: List[tuple]
    #: Event-bus events (payloads may carry a local ``rec_id``).
    bus: List[Event]
    #: Registry snapshot diff (see :func:`diff_snapshots`).
    metrics: Dict[SeriesKey, object]
    #: New validation-history entries (classifier training data).
    validation_history: List[dict]
    #: New incidents (``rec_id`` is local).
    incidents: List[Incident]
    #: Drained hot-path profiler rows ``(name, calls, real_seconds,
    #: sim_ms)`` in name order — this database's engine work this tick.
    #: Merged (in the same stable db order as everything else) into the
    #: region-level profiler so shard-side work is visible at the parent.
    hot_paths: List[tuple] = dataclasses.field(default_factory=list)


# ----------------------------------------------------------------------
# Registry snapshots


def registry_snapshot(registry: MetricsRegistry) -> Dict[SeriesKey, object]:
    """Immutable value snapshot of every series in ``registry``."""
    snap: Dict[SeriesKey, object] = {}
    for series in registry.all_series():
        key = (series.name, series.kind, series.labels)
        metric = series.metric
        if isinstance(metric, (Counter, Gauge)):
            snap[key] = metric.value
        else:
            assert isinstance(metric, Histogram)
            snap[key] = (
                metric.bounds,
                tuple(metric.bucket_counts),
                metric.overflow,
                metric.count,
                metric.sum,
                metric.min,
                metric.max,
            )
    return snap


def diff_snapshots(
    old: Dict[SeriesKey, object], new: Dict[SeriesKey, object]
) -> Dict[SeriesKey, object]:
    """What changed between two snapshots of the *same* registry.

    Series new to ``new`` are always included (even at value 0.0) so the
    merged registry materializes the same series set a serial run would.
    """
    diff: Dict[SeriesKey, object] = {}
    for key, value in new.items():
        previous = old.get(key)
        name, kind, _labels = key
        if kind in ("counter", "gauge"):
            base = previous if previous is not None else 0.0
            delta = value - base
            if previous is None or delta != 0.0:
                diff[key] = delta
        else:
            bounds, buckets, overflow, count, total, vmin, vmax = value
            if previous is None:
                diff[key] = value
                continue
            (_b, pbuckets, poverflow, pcount, ptotal, _pmin, _pmax) = previous
            if count == pcount:
                continue
            diff[key] = (
                bounds,
                tuple(b - pb for b, pb in zip(buckets, pbuckets)),
                overflow - poverflow,
                count - pcount,
                total - ptotal,
                vmin,
                vmax,
            )
    return diff


def apply_metric_diff(
    registry: MetricsRegistry, diff: Dict[SeriesKey, object]
) -> None:
    """Apply a snapshot diff to ``registry`` in sorted series order.

    Every name replayed through the merge must be declared in the
    metrics ``CATALOG`` — this is the runtime half of the
    ``check_observability_names`` lint: worker-side call sites are
    linted statically, and anything that still reaches the merge with an
    uncataloged name (e.g. a dynamically built ``fleet_*`` name) fails
    here.
    """
    for key in sorted(diff):
        name, kind, labels_key = key
        if name not in CATALOG:
            raise TelemetryError(
                f"merged metric {name!r} is not in the CATALOG taxonomy "
                "(src/repro/observability/metrics.py)"
            )
        labels = dict(labels_key)
        value = diff[key]
        # These names are dynamic by design: they replay worker-side call
        # sites that were themselves lint-checked as literals.
        if kind == "counter":
            registry.counter(name, **labels).inc(value)  # observability-names: allow-dynamic
        elif kind == "gauge":
            registry.gauge(name, **labels).inc(value)  # observability-names: allow-dynamic
        else:
            bounds, buckets, overflow, count, total, vmin, vmax = value
            histogram = registry.histogram(name, bounds=bounds, **labels)  # observability-names: allow-dynamic
            if histogram.bounds != bounds:
                raise TelemetryError(
                    f"histogram {name!r} bounds differ between worker "
                    "and merged registries"
                )
            for i, bucket in enumerate(buckets):
                histogram.bucket_counts[i] += bucket
            histogram.overflow += overflow
            histogram.count += count
            histogram.sum += total
            histogram.min = min(histogram.min, vmin)
            histogram.max = max(histogram.max, vmax)


def remap_payload_rec_id(
    payload: dict, mapping: Dict[Tuple[str, int], int], database: str
) -> dict:
    """Copy ``payload`` with a local ``rec_id`` value remapped to global."""
    local = payload.get("rec_id")
    if local is None:
        return payload
    mapped = mapping.get((database, local))
    if mapped is None:
        return payload
    fixed = dict(payload)
    fixed["rec_id"] = mapped
    return fixed
