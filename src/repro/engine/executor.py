"""Plan execution with actual-cost metering.

The executor interprets plan trees against real table data, counting the
pages and rows it genuinely touches.  The resulting
:class:`ExecutionMetrics` — CPU time, logical reads, duration — are what
Query Store records and what the paper's validator compares before/after
an index change.  Estimated and actual costs are produced by *independent*
mechanisms (histogram formulas vs. real pages), so optimizer mistakes have
observable consequences.

Row streams between operators are dictionaries keyed by column name; scans
evaluate residual predicates on raw tuples first and only build the
dictionary for qualifying rows.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.btree import PageMeter
from repro.engine.cost_model import ExecutionCostSettings
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    ClusteredSeekNode,
    DeletePlanNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    IndexSeekNode,
    InsertPlanNode,
    KeyLookupNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
    UpdatePlanNode,
)
from repro.engine.query import (
    AggFunc,
    DeleteQuery,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.engine.table import Table
from repro.engine.types import sort_key
from repro.errors import ExecutionError

RowDict = Dict[str, object]


@dataclasses.dataclass
class ExecutionMetrics:
    """Actual resource consumption of one statement execution."""

    cpu_time_ms: float = 0.0
    duration_ms: float = 0.0
    logical_reads: int = 0
    rows_returned: int = 0

    def scaled(self, factor: float) -> "ExecutionMetrics":
        return ExecutionMetrics(
            cpu_time_ms=self.cpu_time_ms * factor,
            duration_ms=self.duration_ms * factor,
            logical_reads=int(self.logical_reads * factor),
            rows_returned=self.rows_returned,
        )


class _Meterings:
    """Accumulates raw work counters during one execution."""

    def __init__(self) -> None:
        self.page_meter = PageMeter()
        self.rows_processed = 0
        self.sort_rows = 0
        self.hash_rows = 0
        self.maintained_entries = 0
        #: Per-table column subset that row dictionaries must carry; None
        #: means all columns (DML paths need full rows).
        self.needed: Optional[Dict[str, Tuple[str, ...]]] = None

    def columns_for(self, table: Table) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        """(names, positions) of the columns to materialize for a table."""
        schema = table.schema
        if self.needed is None or table.name not in self.needed:
            names = tuple(schema.column_names)
            return names, tuple(range(len(names)))
        names = self.needed[table.name]
        return names, tuple(schema.position(name) for name in names)


class Executor:
    """Executes plans against tables, producing rows and actual metrics."""

    def __init__(
        self,
        tables: Dict[str, Table],
        settings: Optional[ExecutionCostSettings] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._tables = tables
        self._settings = settings or ExecutionCostSettings()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------

    def execute(
        self, plan: PlanNode, query
    ) -> Tuple[List[RowDict], ExecutionMetrics]:
        """Run the plan; return projected output rows and actual metrics."""
        meters = _Meterings()
        meters.needed = self._needed_columns(query)
        if isinstance(plan, InsertPlanNode):
            rows = self._execute_insert(plan, query, meters)
        elif isinstance(plan, UpdatePlanNode):
            rows = self._execute_update(plan, query, meters)
        elif isinstance(plan, DeletePlanNode):
            rows = self._execute_delete(plan, query, meters)
        else:
            rows = self._project(list(self._iterate(plan, meters)), query)
        metrics = self._finalize_metrics(meters, len(rows))
        return rows, metrics

    def _needed_columns(self, query) -> Optional[Dict[str, Tuple[str, ...]]]:
        """Column subsets the row stream must carry, per table.

        SELECT streams only need referenced columns plus the primary key
        (for key lookups); DML needs full rows and returns None.
        """
        if not isinstance(query, SelectQuery):
            return None
        table = self._tables.get(query.table)
        if table is None:
            return None
        names = dict.fromkeys(query.referenced_columns())
        for pk_column in table.schema.primary_key:
            names.setdefault(pk_column)
        needed = {query.table: tuple(names)}
        if query.join is not None:
            right = self._tables.get(query.join.table)
            if right is not None:
                right_names = dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
                for pk_column in right.schema.primary_key:
                    right_names.setdefault(pk_column)
                needed[query.join.table] = tuple(right_names)
        return needed

    def _finalize_metrics(
        self, meters: _Meterings, rows_returned: int
    ) -> ExecutionMetrics:
        s = self._settings
        pages = meters.page_meter.pages
        cpu = (
            meters.rows_processed * s.cpu_ms_per_row
            + pages * s.cpu_ms_per_page
            + meters.sort_rows * s.cpu_ms_per_sort_row
            + meters.hash_rows * s.cpu_ms_per_hash_row
            + meters.maintained_entries * s.cpu_ms_per_maintained_entry
        )
        if s.noise_sigma > 0:
            cpu *= math.exp(self._rng.normal(0.0, s.noise_sigma))
        duration = cpu + pages * s.io_wait_ms_per_page
        if s.noise_sigma > 0:
            duration *= math.exp(self._rng.normal(0.0, 2.5 * s.noise_sigma))
        return ExecutionMetrics(
            cpu_time_ms=cpu,
            duration_ms=duration,
            logical_reads=pages,
            rows_returned=rows_returned,
        )

    # ------------------------------------------------------------------
    # Row-stream interpretation

    def _iterate(
        self,
        node: PlanNode,
        meters: _Meterings,
        binding: Optional[object] = None,
    ) -> Iterator[RowDict]:
        if isinstance(node, ClusteredScanNode):
            yield from self._iter_clustered_scan(node, meters)
        elif isinstance(node, ClusteredSeekNode):
            yield from self._iter_clustered_seek(node, meters, binding)
        elif isinstance(node, IndexSeekNode):
            yield from self._iter_index_seek(node, meters, binding)
        elif isinstance(node, IndexScanNode):
            yield from self._iter_index_scan(node, meters)
        elif isinstance(node, KeyLookupNode):
            yield from self._iter_key_lookup(node, meters, binding)
        elif isinstance(node, SortNode):
            yield from self._iter_sort(node, meters)
        elif isinstance(node, TopNode):
            yield from self._iter_top(node, meters)
        elif isinstance(node, (StreamAggregateNode, HashAggregateNode)):
            yield from self._iter_aggregate(node, meters)
        elif isinstance(node, NestedLoopJoinNode):
            yield from self._iter_nl_join(node, meters)
        elif isinstance(node, HashJoinNode):
            yield from self._iter_hash_join(node, meters)
        else:
            raise ExecutionError(f"cannot execute node {type(node).__name__}")

    def _table(self, name: str) -> Table:
        return self._tables[name]

    def _iter_clustered_scan(
        self, node: ClusteredScanNode, meters: _Meterings
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        checks = _compile_predicates(node.residual, schema)
        names, positions = meters.columns_for(table)
        columns = tuple(zip(names, positions))
        processed = 0
        try:
            for _key, row in table.clustered.scan(meter=meters.page_meter):
                processed += 1
                for check in checks:
                    if not check(row):
                        break
                else:
                    yield {name: row[pos] for name, pos in columns}
        finally:
            meters.rows_processed += processed

    def _iter_clustered_seek(
        self,
        node: ClusteredSeekNode,
        meters: _Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        names, positions = meters.columns_for(table)
        checks = _compile_predicates(node.residual, schema)
        entries = _seek_entries(
            table.clustered,
            node.eq_predicates,
            node.range_predicate,
            meters,
            binding,
        )
        for _key, row in entries:
            meters.rows_processed += 1
            if all(check(row) for check in checks):
                yield {name: row[pos] for name, pos in zip(names, positions)}

    def _index_entry_layout(self, table: Table, definition):
        """Column -> (in_key, position) map for an index's (key, payload)."""
        key_len = len(definition.key_columns)
        sources: Dict[str, Tuple[bool, int]] = {}
        for i, column in enumerate(definition.key_columns):
            sources[column] = (True, i)
        for i, column in enumerate(table.schema.primary_key):
            sources.setdefault(column, (True, key_len + i))
        for i, column in enumerate(definition.included_columns):
            sources.setdefault(column, (False, i))
        return sources

    def _iter_index_entries(
        self, node, meters: _Meterings, entries
    ) -> Iterator[RowDict]:
        """Shared seek/scan entry pipeline: residual-check raw entries,
        then materialize only the needed columns."""
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        sources = self._index_entry_layout(table, index.definition)
        names, _positions = meters.columns_for(table)
        out_columns = [
            (name,) + sources[name] for name in names if name in sources
        ]
        checks = _compile_entry_predicates(
            node.residual, sources, table.schema
        )
        processed = 0
        try:
            for key, payload in entries:
                processed += 1
                for check in checks:
                    if not check(key, payload):
                        break
                else:
                    yield {
                        name: (key[i] if in_key else payload[i])
                        for name, in_key, i in out_columns
                    }
        finally:
            meters.rows_processed += processed

    def _iter_index_seek(
        self,
        node: IndexSeekNode,
        meters: _Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        entries = _seek_entries(
            index.tree, node.eq_predicates, node.range_predicate, meters, binding
        )
        return self._iter_index_entries(node, meters, entries)

    def _iter_index_scan(
        self, node: IndexScanNode, meters: _Meterings
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        entries = index.tree.scan(meter=meters.page_meter)
        return self._iter_index_entries(node, meters, entries)

    def _iter_key_lookup(
        self,
        node: KeyLookupNode,
        meters: _Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        names, positions = meters.columns_for(table)
        pk = schema.primary_key
        checks = _compile_predicates(node.residual, schema)
        for partial in self._iterate(node.child, meters, binding):
            pk_values = tuple(partial[column] for column in pk)
            row = table.fetch_by_pk(pk_values, meter=meters.page_meter)
            if row is None:
                continue
            meters.rows_processed += 1
            if all(check(row) for check in checks):
                yield {name: row[pos] for name, pos in zip(names, positions)}

    def _iter_sort(self, node: SortNode, meters: _Meterings) -> Iterator[RowDict]:
        rows = list(self._iterate(node.child, meters))
        meters.sort_rows += max(
            0, int(len(rows) * math.log2(len(rows) + 1))
        )
        for item in reversed(node.order_by):
            rows.sort(
                key=lambda r: sort_key(r.get(item.column)),
                reverse=not item.ascending,
            )
        yield from rows

    def _iter_top(self, node: TopNode, meters: _Meterings) -> Iterator[RowDict]:
        produced = 0
        for row in self._iterate(node.child, meters):
            if produced >= node.limit:
                return
            produced += 1
            yield row

    def _iter_aggregate(self, node, meters: _Meterings) -> Iterator[RowDict]:
        hashed = isinstance(node, HashAggregateNode)
        group_by = node.group_by
        groups: Dict[tuple, List[RowDict]] = {}
        order: List[tuple] = []
        hash_rows = 0
        for row in self._iterate(node.child, meters):
            hash_rows += 1
            key = tuple(row[column] for column in group_by)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if hashed:
            meters.hash_rows += hash_rows
        if not groups and not node.group_by:
            groups[()] = []
            order.append(())
        for key in order:
            members = groups[key]
            out: RowDict = dict(zip(node.group_by, key))
            for aggregate in node.aggregates:
                out[aggregate.label()] = _compute_aggregate(aggregate, members)
            yield out

    def _iter_nl_join(
        self, node: NestedLoopJoinNode, meters: _Meterings
    ) -> Iterator[RowDict]:
        join = node.join
        for outer_row in self._iterate(node.outer, meters):
            bind_value = outer_row.get(join.left_column)
            if bind_value is None:
                continue
            for inner_row in self._iterate(node.inner, meters, binding=bind_value):
                yield {**inner_row, **outer_row}

    def _iter_hash_join(
        self, node: HashJoinNode, meters: _Meterings
    ) -> Iterator[RowDict]:
        join = node.join
        build: Dict[object, List[RowDict]] = {}
        for inner_row in self._iterate(node.inner, meters):
            meters.hash_rows += 1
            build.setdefault(inner_row.get(join.right_column), []).append(inner_row)
        for outer_row in self._iterate(node.outer, meters):
            meters.hash_rows += 1
            value = outer_row.get(join.left_column)
            if value is None:
                continue
            for inner_row in build.get(value, ()):
                yield {**inner_row, **outer_row}

    # ------------------------------------------------------------------
    # Projection

    def _project(self, rows: List[RowDict], query) -> List[RowDict]:
        if not isinstance(query, SelectQuery):
            return rows
        if query.is_aggregate:
            return rows  # aggregate operators already shaped the output
        columns = list(query.select_columns)
        if query.join is not None:
            columns.extend(query.join.select_columns)
        if not columns:
            return rows
        return [
            {column: row.get(column) for column in columns} for row in rows
        ]

    # ------------------------------------------------------------------
    # DML

    def _execute_insert(
        self, plan: InsertPlanNode, query: InsertQuery, meters: _Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        for row in query.rows:
            table.insert(row, meter=meters.page_meter)
            meters.maintained_entries += 1 + len(table.indexes)
            meters.rows_processed += 1
        return []

    def _collect_target_rows(
        self, child: PlanNode, table: Table, meters: _Meterings
    ) -> List[tuple]:
        names = table.schema.column_names
        rows = []
        for row_map in self._iterate(child, meters):
            rows.append(tuple(row_map[name] for name in names))
        return rows

    def _execute_update(
        self, plan: UpdatePlanNode, query: UpdateQuery, meters: _Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        targets = self._collect_target_rows(plan.child, table, meters)
        affected = [
            name
            for name, index in table.indexes.items()
            if index.touches_columns(query.assigned_columns)
        ]
        for row in targets:
            table.update_row(row, query.assignments, meter=meters.page_meter)
            meters.maintained_entries += 1 + 2 * len(affected)
            meters.rows_processed += 1
        return []

    def _execute_delete(
        self, plan: DeletePlanNode, query: DeleteQuery, meters: _Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        targets = self._collect_target_rows(plan.child, table, meters)
        for row in targets:
            table.delete_row(row, meter=meters.page_meter)
            meters.maintained_entries += 1 + len(table.indexes)
            meters.rows_processed += 1
        return []


# ----------------------------------------------------------------------
# Helpers


def _compile_entry_predicates(predicates, sources, schema):
    """Compile predicates into checks over raw (key, payload) entries."""
    checks = []
    for predicate in predicates:
        in_key, i = sources[predicate.column]
        sql_type = schema.column(predicate.column).sql_type
        v = sql_type.coerce(predicate.value)
        v2 = (
            sql_type.coerce(predicate.value2)
            if predicate.op is Op.BETWEEN
            else None
        )
        op = predicate.op

        def check(key, payload, in_key=in_key, i=i, op=op, v=v, v2=v2):
            value = key[i] if in_key else payload[i]
            if value is None:
                return False
            if op is Op.EQ:
                return value == v
            if op is Op.NEQ:
                return value != v
            if op is Op.LT:
                return value < v
            if op is Op.LE:
                return value <= v
            if op is Op.GT:
                return value > v
            if op is Op.GE:
                return value >= v
            return v <= value <= v2

        checks.append(check)
    return checks


def _compile_predicates(predicates, schema):
    """Compile predicates into specialized row-tuple checks.

    Values are coerced to the column type once here, so the per-row
    closures can use native comparisons without type guards (SQL NULL is
    the only special case: it never matches).
    """
    checks = []
    for predicate in predicates:
        i = schema.position(predicate.column)
        sql_type = schema.column(predicate.column).sql_type
        op = predicate.op
        v = sql_type.coerce(predicate.value)
        if op is Op.EQ:
            checks.append(lambda row, i=i, v=v: row[i] == v and v is not None)
        elif op is Op.NEQ:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] != v
            )
        elif op is Op.LT:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] < v
            )
        elif op is Op.LE:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] <= v
            )
        elif op is Op.GT:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] > v
            )
        elif op is Op.GE:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] >= v
            )
        elif op is Op.BETWEEN:
            v2 = sql_type.coerce(predicate.value2)
            checks.append(
                lambda row, i=i, v=v, v2=v2: row[i] is not None
                and v <= row[i] <= v2
            )
        else:  # pragma: no cover - exhaustive over Op
            checks.append(lambda row, p=predicate, i=i: p.matches(row[i]))
    return checks


def _bind(value: object, binding: Optional[object]) -> object:
    if value is PARAM:
        if binding is None:
            raise ExecutionError("unbound join parameter in seek predicate")
        return binding
    return value


def _seek_entries(
    tree,
    eq_predicates: Tuple[Predicate, ...],
    range_predicate: Optional[Predicate],
    meters: _Meterings,
    binding: Optional[object],
):
    """Iterate index entries matching an equality prefix + optional range."""
    prefix = tuple(_bind(p.value, binding) for p in eq_predicates)
    if range_predicate is None:
        if not prefix:
            return tree.scan(meter=meters.page_meter)
        return tree.seek_prefix(prefix, meter=meters.page_meter)
    low, high, low_inc, high_inc = range_predicate.range_bounds()
    low_key = prefix + ((_bind(low, binding),) if low is not None else ())
    high_key = prefix + ((_bind(high, binding),) if high is not None else ())
    return tree.range_scan(
        low=low_key if (low is not None or prefix) else None,
        high=high_key if (high is not None or prefix) else None,
        low_inclusive=low_inc if low is not None else True,
        high_inclusive=high_inc if high is not None else True,
        meter=meters.page_meter,
    )


def stable_sum(values):
    """Order-independent sum: exact ``math.fsum`` whenever floats appear.

    Different access paths feed aggregation in different row orders
    (index order vs heap order), and naive float addition is not
    associative — plans would return different SUM/AVG bits for the same
    data.  ``fsum`` is exactly rounded, so every ordering agrees.
    All-integer inputs keep ``sum()`` to preserve the ``int`` result type.
    """
    if any(isinstance(v, float) for v in values):
        return math.fsum(values)
    return sum(values)


def _compute_aggregate(aggregate, rows: List[RowDict]):
    if aggregate.func is AggFunc.COUNT:
        if aggregate.column is None:
            return len(rows)
        return sum(1 for row in rows if row.get(aggregate.column) is not None)
    values = [
        row.get(aggregate.column)
        for row in rows
        if row.get(aggregate.column) is not None
    ]
    if not values:
        return None
    if aggregate.func is AggFunc.SUM:
        return stable_sum(values)
    if aggregate.func is AggFunc.AVG:
        return stable_sum(values) / len(values)
    if aggregate.func is AggFunc.MIN:
        return min(values, key=sort_key)
    if aggregate.func is AggFunc.MAX:
        return max(values, key=sort_key)
    raise ExecutionError(f"unhandled aggregate {aggregate.func}")
