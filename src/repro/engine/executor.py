"""Import shim: the executor now lives in :mod:`repro.engine.exec`.

The single module grew an interpreted and a vectorized execution path
and was split into a package (interpreter, vector ops, column cache,
dispatch).  This module keeps the historical import path working.
"""

from repro.engine.exec import (  # noqa: F401
    ColumnarCache,
    ExecutionMetrics,
    Executor,
    InterpExecutor,
    Meterings,
    VectorUnsupported,
    aggregate_values,
    compute_aggregate,
    resolve_executor_mode,
    sort_meter_rows,
    stable_sum,
)

__all__ = [
    "ColumnarCache",
    "ExecutionMetrics",
    "Executor",
    "InterpExecutor",
    "Meterings",
    "VectorUnsupported",
    "aggregate_values",
    "compute_aggregate",
    "resolve_executor_mode",
    "sort_meter_rows",
    "stable_sum",
]
