"""Physical plan operators.

Plans are immutable trees produced by the optimizer and interpreted by the
executor.  Each node carries the optimizer's row and cost estimates so the
recommenders can reason about them, and each plan exposes:

- ``signature()`` — a stable structural string; its hash is the plan id
  Query Store tracks (the validator's "did the plan change?" check);
- ``referenced_indexes()`` — the secondary indexes the plan touches, which
  the validator uses to scope before/after comparisons to queries whose
  plan actually uses the new index (Section 6).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.engine.query import Aggregate, JoinSpec, OrderItem, Predicate
from repro.rng import stable_hash


class _ParamMarker:
    """Sentinel for a join-parameterized predicate value."""

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return "<PARAM>"


#: Placeholder value inside an inner-side seek predicate of a nested-loop
#: join; the executor substitutes the outer row's join value.
PARAM = _ParamMarker()


@dataclasses.dataclass(frozen=True)
class PlanNode:
    """Base class: estimated output rows and estimated total subtree cost."""

    est_rows: float
    est_cost: float

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def signature(self) -> str:
        raise NotImplementedError

    def referenced_indexes(self) -> Tuple[str, ...]:
        names: List[str] = []
        for child in self.children():
            names.extend(child.referenced_indexes())
        return tuple(dict.fromkeys(names))

    def plan_id(self) -> int:
        return stable_hash("plan", self.signature())

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# Access paths


@dataclasses.dataclass(frozen=True)
class ClusteredScanNode(PlanNode):
    """Full scan of the clustered index with residual predicates."""

    table: str = ""
    residual: Tuple[Predicate, ...] = ()

    def signature(self) -> str:
        return f"ClusteredScan[{self.table}]"


@dataclasses.dataclass(frozen=True)
class ClusteredSeekNode(PlanNode):
    """Seek on a primary-key prefix of the clustered index."""

    table: str = ""
    eq_predicates: Tuple[Predicate, ...] = ()
    range_predicate: Optional[Predicate] = None
    residual: Tuple[Predicate, ...] = ()

    def signature(self) -> str:
        return f"ClusteredSeek[{self.table}]"


@dataclasses.dataclass(frozen=True)
class IndexSeekNode(PlanNode):
    """Seek on a secondary index: equality prefix + optional range."""

    table: str = ""
    index_name: str = ""
    eq_predicates: Tuple[Predicate, ...] = ()
    range_predicate: Optional[Predicate] = None
    #: Residual predicates evaluable from index columns alone.
    residual: Tuple[Predicate, ...] = ()
    #: True if the index supplies every column the query needs.
    covering: bool = True
    hypothetical: bool = False

    def signature(self) -> str:
        return f"IndexSeek[{self.index_name}]"

    def referenced_indexes(self) -> Tuple[str, ...]:
        return (self.index_name,)


@dataclasses.dataclass(frozen=True)
class IndexScanNode(PlanNode):
    """Leaf-level scan of a (narrower, covering) secondary index."""

    table: str = ""
    index_name: str = ""
    residual: Tuple[Predicate, ...] = ()
    hypothetical: bool = False

    def signature(self) -> str:
        return f"IndexScan[{self.index_name}]"

    def referenced_indexes(self) -> Tuple[str, ...]:
        return (self.index_name,)


@dataclasses.dataclass(frozen=True)
class KeyLookupNode(PlanNode):
    """Fetch full rows through the clustered index for a non-covering seek."""

    child: Optional[PlanNode] = None
    table: str = ""
    #: Predicates that need columns outside the child's index.
    residual: Tuple[Predicate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    def signature(self) -> str:
        inner = self.child.signature() if self.child is not None else "?"
        return f"{inner}->KeyLookup[{self.table}]"


# ----------------------------------------------------------------------
# Relational operators


@dataclasses.dataclass(frozen=True)
class SortNode(PlanNode):
    """Full sort of the child's output by the ORDER BY keys."""

    child: Optional[PlanNode] = None
    order_by: Tuple[OrderItem, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        keys = ",".join(
            item.column + ("" if item.ascending else " DESC")
            for item in self.order_by
        )
        return f"Sort({keys})<-{self.child.signature()}"


@dataclasses.dataclass(frozen=True)
class TopNode(PlanNode):
    """TOP N: stops consuming the child after ``limit`` rows."""

    child: Optional[PlanNode] = None
    limit: int = 0

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        return f"Top({self.limit})<-{self.child.signature()}"


@dataclasses.dataclass(frozen=True)
class StreamAggregateNode(PlanNode):
    """Aggregation over input already ordered by the group-by columns."""

    child: Optional[PlanNode] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        return f"StreamAgg({','.join(self.group_by)})<-{self.child.signature()}"


@dataclasses.dataclass(frozen=True)
class HashAggregateNode(PlanNode):
    """Hash aggregation for inputs with no useful ordering."""

    child: Optional[PlanNode] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        return f"HashAgg({','.join(self.group_by)})<-{self.child.signature()}"


@dataclasses.dataclass(frozen=True)
class NestedLoopJoinNode(PlanNode):
    """NLJ: for each outer row, execute the parameterized inner access.

    ``inner`` contains a seek predicate whose value is :data:`PARAM`; the
    executor binds it to the outer row's ``join.left_column`` value.
    """

    outer: Optional[PlanNode] = None
    inner: Optional[PlanNode] = None
    join: Optional[JoinSpec] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def signature(self) -> str:
        return (
            f"NLJoin({self.outer.signature()},{self.inner.signature()})"
        )


@dataclasses.dataclass(frozen=True)
class HashJoinNode(PlanNode):
    """Hash join: build on the inner (right) side, probe with the outer."""

    outer: Optional[PlanNode] = None
    inner: Optional[PlanNode] = None
    join: Optional[JoinSpec] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def signature(self) -> str:
        return (
            f"HashJoin({self.outer.signature()},{self.inner.signature()})"
        )


# ----------------------------------------------------------------------
# DML plans


@dataclasses.dataclass(frozen=True)
class InsertPlanNode(PlanNode):
    """INSERT: clustered write plus maintenance of every index."""

    table: str = ""
    row_count: int = 0
    maintained_indexes: Tuple[str, ...] = ()

    def signature(self) -> str:
        maintained = ",".join(sorted(self.maintained_indexes))
        return f"Insert[{self.table}|{maintained}]"

    def referenced_indexes(self) -> Tuple[str, ...]:
        return self.maintained_indexes


@dataclasses.dataclass(frozen=True)
class UpdatePlanNode(PlanNode):
    """UPDATE: locate rows via the child, maintain affected indexes."""

    child: Optional[PlanNode] = None
    table: str = ""
    assignments: Tuple[Tuple[str, object], ...] = ()
    maintained_indexes: Tuple[str, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        maintained = ",".join(sorted(self.maintained_indexes))
        return f"Update[{self.table}|{maintained}]<-{self.child.signature()}"

    def referenced_indexes(self) -> Tuple[str, ...]:
        child_refs = self.child.referenced_indexes() if self.child else ()
        return tuple(dict.fromkeys(child_refs + self.maintained_indexes))


@dataclasses.dataclass(frozen=True)
class DeletePlanNode(PlanNode):
    """DELETE: locate rows via the child, remove from every index."""

    child: Optional[PlanNode] = None
    table: str = ""
    maintained_indexes: Tuple[str, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def signature(self) -> str:
        maintained = ",".join(sorted(self.maintained_indexes))
        return f"Delete[{self.table}|{maintained}]<-{self.child.signature()}"

    def referenced_indexes(self) -> Tuple[str, ...]:
        child_refs = self.child.referenced_indexes() if self.child else ()
        return tuple(dict.fromkeys(child_refs + self.maintained_indexes))


def scan_leaf(plan: PlanNode) -> Optional[PlanNode]:
    """The full-scan leaf of a linear plan chain, if it ends in one.

    Follows single-``child`` links (Top, Sort, aggregates) down to the
    access path and returns it when it is a
    :class:`ClusteredScanNode`/:class:`IndexScanNode`; ``None`` for
    seeks, lookups, joins, and DML.  The vectorized executor uses this
    both to test plan eligibility and to find the table to project.
    """
    node: Optional[PlanNode] = plan
    while node is not None:
        if isinstance(node, (ClusteredScanNode, IndexScanNode)):
            return node
        node = getattr(node, "child", None)
    return None


def access_nodes(plan: PlanNode) -> List[PlanNode]:
    """All access-path nodes (scans/seeks) in a plan."""
    kinds = (
        ClusteredScanNode,
        ClusteredSeekNode,
        IndexSeekNode,
        IndexScanNode,
    )
    return [node for node in plan.walk() if isinstance(node, kinds)]


def uses_hypothetical(plan: PlanNode) -> bool:
    """True if any access path uses a hypothetical (what-if) index."""
    for node in plan.walk():
        if isinstance(node, (IndexSeekNode, IndexScanNode)) and node.hypothetical:
            return True
    return False
