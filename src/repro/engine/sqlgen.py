"""Render query ASTs to T-SQL-ish text.

Query Store persists query text (Section 3); the recommenders display it
and the mini parser can round-trip it.  Rendering is deterministic, so the
same template always yields the same normalized text.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.engine.query import (
    DeleteQuery,
    InsertQuery,
    JoinSpec,
    Op,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.engine.schema import TableSchema
from repro.engine.types import SqlType, type_for_value


def _literal(value: object, sql_type: Optional[SqlType] = None) -> str:
    if sql_type is None:
        sql_type = type_for_value(value) or SqlType.TEXT
    return sql_type.render(value)


def render_predicate(predicate: Predicate, alias: str = "") -> str:
    """Render one WHERE-clause predicate, optionally alias-qualified."""
    prefix = f"{alias}." if alias else ""
    column = f"{prefix}[{predicate.column}]"
    if predicate.op is Op.BETWEEN:
        return (
            f"{column} BETWEEN {_literal(predicate.value)} "
            f"AND {_literal(predicate.value2)}"
        )
    return f"{column} {predicate.op.value} {_literal(predicate.value)}"


def _render_where(predicates, alias: str = "") -> str:
    if not predicates:
        return ""
    clauses = " AND ".join(render_predicate(p, alias) for p in predicates)
    return f" WHERE {clauses}"


def _render_join(join: Optional[JoinSpec]) -> str:
    if join is None:
        return ""
    text = (
        f" INNER JOIN [{join.table}] AS r"
        f" ON t.[{join.left_column}] = r.[{join.right_column}]"
    )
    return text


def render_select(query: SelectQuery) -> str:
    """Render a SELECT statement."""
    items = []
    alias = "t" if query.join is not None else ""
    prefix = f"{alias}." if alias else ""
    for column in query.select_columns:
        items.append(f"{prefix}[{column}]")
    if query.join is not None:
        for column in query.join.select_columns:
            items.append(f"r.[{column}]")
    for aggregate in query.aggregates:
        if aggregate.column is None:
            items.append("COUNT(*)")
        else:
            items.append(f"{aggregate.func.value}({prefix}[{aggregate.column}])")
    select_list = ", ".join(items) if items else "*"
    top = f"TOP {query.limit} " if query.limit is not None else ""
    text = f"SELECT {top}{select_list} FROM [{query.table}]"
    if alias:
        text += f" AS {alias}"
    text += _render_join(query.join)
    all_preds = []
    for predicate in query.predicates:
        all_preds.append(render_predicate(predicate, alias))
    if query.join is not None:
        for predicate in query.join.predicates:
            all_preds.append(render_predicate(predicate, "r"))
    if all_preds:
        text += " WHERE " + " AND ".join(all_preds)
    if query.group_by:
        text += " GROUP BY " + ", ".join(
            f"{prefix}[{column}]" for column in query.group_by
        )
    if query.order_by:
        text += " ORDER BY " + ", ".join(
            f"{prefix}[{item.column}]" + ("" if item.ascending else " DESC")
            for item in query.order_by
        )
    if query.index_hint:
        text += f" OPTION (USE INDEX ([{query.index_hint}]))"
    return text


def render_insert(query: InsertQuery, schema: Optional[TableSchema] = None) -> str:
    """Render an INSERT / BULK INSERT statement."""
    verb = "BULK INSERT" if query.bulk else "INSERT INTO"
    columns = ""
    if schema is not None:
        columns = " (" + ", ".join(f"[{c}]" for c in schema.column_names) + ")"
    rows = ", ".join(
        "(" + ", ".join(_literal(value) for value in row) + ")"
        for row in query.rows[:3]
    )
    if len(query.rows) > 3:
        rows += f" /* +{len(query.rows) - 3} rows */"
    return f"{verb} [{query.table}]{columns} VALUES {rows}"


def render_update(query: UpdateQuery) -> str:
    """Render an UPDATE statement."""
    sets = ", ".join(
        f"[{column}] = {_literal(value)}" for column, value in query.assignments
    )
    return f"UPDATE [{query.table}] SET {sets}" + _render_where(query.predicates)


def render_delete(query: DeleteQuery) -> str:
    """Render a DELETE statement."""
    return f"DELETE FROM [{query.table}]" + _render_where(query.predicates)


def render(query, schema: Optional[TableSchema] = None) -> str:
    """Render any supported query object to SQL text."""
    if isinstance(query, SelectQuery):
        return render_select(query)
    if isinstance(query, InsertQuery):
        return render_insert(query, schema)
    if isinstance(query, UpdateQuery):
        return render_update(query)
    if isinstance(query, DeleteQuery):
        return render_delete(query)
    raise TypeError(f"cannot render {type(query).__name__}")


def template_text(query) -> str:
    """Render with literals replaced by parameter markers.

    This is the normalized text Query Store keys a template by.
    """
    text = render(query)
    # Cheap literal scrubbing: the renderer is deterministic, so templates
    # from the same structure produce identical scrubbed text.
    text = re.sub(r"N'(?:[^']|'')*'", "@p", text)
    text = re.sub(r"(?<![\w\]])-?\d+(?:\.\d+)?(?:e-?\d+)?", "@p", text)
    return text
