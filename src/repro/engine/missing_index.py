"""The Missing Indexes (MI) DMV.

During query optimization the optimizer reports index candidates it wished
existed (:meth:`repro.engine.optimizer.Optimizer._emit_for_table`); this
module accumulates them exactly like SQL Server's
``sys.dm_db_missing_index_*`` views (Section 5.2 of the paper):

- entries are grouped by (table, EQUALITY columns, INEQUALITY columns,
  INCLUDE columns);
- per group it tracks seek count, average estimated query cost, and the
  average estimated improvement percentage;
- **all state is lost on restart, failover, or schema change** — the
  recommender tolerates that by taking periodic snapshots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class MissingIndexGroup:
    """Identity of an MI group: the candidate's column sets."""

    table: str
    equality_columns: Tuple[str, ...]
    inequality_columns: Tuple[str, ...]
    include_columns: Tuple[str, ...]


@dataclasses.dataclass
class MissingIndexEntry:
    """Accumulated statistics for one MI group."""

    group: MissingIndexGroup
    user_seeks: int = 0
    avg_total_cost: float = 0.0
    avg_user_impact: float = 0.0
    first_seen: float = 0.0
    last_seen: float = 0.0

    def observe(self, cost: float, impact: float, now: float) -> None:
        if self.user_seeks == 0:
            self.first_seen = now
        self.user_seeks += 1
        n = self.user_seeks
        self.avg_total_cost += (cost - self.avg_total_cost) / n
        self.avg_user_impact += (impact - self.avg_user_impact) / n
        self.last_seen = now

    def copy(self) -> "MissingIndexEntry":
        return dataclasses.replace(self)


@dataclasses.dataclass(frozen=True)
class MissingIndexSnapshot:
    """A frozen copy of the DMV contents at a point in time.

    The recommender accumulates these to survive DMV resets and to compute
    the impact slope over time (Section 5.2, step 4).
    """

    taken_at: float
    entries: Tuple[MissingIndexEntry, ...]


class MissingIndexDmv:
    """In-engine accumulation of missing-index candidates."""

    def __init__(self) -> None:
        self._entries: Dict[MissingIndexGroup, MissingIndexEntry] = {}
        self.resets = 0

    def record(
        self,
        table: str,
        equality_columns: Tuple[str, ...],
        inequality_columns: Tuple[str, ...],
        include_columns: Tuple[str, ...],
        cost: float,
        impact: float,
        now: float,
    ) -> None:
        """Sink callback invoked by the optimizer."""
        group = MissingIndexGroup(
            table=table,
            equality_columns=tuple(equality_columns),
            inequality_columns=tuple(inequality_columns),
            include_columns=tuple(include_columns),
        )
        entry = self._entries.get(group)
        if entry is None:
            entry = MissingIndexEntry(group=group)
            self._entries[group] = entry
        entry.observe(cost, impact, now)

    def entries(self) -> List[MissingIndexEntry]:
        """Live view of the accumulated groups (copies)."""
        return [entry.copy() for entry in self._entries.values()]

    def snapshot(self, now: float) -> MissingIndexSnapshot:
        return MissingIndexSnapshot(
            taken_at=now,
            entries=tuple(entry.copy() for entry in self._entries.values()),
        )

    def reset(self) -> None:
        """Clear all state (server restart, failover, or schema change)."""
        self._entries.clear()
        self.resets += 1

    def __len__(self) -> int:
        return len(self._entries)
