"""Query Store: persistent per-interval runtime statistics.

Mirrors the SQL Server feature the paper's service leans on for nearly
everything (Section 3): query text, the history of plans per query, and
execution statistics (count, mean, standard deviation of CPU time, logical
reads, duration) aggregated over fixed time intervals.

The auto-indexing service uses it to (a) pick the workload to tune
(top-K statements over the past N hours, Section 5.3.2), (b) compute
workload coverage (Section 5.1.2), and (c) validate index changes by
comparing per-plan statistics before and after (Section 6).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.observability.profiling import profile


@dataclasses.dataclass
class MetricAggregate:
    """Welford-style streaming mean/variance for one metric."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def merge(self, other: "MetricAggregate") -> "MetricAggregate":
        """Combine two aggregates (Chan et al. parallel variance)."""
        if other.count == 0:
            return dataclasses.replace(self)
        if self.count == 0:
            return dataclasses.replace(other)
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / count
        return MetricAggregate(count=count, mean=mean, m2=m2)


METRICS = ("cpu_time_ms", "logical_reads", "duration_ms")


@dataclasses.dataclass
class RuntimeStats:
    """Statistics for one (query, plan) pair within one interval."""

    query_id: int
    plan_id: int
    interval_start: float
    executions: int = 0
    metrics: Dict[str, MetricAggregate] = dataclasses.field(
        default_factory=lambda: {name: MetricAggregate() for name in METRICS}
    )

    def observe(self, cpu_time_ms: float, logical_reads: float, duration_ms: float) -> None:
        self.executions += 1
        self.metrics["cpu_time_ms"].observe(cpu_time_ms)
        self.metrics["logical_reads"].observe(logical_reads)
        self.metrics["duration_ms"].observe(duration_ms)


@dataclasses.dataclass
class PlanInfo:
    """Registered plan metadata."""

    plan_id: int
    signature: str
    referenced_indexes: Tuple[str, ...]


@dataclasses.dataclass
class QueryInfo:
    """Registered query metadata."""

    query_id: int
    kind: str
    text: str
    template_text: str
    #: Whether Query Store captured complete, optimizable text (the paper's
    #: DTA workload-acquisition problem: fragments can't be what-if costed).
    text_complete: bool = True
    table: str = ""


class QueryStore:
    """Interval-bucketed runtime statistics keyed by (query, plan)."""

    def __init__(self, interval_minutes: float = 60.0, retention_intervals: int = 24 * 90):
        self.interval_minutes = interval_minutes
        self.retention_intervals = retention_intervals
        self._queries: Dict[int, QueryInfo] = {}
        self._plans: Dict[int, PlanInfo] = {}
        # interval index -> (query_id, plan_id) -> RuntimeStats
        self._intervals: Dict[int, Dict[Tuple[int, int], RuntimeStats]] = {}
        #: Query Store plan forcing (the paper's §5.4 drop-protection case):
        #: query_id -> forced plan_id.
        self._forced: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Plan forcing

    def force_plan(self, query_id: int, plan_id: int) -> None:
        """Force a previously seen plan for a query (sp_query_store_force_plan)."""
        if plan_id not in self._plans:
            raise KeyError(f"unknown plan {plan_id}")
        self._forced[query_id] = plan_id

    def unforce_plan(self, query_id: int) -> None:
        self._forced.pop(query_id, None)

    def forced_plan(self, query_id: int) -> Optional[PlanInfo]:
        plan_id = self._forced.get(query_id)
        return self._plans.get(plan_id) if plan_id is not None else None

    def forced_plan_indexes(self) -> set:
        """All index names referenced by any forced plan."""
        names = set()
        for plan_id in self._forced.values():
            info = self._plans.get(plan_id)
            if info is not None:
                names.update(info.referenced_indexes)
        return names

    # ------------------------------------------------------------------
    # Recording

    def _interval_index(self, now: float) -> int:
        return int(now // self.interval_minutes)

    def register_query(self, info: QueryInfo) -> None:
        self._queries.setdefault(info.query_id, info)

    def register_plan(self, info: PlanInfo) -> None:
        self._plans.setdefault(info.plan_id, info)

    def record(
        self,
        query_id: int,
        plan_id: int,
        cpu_time_ms: float,
        logical_reads: float,
        duration_ms: float,
        now: float,
    ) -> None:
        index = self._interval_index(now)
        bucket = self._intervals.setdefault(index, {})
        key = (query_id, plan_id)
        stats = bucket.get(key)
        if stats is None:
            stats = RuntimeStats(
                query_id=query_id,
                plan_id=plan_id,
                interval_start=index * self.interval_minutes,
            )
            bucket[key] = stats
        stats.observe(cpu_time_ms, logical_reads, duration_ms)
        self._evict(index)

    def _evict(self, current_index: int) -> None:
        cutoff = current_index - self.retention_intervals
        stale = [index for index in self._intervals if index < cutoff]
        for index in stale:
            del self._intervals[index]

    # ------------------------------------------------------------------
    # Lookup

    def query_info(self, query_id: int) -> Optional[QueryInfo]:
        return self._queries.get(query_id)

    def plan_info(self, plan_id: int) -> Optional[PlanInfo]:
        return self._plans.get(plan_id)

    def queries(self) -> List[QueryInfo]:
        return list(self._queries.values())

    def _stats_in_window(
        self, since: float, until: float
    ) -> Iterable[RuntimeStats]:
        """Stats in [since, until).

        Granularity is the interval: a window covers every interval whose
        start lies in [since, until), and ``until`` exactly on an interval
        boundary excludes that interval — so back-to-back windows
        partition the data, as the validator's before/after comparison
        requires.
        """
        lo = self._interval_index(since)
        hi = self._interval_index(max(since, until - 1e-9))
        for index in range(lo, hi + 1):
            bucket = self._intervals.get(index)
            if not bucket:
                continue
            yield from bucket.values()

    def aggregate(
        self,
        since: float,
        until: float,
        query_id: Optional[int] = None,
    ) -> Dict[Tuple[int, int], RuntimeStats]:
        """Merge stats per (query, plan) over a time window."""
        with profile("query_store_aggregate"):
            return self._aggregate(since, until, query_id)

    def _aggregate(
        self,
        since: float,
        until: float,
        query_id: Optional[int] = None,
    ) -> Dict[Tuple[int, int], RuntimeStats]:
        merged: Dict[Tuple[int, int], RuntimeStats] = {}
        for stats in self._stats_in_window(since, until):
            if query_id is not None and stats.query_id != query_id:
                continue
            key = (stats.query_id, stats.plan_id)
            existing = merged.get(key)
            if existing is None:
                existing = RuntimeStats(
                    query_id=stats.query_id,
                    plan_id=stats.plan_id,
                    interval_start=stats.interval_start,
                )
                merged[key] = existing
            existing.executions += stats.executions
            for name in METRICS:
                existing.metrics[name] = existing.metrics[name].merge(
                    stats.metrics[name]
                )
        return merged

    def per_query_totals(
        self, since: float, until: float, metric: str = "cpu_time_ms"
    ) -> Dict[int, float]:
        """Total resource per query over a window (across all plans)."""
        totals: Dict[int, float] = {}
        for stats in self._stats_in_window(since, until):
            totals[stats.query_id] = (
                totals.get(stats.query_id, 0.0) + stats.metrics[metric].total
            )
        return totals

    def total_resource(
        self, since: float, until: float, metric: str = "cpu_time_ms"
    ) -> float:
        return sum(self.per_query_totals(since, until, metric).values())

    def top_queries(
        self,
        since: float,
        until: float,
        k: int,
        metric: str = "cpu_time_ms",
    ) -> List[Tuple[int, float]]:
        """The K most expensive queries by total metric over the window."""
        totals = self.per_query_totals(since, until, metric)
        ranked = sorted(totals.items(), key=lambda item: -item[1])
        return ranked[:k]

    def plans_for_query(
        self, query_id: int, since: float, until: float
    ) -> List[PlanInfo]:
        plans = []
        seen = set()
        for stats in self._stats_in_window(since, until):
            if stats.query_id != query_id or stats.plan_id in seen:
                continue
            seen.add(stats.plan_id)
            info = self._plans.get(stats.plan_id)
            if info is not None:
                plans.append(info)
        return plans
