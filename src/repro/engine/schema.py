"""Schema objects: columns, table schemas, and index definitions.

An :class:`IndexDefinition` mirrors the shape of a SQL Server non-clustered
index: an ordered list of key columns plus an unordered set of included
(leaf-only) columns.  Clustered indexes key the full row.  Hypothetical
indexes (used by the what-if API, Section 5.3 of the paper) are ordinary
definitions flagged ``hypothetical=True`` and never materialized.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.types import SqlType
from repro.errors import SchemaError, UnknownColumnError


@dataclasses.dataclass(frozen=True)
class Column:
    """A table column."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclasses.dataclass(frozen=True)
class IndexDefinition:
    """Definition of a clustered or non-clustered B+ tree index.

    ``key_columns`` is the ordered seek key; ``included_columns`` are stored
    only at the leaf level and make the index covering for queries that
    reference them.  ``auto_created`` marks indexes implemented by the
    auto-indexing service (these carry the service naming scheme and are the
    only ones the service will ever revert).
    """

    name: str
    table: str
    key_columns: Tuple[str, ...]
    included_columns: Tuple[str, ...] = ()
    clustered: bool = False
    unique: bool = False
    hypothetical: bool = False
    auto_created: bool = False

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise SchemaError(f"index {self.name!r} has no key columns")
        seen = set()
        for column in self.key_columns:
            if column in seen:
                raise SchemaError(
                    f"index {self.name!r} repeats key column {column!r}"
                )
            seen.add(column)
        overlap = seen.intersection(self.included_columns)
        if overlap:
            raise SchemaError(
                f"index {self.name!r} includes key columns {sorted(overlap)}"
            )

    @property
    def all_columns(self) -> Tuple[str, ...]:
        """Key columns followed by included columns."""
        return self.key_columns + tuple(self.included_columns)

    def covers(self, columns: Iterable[str]) -> bool:
        """True if every referenced column is present in this index."""
        available = set(self.all_columns)
        return all(column in available for column in columns)

    def is_duplicate_of(self, other: "IndexDefinition") -> bool:
        """True if both indexes have identical key columns in order.

        This is the paper's duplicate-index criterion (Section 5.4): key
        columns identical including order; included columns may differ.
        """
        return (
            self.table == other.table
            and self.key_columns == other.key_columns
        )

    def key_is_prefix_of(self, other: "IndexDefinition") -> bool:
        """True if this index's key is a proper or equal prefix of ``other``'s."""
        if self.table != other.table:
            return False
        if len(self.key_columns) > len(other.key_columns):
            return False
        return other.key_columns[: len(self.key_columns)] == self.key_columns

    def describe(self) -> str:
        """Human-readable summary, as shown in the recommendation UI."""
        key_part = ", ".join(self.key_columns)
        text = f"{self.table}({key_part})"
        if self.included_columns:
            text += " INCLUDE(" + ", ".join(self.included_columns) + ")"
        return text


class TableSchema:
    """Column layout and key structure of a table."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} has no columns")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: List[Column] = list(columns)
        self._positions = {column.name: i for i, column in enumerate(columns)}
        if primary_key is None:
            primary_key = (columns[0].name,)
        for column in primary_key:
            if column not in self._positions:
                raise UnknownColumnError(
                    f"primary key column {column!r} not in table {name!r}"
                )
        self.primary_key: Tuple[str, ...] = tuple(primary_key)

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._positions

    def position(self, name: str) -> int:
        """Ordinal position of a column; raises if unknown."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownColumnError(
                f"column {name!r} not in table {self.name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def row_width(self, columns: Optional[Iterable[str]] = None) -> int:
        """Total storage width in bytes of the given columns (default all)."""
        if columns is None:
            selected = self.columns
        else:
            selected = [self.column(name) for name in columns]
        return sum(column.sql_type.width for column in selected)

    def project(self, row: tuple, columns: Sequence[str]) -> tuple:
        """Extract the named columns from a full row tuple."""
        return tuple(row[self.position(name)] for name in columns)

    def pk_values(self, row: tuple) -> tuple:
        """Primary-key values of a full row tuple."""
        return self.project(row, self.primary_key)

    def validate_row(self, row: Sequence[object]) -> tuple:
        """Coerce and validate a row against column types and nullability."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row width {len(row)} != {len(self.columns)} "
                f"for table {self.name!r}"
            )
        coerced = []
        for column, value in zip(self.columns, row):
            value = column.sql_type.coerce(value)
            if value is None and not column.nullable:
                raise SchemaError(
                    f"NULL in non-nullable column {column.name!r} "
                    f"of table {self.name!r}"
                )
            coerced.append(value)
        return tuple(coerced)


_AUTO_INDEX_COUNTER = itertools.count(1)


def auto_index_name(
    table: str, key_columns: Sequence[str], seq: Optional[int] = None
) -> str:
    """Generate a service-style index name.

    Mirrors the naming scheme customers asked about in Section 8.2: the
    prefix makes auto-created indexes recognizable and collision-free.
    Callers that need reproducible names (the control plane uses the
    recommendation's record id, unique per database) pass ``seq``;
    without it the suffix comes from a process-global counter, which is
    unique but depends on allocation order across the whole process.
    """
    suffix = next(_AUTO_INDEX_COUNTER) if seq is None else seq
    column_part = "_".join(key_columns[:3])
    return f"nci_auto_{table}_{column_part}_{suffix}"
