"""A from-scratch single-node relational engine simulator.

This subpackage is the substrate the auto-indexing service runs against.
It models the SQL Server surfaces the paper's service consumes:

- paged heap / B+ tree storage with logical-read accounting (:mod:`btree`,
  :mod:`heap`, :mod:`table`);
- a cost-based optimizer with histogram cardinality estimation, a
  controllable estimation-error model, and a what-if (hypothetical index)
  API (:mod:`optimizer`, :mod:`cost_model`);
- the Missing Indexes DMV (:mod:`missing_index`);
- Query Store interval runtime statistics (:mod:`query_store`);
- index usage statistics (:mod:`usage_stats`);
- a FIFO lock manager with managed lock priorities (:mod:`locks`);
- resource governance for tuning sessions (:mod:`resource_governor`);
- online/resumable index DDL (:mod:`ddl`).

The public entry point is :class:`repro.engine.engine.SqlEngine`.
"""

from repro.engine.engine import Database, SqlEngine
from repro.engine.schema import Column, IndexDefinition, TableSchema
from repro.engine.types import SqlType
from repro.engine.query import (
    Aggregate,
    DeleteQuery,
    InsertQuery,
    JoinSpec,
    Op,
    OrderItem,
    Predicate,
    SelectQuery,
    UpdateQuery,
)

__all__ = [
    "Aggregate",
    "Column",
    "Database",
    "DeleteQuery",
    "IndexDefinition",
    "InsertQuery",
    "JoinSpec",
    "Op",
    "OrderItem",
    "Predicate",
    "SelectQuery",
    "SqlEngine",
    "SqlType",
    "TableSchema",
    "UpdateQuery",
]
