"""The engine facade: databases and the `SqlEngine` execution surface.

:class:`SqlEngine` wires together the optimizer, executor, Missing Index
DMV, Query Store, usage statistics, lock manager, and resource governor,
exposing the surfaces the auto-indexing service consumes:

- ``execute(query)`` — optimize + execute, recording Query Store runtime
  stats, MI candidates, and index usage;
- ``whatif_optimize(query, extra_indexes, excluded)`` — the what-if API,
  metered against the tuning resource pool (Section 5.3.1);
- ``create_index`` / ``drop_index`` — immediate DDL (the control plane
  wraps these in online build jobs and the low-priority drop protocol);
- ``restart()`` / ``failover()`` — clear the MI DMV, exercising the
  recommender's snapshot tolerance (Section 5.2).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence

from repro.clock import SimClock
from repro.engine.cost_model import (
    CostModel,
    CostModelSettings,
    ExecutionCostSettings,
)
from repro.engine.exec import ExecutionMetrics, Executor
from repro.engine.locks import LockManager
from repro.engine.missing_index import MissingIndexDmv
from repro.engine.optimizer import Optimizer
from repro.engine.plans import (
    IndexScanNode,
    IndexSeekNode,
    KeyLookupNode,
    PlanNode,
)
from repro.engine.query import InsertQuery, SelectQuery
from repro.engine.query_store import PlanInfo, QueryInfo, QueryStore
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schema import IndexDefinition, TableSchema
from repro.engine.sqlgen import render, template_text
from repro.engine.table import Table
from repro.engine.usage_stats import IndexUsageStats
from repro.errors import (
    DuplicateObjectError,
    ExecutionError,
    UnknownTableError,
)
from repro.observability.profiling import profile
from repro.rng import derive, stable_uniform


@dataclasses.dataclass
class EngineSettings:
    """Behavioral knobs of one simulated database server."""

    interval_minutes: float = 60.0
    cost_model: CostModelSettings = dataclasses.field(
        default_factory=CostModelSettings
    )
    execution: ExecutionCostSettings = dataclasses.field(
        default_factory=ExecutionCostSettings
    )
    #: Fraction of query templates whose Query Store text is an incomplete
    #: fragment (procedural T-SQL), exercising DTA's workload-completion
    #: logic (Section 5.3.2).
    incomplete_text_rate: float = 0.08
    #: Fraction of incomplete-text templates whose full text is recoverable
    #: from the plan cache.
    plan_cache_hit_rate: float = 0.6
    #: Virtual CPU ms charged to the tuning pool per what-if optimize call.
    whatif_call_cpu_ms: float = 6.0
    #: What-if pricing mode: ``"batch"`` (substrate-sharing batch pricer)
    #: or ``"scalar"``; None defers to ``REPRO_WHATIF``, then ``"batch"``.
    #: Both modes produce bit-identical costs and plans; this knob exists
    #: for differential testing and emergency rollback.
    whatif_mode: Optional[str] = None
    #: The batched-charge rule: virtual CPU ms charged per *additional*
    #: configuration priced by one batch (the first always pays
    #: ``whatif_call_cpu_ms``).  None — the default — charges every
    #: configuration the full scalar rate, keeping governor accounting
    #: batching-invariant; set lower to model the amortized optimizer
    #: work batching actually saves.
    whatif_batch_extra_cpu_ms: Optional[float] = None


_WHATIF_MODES = ("batch", "scalar")


def resolve_whatif_mode(settings: "EngineSettings") -> str:
    """The effective what-if pricing mode for one statement batch."""
    mode = settings.whatif_mode
    if mode is None:
        mode = os.environ.get("REPRO_WHATIF") or "batch"
    mode = mode.lower()
    if mode not in _WHATIF_MODES:
        raise ExecutionError(
            f"invalid what-if mode {mode!r}: "
            "REPRO_WHATIF must be batch or scalar"
        )
    return mode


class Database:
    """A named database: schema, data, and a seed for all derived RNG."""

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        self.tables: Dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise DuplicateObjectError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def all_index_definitions(self) -> List[IndexDefinition]:
        definitions: List[IndexDefinition] = []
        for table in self.tables.values():
            definitions.extend(table.index_definitions())
        return definitions

    def total_data_pages(self) -> int:
        return sum(table.data_pages for table in self.tables.values())

    def snapshot(self, name: Optional[str] = None) -> "Database":
        """Structural copy of schema + data + indexes (B-instance seeding)."""
        clone = Database(
            name if name is not None else f"{self.name}-snapshot", seed=self.seed
        )
        for table_name, table in self.tables.items():
            clone.tables[table_name] = table.clone()
        return clone


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one statement execution."""

    query_id: int
    plan_id: int
    plan: PlanNode
    rows: List[dict]
    metrics: ExecutionMetrics


class SqlEngine:
    """Execution surface over one :class:`Database`."""

    def __init__(
        self,
        database: Database,
        settings: Optional[EngineSettings] = None,
        clock: Optional[SimClock] = None,
        tuning_budget_cpu_ms: Optional[float] = None,
    ) -> None:
        self.database = database
        self.settings = settings or EngineSettings()
        self.clock = clock or SimClock()
        self.cost_model = CostModel(database.seed, self.settings.cost_model)
        self.optimizer = Optimizer(database.tables, self.cost_model)
        self.executor = Executor(
            database.tables,
            self.settings.execution,
            rng=derive(database.seed, "executor", database.name),
        )
        self.query_store = QueryStore(self.settings.interval_minutes)
        self.missing_indexes = MissingIndexDmv()
        self.usage_stats = IndexUsageStats()
        self.locks = LockManager()
        self.governor = ResourceGovernor(tuning_budget_cpu_ms=tuning_budget_cpu_ms)
        #: Ground-truth ASTs for every template seen (the simulator's stand-in
        #: for "the application's statements"); access rules below model what
        #: Query Store / the plan cache actually captured.
        self._query_objects: Dict[int, object] = {}
        self._plan_cache: Dict[int, object] = {}
        self.restarts = 0

    # ------------------------------------------------------------------
    # Execution

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def plan_cache(self):
        """The optimizer's memoized plan cache (distinct from the
        statement-text ``_plan_cache`` DTA reads fragments from)."""
        return self.optimizer.plan_cache

    def execute(self, query, at_time: Optional[float] = None) -> ExecutionResult:
        """Optimize and execute a statement, recording all telemetry."""
        now = self.now if at_time is None else at_time
        # Forcing changes the executed plan, never the query's identity.
        query_id = query.template_key()
        effective = self._apply_plan_forcing(query, query_id)
        plan = self.optimizer.optimize(effective, mi_sink=self._mi_sink(now))
        with profile("engine_execute") as prof:
            rows, metrics = self.executor.execute(plan, effective)
            prof.sim_ms = metrics.cpu_time_ms
        self._register(query, plan, query_id)
        # Schema lock integration: statements hold Sch-S for their duration;
        # a queued normal-priority Sch-M delays them (convoy, Section 8.3).
        duration_min = metrics.duration_ms / 60000.0
        delayed_start = self.locks.register_shared(query.table, now, duration_min)
        if delayed_start > now:
            metrics.duration_ms += (delayed_start - now) * 60000.0
        self.query_store.record(
            query_id,
            plan.plan_id(),
            metrics.cpu_time_ms,
            metrics.logical_reads,
            metrics.duration_ms,
            now,
        )
        self._record_usage(plan, query, now)
        self.governor.user.charge_cpu(metrics.cpu_time_ms, now)
        return ExecutionResult(
            query_id=query_id,
            plan_id=plan.plan_id(),
            plan=plan,
            rows=rows,
            metrics=metrics,
        )

    def _apply_plan_forcing(self, query, query_id: int):
        """Honor Query Store plan forcing (§5.4's forced-plan case).

        A forced plan that referenced a secondary index is realized as an
        index hint: if the index was dropped, the statement fails — which
        is exactly why the drop recommender must never drop such indexes.
        """
        if not isinstance(query, SelectQuery) or query.index_hint:
            return query
        forced = self.query_store.forced_plan(query_id)
        if forced is None or not forced.referenced_indexes:
            return query
        return dataclasses.replace(query, index_hint=forced.referenced_indexes[0])

    def _mi_sink(self, now: float):
        dmv = self.missing_indexes

        def sink(table, eq, ineq, incl, cost, impact):
            dmv.record(table, eq, ineq, incl, cost, impact, now)

        return sink

    def _register(self, query, plan: PlanNode, query_id: int) -> None:
        if query_id not in self._query_objects:
            self._query_objects[query_id] = query
            text = render(query)
            complete = self._text_is_complete(query, query_id)
            self.query_store.register_query(
                QueryInfo(
                    query_id=query_id,
                    kind=query.kind,
                    text=text if complete else text[: max(20, len(text) // 3)],
                    template_text=template_text(query),
                    text_complete=complete,
                    table=query.table,
                )
            )
        self.query_store.register_plan(
            PlanInfo(
                plan_id=plan.plan_id(),
                signature=plan.signature(),
                referenced_indexes=plan.referenced_indexes(),
            )
        )
        # Plan cache: bounded, holds full statement context for recent
        # templates; DTA falls back to it for incomplete QS text.
        if self._text_is_complete(query, query_id) or self._plan_cache_holds(query_id):
            self._plan_cache[query_id] = query
            if len(self._plan_cache) > 512:
                self._plan_cache.pop(next(iter(self._plan_cache)))

    def _text_is_complete(self, query, query_id: int) -> bool:
        if isinstance(query, InsertQuery) and query.bulk:
            return True  # text is complete; it's what-if that rejects it
        draw = stable_uniform(self.database.seed, "qstext", query_id)
        return draw >= self.settings.incomplete_text_rate

    def _plan_cache_holds(self, query_id: int) -> bool:
        draw = stable_uniform(self.database.seed, "plancache", query_id)
        return draw < self.settings.plan_cache_hit_rate

    def _record_usage(self, plan: PlanNode, query, now: float) -> None:
        table = query.table
        for node in plan.walk():
            if isinstance(node, IndexSeekNode):
                self.usage_stats.record_seek(node.table, node.index_name, now)
            elif isinstance(node, IndexScanNode):
                self.usage_stats.record_scan(node.table, node.index_name, now)
            elif isinstance(node, KeyLookupNode):
                child = node.child
                if isinstance(child, (IndexSeekNode, IndexScanNode)):
                    self.usage_stats.record_lookup(child.table, child.index_name, now)
        maintained = getattr(plan, "maintained_indexes", ())
        for index_name in maintained:
            self.usage_stats.record_update(table, index_name, now)

    # ------------------------------------------------------------------
    # What-if API (Section 5.3)

    def whatif_optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition] = (),
        excluded: Sequence[str] = (),
    ) -> PlanNode:
        """Optimize under a hypothetical configuration; metered."""
        self.governor.tuning.charge_cpu(self.settings.whatif_call_cpu_ms, self.now)
        self.governor.tuning.usage.whatif_calls += 1
        with profile("engine_whatif_cost") as prof:
            prof.sim_ms = self.settings.whatif_call_cpu_ms
            return self.optimizer.optimize(
                query, extra_indexes=tuple(extra_indexes), excluded=frozenset(excluded)
            )

    def whatif_cost(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition] = (),
        excluded: Sequence[str] = (),
    ) -> float:
        return self.whatif_optimize(query, extra_indexes, excluded).est_cost

    def whatif_batch(
        self, query, excluded: Sequence[str] = ()
    ) -> "WhatIfBatch":
        """A metered batch pricer for many configurations of one statement.

        Every configuration priced through the batch produces the exact
        plan and cost :meth:`whatif_optimize` would, and is metered
        against the tuning pool under the batched-charge rule (see
        :attr:`EngineSettings.whatif_batch_extra_cpu_ms`).
        """
        return WhatIfBatch(self, query, excluded)

    def whatif_cost_many(
        self,
        query,
        configurations: Sequence[Sequence[IndexDefinition]],
        excluded: Sequence[str] = (),
    ) -> List[float]:
        """Estimated costs of one statement under many configurations.

        Bit-identical to calling :meth:`whatif_cost` once per
        configuration, but the query-invariant optimizer work is done
        once per statement rather than once per configuration.
        """
        batch = self.whatif_batch(query, excluded)
        return [batch.cost(configuration) for configuration in configurations]

    # ------------------------------------------------------------------
    # Workload text access (DTA's acquisition rules, Section 5.3.2)

    def observed_statement(self, query_id: int) -> Optional[object]:
        """Server-side ground-truth AST for a template.

        Unlike :meth:`statement_for_tuning` this is not subject to text
        capture limits — it models what the *server itself* saw during
        optimization (e.g. the MI feature analyzes every statement it
        optimizes regardless of Query Store text quality).
        """
        return self._query_objects.get(query_id)

    def statement_for_tuning(self, query_id: int) -> Optional[object]:
        """The AST DTA can obtain for a template, or None.

        Complete Query Store text parses directly; incomplete fragments are
        recoverable only if the plan cache still holds the full batch.
        """
        info = self.query_store.query_info(query_id)
        if info is None:
            return None
        if info.text_complete:
            return self._query_objects.get(query_id)
        return self._plan_cache.get(query_id)

    # ------------------------------------------------------------------
    # DDL

    def create_index(self, definition: IndexDefinition) -> None:
        table = self.database.table(definition.table)
        table.create_index(definition, created_at=self.now)
        # Index creation is a schema change: the MI DMV resets (Section 5.2)
        # and every cached plan against the table is stale.
        self.missing_indexes.reset()
        self.plan_cache.invalidate(definition.table)

    def drop_index(self, table_name: str, index_name: str) -> IndexDefinition:
        table = self.database.table(table_name)
        definition = table.drop_index(index_name)
        self.usage_stats.drop_index(index_name)
        self.missing_indexes.reset()
        self.plan_cache.invalidate(table_name)
        return definition

    def index_exists(self, table_name: str, index_name: str) -> bool:
        table = self.database.tables.get(table_name)
        return bool(table and index_name in table.indexes)

    # ------------------------------------------------------------------
    # Failures

    def restart(self) -> None:
        """Server restart: volatile DMVs (MI, plan caches) are lost."""
        self.missing_indexes.reset()
        self._plan_cache.clear()
        self.plan_cache.invalidate()
        self.restarts += 1

    def failover(self) -> None:
        """Replica failover: same volatile-state loss as a restart."""
        self.restart()

    # ------------------------------------------------------------------
    # Convenience

    def build_all_statistics(self, sample_fraction: float = 1.0) -> None:
        for table in self.database.tables.values():
            table.build_statistics(
                sample_fraction=sample_fraction,
                rng=derive(self.database.seed, "stats", table.name),
                at_time=self.now,
            )
        # Fresh statistics change every cost estimate; drop cached plans.
        self.plan_cache.invalidate()

    def workload_coverage(
        self,
        analyzed_query_ids: Sequence[int],
        since: float,
        until: float,
        metric: str = "cpu_time_ms",
    ) -> float:
        """Fraction of total resources consumed by the analyzed statements.

        This is the paper's workload-coverage measure (Section 5.1.2).
        """
        totals = self.query_store.per_query_totals(since, until, metric)
        total = sum(totals.values())
        if total <= 0:
            return 0.0
        covered = sum(totals.get(qid, 0.0) for qid in analyzed_query_ids)
        return covered / total


class WhatIfBatch:
    """Engine-level batch pricer: governor metering around the optimizer's
    :class:`repro.engine.optimizer.BatchPricer`.

    Each :meth:`price` call is charged to the tuning pool before pricing
    (exactly like :meth:`SqlEngine.whatif_optimize`, including raising
    :class:`ResourceBudgetExceededError` mid-batch when the window's
    budget runs dry) and attributed to the ``engine_whatif_cost`` hot
    path.  The first configuration always pays the full scalar rate;
    later ones pay ``whatif_batch_extra_cpu_ms`` when that discount is
    configured, and the scalar rate otherwise.
    """

    def __init__(self, engine: SqlEngine, query, excluded: Sequence[str] = ()):
        self._engine = engine
        self._pricer = engine.optimizer.batch_pricer(query, frozenset(excluded))
        self._configs_priced = 0

    def price(self, extra_indexes: Sequence[IndexDefinition] = ()) -> PlanNode:
        engine = self._engine
        settings = engine.settings
        extra_ms = settings.whatif_batch_extra_cpu_ms
        if self._configs_priced and extra_ms is not None:
            charge = extra_ms
        else:
            charge = settings.whatif_call_cpu_ms
        engine.governor.tuning.charge_cpu(charge, engine.now)
        engine.governor.tuning.usage.whatif_calls += 1
        self._configs_priced += 1
        with profile("engine_whatif_cost") as prof:
            prof.sim_ms = charge
            return self._pricer.price(tuple(extra_indexes))

    def cost(self, extra_indexes: Sequence[IndexDefinition] = ()) -> float:
        return self.price(extra_indexes).est_cost
