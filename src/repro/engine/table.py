"""Tables: a clustered B+ tree plus secondary indexes.

Every table is organized as a clustered index on its primary key (the SQL
Server default); secondary non-clustered indexes store their key columns
plus the clustering key as the row locator, plus any included columns at
the leaf.  DML maintains every secondary index, and the page charges of
that maintenance are metered — this is the mechanism by which an
over-eager index recommendation makes writes measurably slower, the main
source of MI-recommendation reverts reported in Section 8.1.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.btree import BPlusTree, PageMeter
from repro.engine.schema import IndexDefinition, TableSchema
from repro.engine.statistics import (
    TableStatistics,
    build_column_statistics,
)
from repro.engine.types import rows_per_page
from repro.errors import (
    DuplicateObjectError,
    ExecutionError,
    SchemaError,
    UnknownIndexError,
)


class IndexStatsView:
    """Size/shape statistics of an index, real or hypothetical.

    The optimizer costs hypothetical (what-if) indexes without building
    them; this view provides the same numbers either from an actual tree
    or from closed-form estimates.
    """

    def __init__(self, rows: int, leaf_pages: int, height: int) -> None:
        self.rows = rows
        self.leaf_pages = max(1, leaf_pages)
        self.height = max(1, height)

    @classmethod
    def from_tree(cls, tree: BPlusTree) -> "IndexStatsView":
        return cls(rows=len(tree), leaf_pages=tree.leaf_page_count, height=tree.height)

    @classmethod
    def estimate(
        cls, rows: int, entry_width: int, internal_key_width: int
    ) -> "IndexStatsView":
        """Closed-form shape estimate used for hypothetical indexes."""
        leaf_fanout = rows_per_page(entry_width)
        leaf_pages = max(1, math.ceil(rows / leaf_fanout)) if rows else 1
        internal_fanout = max(2, rows_per_page(internal_key_width + 8))
        height = 1
        level = leaf_pages
        while level > 1:
            level = math.ceil(level / internal_fanout)
            height += 1
        return cls(rows=rows, leaf_pages=leaf_pages, height=height)

    @property
    def size_bytes(self) -> int:
        from repro.engine.types import PAGE_SIZE

        return self.leaf_pages * PAGE_SIZE


class SecondaryIndex:
    """A materialized non-clustered index on a table."""

    def __init__(self, definition: IndexDefinition, schema: TableSchema) -> None:
        if definition.clustered:
            raise SchemaError("SecondaryIndex cannot be clustered")
        for column in definition.all_columns:
            schema.position(column)  # validates existence
        self.definition = definition
        self._schema = schema
        entry_width = schema.row_width(definition.all_columns) + schema.row_width(
            schema.primary_key
        )
        key_width = schema.row_width(definition.key_columns)
        self.tree = BPlusTree(
            leaf_capacity=rows_per_page(entry_width),
            internal_capacity=max(4, rows_per_page(key_width + 8)),
        )
        self.created_at: float = 0.0

    @property
    def name(self) -> str:
        return self.definition.name

    def entry_for_row(self, row: tuple) -> Tuple[tuple, tuple]:
        """(key, payload): key = key columns + PK, payload = included columns."""
        key = self._schema.project(row, self.definition.key_columns)
        pk = self._schema.pk_values(row)
        payload = self._schema.project(row, self.definition.included_columns)
        return key + pk, payload

    def insert_row(self, row: tuple) -> None:
        key, payload = self.entry_for_row(row)
        self.tree.insert(key, payload)

    def delete_row(self, row: tuple) -> None:
        key, payload = self.entry_for_row(row)
        self.tree.delete(key, payload)

    def touches_columns(self, columns: Iterable[str]) -> bool:
        """True if updating any of ``columns`` requires index maintenance."""
        relevant = set(self.definition.all_columns) | set(self._schema.primary_key)
        return any(column in relevant for column in columns)

    def stats_view(self) -> IndexStatsView:
        return IndexStatsView.from_tree(self.tree)


class Table:
    """A table: clustered index on the primary key plus secondary indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        row_width = schema.row_width()
        pk_width = schema.row_width(schema.primary_key)
        self.clustered = BPlusTree(
            leaf_capacity=rows_per_page(row_width),
            internal_capacity=max(4, rows_per_page(pk_width + 8)),
        )
        self.indexes: Dict[str, SecondaryIndex] = {}
        self.statistics = TableStatistics(schema.name)
        #: Bumped on every index create/drop; resets the MI DMV (Section 5.2).
        self.schema_version = 0
        #: Bumped on every statistics (re)build; part of the optimizer's
        #: plan-cache fingerprint, so cached plans go stale on stats refresh.
        self.stats_version = 0
        #: Bumped on every DML mutation; cost estimates depend on live tree
        #: shape and row count, so cached plans go stale on data change.
        self.data_version = 0
        #: Columnar projection cache for the vectorized executor, created
        #: lazily on first vectorized scan.  ``clone()`` builds a fresh
        #: Table, so B-instance forks never share projections.
        self._columnar = None

    # ------------------------------------------------------------------
    # Introspection

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return len(self.clustered)

    @property
    def data_pages(self) -> int:
        return self.clustered.leaf_page_count

    def clustered_stats_view(self) -> IndexStatsView:
        return IndexStatsView.from_tree(self.clustered)

    def rows(self) -> Iterator[tuple]:
        """Unmetered scan of all rows in PK order."""
        for _key, row in self.clustered.items():
            yield row

    def get_index(self, name: str) -> SecondaryIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise UnknownIndexError(
                f"index {name!r} not found on table {self.name!r}"
            ) from None

    def index_definitions(self) -> List[IndexDefinition]:
        return [index.definition for index in self.indexes.values()]

    def columnar(self):
        """The table's columnar projection cache (created on first use).

        Validity is checked lazily inside the cache against the
        ``(data_version, schema_version)`` token, so DML and index DDL
        invalidate it without any hook in the mutation paths.
        """
        if self._columnar is None:
            from repro.engine.exec.columns import ColumnarCache

            self._columnar = ColumnarCache(self)
        return self._columnar

    @property
    def columnar_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, invalidations) of the cache; zeros if unused."""
        cache = self._columnar
        if cache is None:
            return (0, 0, 0)
        return (cache.hits, cache.misses, cache.invalidations)

    def hypothetical_stats_view(self, definition: IndexDefinition) -> IndexStatsView:
        """Estimated shape for an index that does not exist."""
        entry_width = self.schema.row_width(
            definition.all_columns
        ) + self.schema.row_width(self.schema.primary_key)
        key_width = self.schema.row_width(definition.key_columns)
        return IndexStatsView.estimate(self.row_count, entry_width, key_width)

    # ------------------------------------------------------------------
    # DML (metered)

    def insert(self, row: Sequence[object], meter: Optional[PageMeter] = None) -> tuple:
        """Insert a row, maintaining every secondary index."""
        row = self.schema.validate_row(row)
        pk = self.schema.pk_values(row)
        existing = next(self.clustered.seek_prefix(pk), None)
        if existing is not None:
            raise ExecutionError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        self.clustered.insert(pk, row)
        self.data_version += 1
        if meter is not None:
            # Base row insert: clustered traversal plus row formatting/log.
            meter.charge(self.clustered.height + 2)
        for index in self.indexes.values():
            index.insert_row(row)
            if meter is not None:
                # NC maintenance is ~one leaf write: upper levels are hot.
                meter.charge(1)
        return row

    def delete_row(self, row: tuple, meter: Optional[PageMeter] = None) -> None:
        pk = self.schema.pk_values(row)
        removed = self.clustered.delete(pk)
        if not removed:
            raise ExecutionError(f"row with pk {pk!r} vanished during delete")
        self.data_version += 1
        if meter is not None:
            meter.charge(self.clustered.height + 2)
        for index in self.indexes.values():
            index.delete_row(row)
            if meter is not None:
                meter.charge(1)

    def update_row(
        self,
        old_row: tuple,
        assignments: Sequence[Tuple[str, object]],
        meter: Optional[PageMeter] = None,
    ) -> tuple:
        """Apply assignments to a row, maintaining affected indexes only."""
        new_values = list(old_row)
        changed_columns = []
        for column, value in assignments:
            position = self.schema.position(column)
            value = self.schema.column(column).sql_type.coerce(value)
            if new_values[position] != value:
                changed_columns.append(column)
            new_values[position] = value
        new_row = tuple(new_values)
        if not changed_columns:
            return old_row
        pk_changed = any(c in self.schema.primary_key for c in changed_columns)
        if pk_changed:
            self.delete_row(old_row, meter)
            self.insert(new_row, meter)
            return new_row
        # In-place clustered update: one write to the clustered leaf.
        pk = self.schema.pk_values(old_row)
        self.clustered.delete(pk)
        self.clustered.insert(pk, new_row)
        self.data_version += 1
        if meter is not None:
            meter.charge(self.clustered.height + 2)
        for index in self.indexes.values():
            if index.touches_columns(changed_columns):
                index.delete_row(old_row)
                index.insert_row(new_row)
                if meter is not None:
                    meter.charge(2)
        return new_row

    # ------------------------------------------------------------------
    # Batched DML (metered; grouped per-index maintenance)
    #
    # The batch paths apply the *same per-tree operation sequence* as the
    # row-at-a-time methods above — clustered ops in row order, then each
    # secondary index's ops in row order — so tree structure, page
    # charges, and ``data_version`` are byte-identical to a row loop.
    # Only the interleaving across trees changes, which no counter or
    # structure observes.  See DESIGN.md §8.

    def prepare_insert_rows(
        self, rows: Iterable[Sequence[object]]
    ) -> Optional[List[tuple]]:
        """Validate a batch for :meth:`insert_rows`; ``None`` to decline.

        Checks every row's schema validation and primary-key uniqueness
        (against the table and within the batch) with unmetered seeks.
        Any failure declines the batch so the caller can fall back to
        row-at-a-time inserts, which mutate-then-raise exactly as a
        plain loop over :meth:`insert` would.
        """
        prepared: List[tuple] = []
        seen_keys = set()
        for row in rows:
            try:
                validated = self.schema.validate_row(row)
            except Exception:
                return None
            pk = self.schema.pk_values(validated)
            if pk in seen_keys:
                return None
            if next(self.clustered.seek_prefix(pk), None) is not None:
                return None
            seen_keys.add(pk)
            prepared.append(validated)
        return prepared

    def insert_rows(
        self, rows: List[tuple], meter: Optional[PageMeter] = None
    ) -> None:
        """Insert pre-validated rows (see :meth:`prepare_insert_rows`),
        maintaining each secondary index as one grouped pass."""
        clustered = self.clustered
        pk_values = self.schema.pk_values
        pages = 0
        for row in rows:
            clustered.insert(pk_values(row), row)
            # Post-insert height, as the row path charges after inserting.
            pages += clustered.height + 2
        self.data_version += len(rows)
        for index in self.indexes.values():
            entry_for_row = index.entry_for_row
            tree_insert = index.tree.insert
            for row in rows:
                key, payload = entry_for_row(row)
                tree_insert(key, payload)
            pages += len(rows)
        if meter is not None and pages:
            meter.charge(pages)

    def delete_rows(
        self, rows: List[tuple], meter: Optional[PageMeter] = None
    ) -> None:
        """Delete rows, maintaining each secondary index as one grouped
        pass."""
        clustered = self.clustered
        pk_values = self.schema.pk_values
        pages = 0
        for row in rows:
            pk = pk_values(row)
            if not clustered.delete(pk):
                raise ExecutionError(
                    f"row with pk {pk!r} vanished during delete"
                )
            pages += clustered.height + 2
        self.data_version += len(rows)
        for index in self.indexes.values():
            entry_for_row = index.entry_for_row
            tree_delete = index.tree.delete
            for row in rows:
                key, payload = entry_for_row(row)
                tree_delete(key, payload)
            pages += len(rows)
        if meter is not None and pages:
            meter.charge(pages)

    def update_rows(
        self,
        old_rows: List[tuple],
        coerced_assignments: Sequence[Tuple[str, object]],
        meter: Optional[PageMeter] = None,
    ) -> None:
        """Apply pre-coerced assignments to rows, grouping maintenance.

        Assignments must not touch primary-key columns (the caller
        declines those batches) and values must already be coerced to
        their column types, so no per-row code path can raise mid-batch.
        Rows the assignments leave unchanged are skipped entirely, as in
        :meth:`update_row`.
        """
        positions = [
            (self.schema.position(column), value)
            for column, value in coerced_assignments
        ]
        columns = [column for column, _value in coerced_assignments]
        changes: List[Tuple[tuple, tuple, List[str]]] = []
        for old_row in old_rows:
            new_values = list(old_row)
            changed_columns = []
            for (position, value), column in zip(positions, columns):
                if new_values[position] != value:
                    changed_columns.append(column)
                new_values[position] = value
            if changed_columns:
                changes.append((old_row, tuple(new_values), changed_columns))
        clustered = self.clustered
        pk_values = self.schema.pk_values
        pages = 0
        for old_row, new_row, _changed in changes:
            pk = pk_values(old_row)
            clustered.delete(pk)
            clustered.insert(pk, new_row)
            pages += clustered.height + 2
        self.data_version += len(changes)
        for index in self.indexes.values():
            touches = index.touches_columns
            for old_row, new_row, changed_columns in changes:
                if touches(changed_columns):
                    index.delete_row(old_row)
                    index.insert_row(new_row)
                    pages += 2
        if meter is not None and pages:
            meter.charge(pages)

    def fetch_by_pk(self, pk: tuple, meter: Optional[PageMeter] = None) -> Optional[tuple]:
        """Key lookup: fetch a full row through the clustered index."""
        for _key, row in self.clustered.seek_prefix(pk, meter=meter):
            return row
        return None

    # ------------------------------------------------------------------
    # Index DDL

    def create_index(
        self, definition: IndexDefinition, created_at: float = 0.0
    ) -> SecondaryIndex:
        """Materialize a secondary index (bulk build from a full scan)."""
        if definition.name in self.indexes:
            raise DuplicateObjectError(
                f"index {definition.name!r} already exists on {self.name!r}"
            )
        if definition.hypothetical:
            raise SchemaError("cannot materialize a hypothetical index")
        index = SecondaryIndex(definition, self.schema)
        entries = []
        for row in self.rows():
            entries.append(index.entry_for_row(row))
        entry_width = self.schema.row_width(
            definition.all_columns
        ) + self.schema.row_width(self.schema.primary_key)
        key_width = self.schema.row_width(definition.key_columns)
        index.tree = BPlusTree.bulk_load(
            entries,
            leaf_capacity=rows_per_page(entry_width),
            internal_capacity=max(4, rows_per_page(key_width + 8)),
        )
        index.created_at = created_at
        self.indexes[definition.name] = index
        self.schema_version += 1
        return index

    def drop_index(self, name: str) -> IndexDefinition:
        index = self.get_index(name)
        del self.indexes[name]
        self.schema_version += 1
        return index.definition

    # ------------------------------------------------------------------
    # Snapshot

    def clone(self) -> "Table":
        """Structural copy: same rows (shared immutable tuples), rebuilt trees.

        Used for B-instance snapshots (Section 7.1).  ``deepcopy`` is
        unsuitable: the leaf chain recurses thousands of frames deep.
        """
        copy_table = Table(self.schema)
        row_width = self.schema.row_width()
        pk_width = self.schema.row_width(self.schema.primary_key)
        copy_table.clustered = BPlusTree.bulk_load(
            self.clustered.items(),
            leaf_capacity=rows_per_page(row_width),
            internal_capacity=max(4, rows_per_page(pk_width + 8)),
        )
        for name, index in self.indexes.items():
            cloned = SecondaryIndex(index.definition, self.schema)
            entry_width = self.schema.row_width(
                index.definition.all_columns
            ) + pk_width
            key_width = self.schema.row_width(index.definition.key_columns)
            cloned.tree = BPlusTree.bulk_load(
                index.tree.items(),
                leaf_capacity=rows_per_page(entry_width),
                internal_capacity=max(4, rows_per_page(key_width + 8)),
            )
            cloned.created_at = index.created_at
            copy_table.indexes[name] = cloned
        copy_table.statistics = TableStatistics(self.name)
        for column in self.statistics.columns():
            copy_table.statistics.set(self.statistics.get(column))
        copy_table.statistics.built_at = self.statistics.built_at
        copy_table.statistics.rows_at_build = self.statistics.rows_at_build
        copy_table.schema_version = self.schema_version
        copy_table.stats_version = self.stats_version
        copy_table.data_version = self.data_version
        return copy_table

    # ------------------------------------------------------------------
    # Statistics

    def build_statistics(
        self,
        columns: Optional[Sequence[str]] = None,
        sample_fraction: float = 1.0,
        bucket_count: int = 32,
        rng: Optional[np.random.Generator] = None,
        at_time: float = 0.0,
    ) -> int:
        """(Re)build column statistics; returns the number built."""
        if columns is None:
            columns = self.schema.column_names
        all_rows = list(self.rows())
        built = 0
        for column in columns:
            position = self.schema.position(column)
            values = [row[position] for row in all_rows]
            self.statistics.set(
                build_column_statistics(
                    column,
                    values,
                    bucket_count=bucket_count,
                    sample_fraction=sample_fraction,
                    rng=rng,
                )
            )
            built += 1
        self.statistics.built_at = at_time
        self.statistics.rows_at_build = len(all_rows)
        self.stats_version += 1
        return built
