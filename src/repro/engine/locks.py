"""Schema lock manager with FIFO scheduling and managed lock priorities.

Models the metadata-contention problem the paper calls out in Section 8.3:
dropping an index needs an exclusive schema lock (Sch-M) on the table;
statements hold shared schema locks (Sch-S) while they run.  Because the
scheduler is FIFO, a *normal*-priority Sch-M request queued behind
long-running readers blocks every later Sch-S request — a convoy that can
disrupt the whole application.  SQL Server's managed lock priorities let
the service request the Sch-M at *low* priority instead: it never blocks
later readers and simply times out if it cannot be granted, after which
the control plane backs off and retries.

Time is virtual (minutes); callers tell the manager when shared work
starts/ends and ask whether an exclusive request can be granted.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Dict, List

from repro.errors import LockTimeoutError


class LockPriority(enum.Enum):
    """Managed lock priority of a Sch-M request (Section 8.3)."""

    NORMAL = "normal"
    LOW = "low"


@dataclasses.dataclass
class _SharedHold:
    holder: str
    start: float
    end: float


@dataclasses.dataclass
class _ExclusiveWait:
    """A queued normal-priority Sch-M request (convoy source)."""

    requested_at: float
    grant_at: float


@dataclasses.dataclass
class ExclusiveGrant:
    """Outcome of an exclusive request."""

    granted_at: float
    waited: float
    convoy_delay_imposed: float = 0.0


class LockManager:
    """Per-object schema lock accounting over virtual time."""

    def __init__(self) -> None:
        self._shared: Dict[str, List[_SharedHold]] = {}
        self._pending_exclusive: Dict[str, _ExclusiveWait] = {}
        self._hold_seq = itertools.count()
        #: Total extra wait (minutes) imposed on shared requesters by
        #: queued normal-priority exclusive requests, per object.
        self.convoy_delays: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Shared (Sch-S): every statement execution

    def register_shared(self, obj: str, start: float, duration: float) -> float:
        """Register a statement's Sch-S hold; returns its *delayed* start.

        If a normal-priority Sch-M request is queued on the object, the
        shared request must wait behind it (FIFO) — the convoy effect.
        """
        delayed_start = start
        pending = self._pending_exclusive.get(obj)
        if pending is not None and pending.grant_at > start:
            delay = pending.grant_at - start
            delayed_start = pending.grant_at
            self.convoy_delays[obj] = self.convoy_delays.get(obj, 0.0) + delay
        holds = self._shared.setdefault(obj, [])
        holds.append(
            _SharedHold(
                holder=f"q{next(self._hold_seq)}",
                start=delayed_start,
                end=delayed_start + duration,
            )
        )
        self._expire(obj, delayed_start)
        return delayed_start

    def _expire(self, obj: str, now: float) -> None:
        holds = self._shared.get(obj)
        if not holds:
            return
        holds[:] = [hold for hold in holds if hold.end > now]

    def active_shared(self, obj: str, now: float) -> int:
        self._expire(obj, now)
        return len(self._shared.get(obj, ()))

    def _last_shared_end(self, obj: str, now: float) -> float:
        self._expire(obj, now)
        holds = self._shared.get(obj, ())
        if not holds:
            return now
        return max(hold.end for hold in holds)

    # ------------------------------------------------------------------
    # Exclusive (Sch-M): index drop / metadata change

    def request_exclusive(
        self,
        obj: str,
        now: float,
        priority: LockPriority = LockPriority.LOW,
        wait_timeout: float = 1.0,
    ) -> ExclusiveGrant:
        """Request a Sch-M lock on ``obj`` at virtual time ``now``.

        LOW priority: granted only if it can be acquired within
        ``wait_timeout`` minutes without blocking anyone; otherwise raises
        :class:`LockTimeoutError` (the caller backs off and retries —
        Section 8.3's protocol).

        NORMAL priority: always granted at the moment the current readers
        drain, but every shared request arriving in between is delayed
        behind it (recorded in :attr:`convoy_delays`).
        """
        drain_at = self._last_shared_end(obj, now)
        waited = max(0.0, drain_at - now)
        if priority is LockPriority.LOW:
            if waited > wait_timeout:
                raise LockTimeoutError(
                    f"low-priority Sch-M on {obj!r} timed out after "
                    f"{wait_timeout} min (readers drain in {waited:.2f} min)"
                )
            return ExclusiveGrant(granted_at=drain_at, waited=waited)
        # Normal priority: queue and make later readers wait (convoy).
        self._pending_exclusive[obj] = _ExclusiveWait(
            requested_at=now, grant_at=drain_at
        )
        return ExclusiveGrant(granted_at=drain_at, waited=waited)

    def release_exclusive(self, obj: str) -> None:
        self._pending_exclusive.pop(obj, None)

    def convoy_delay(self, obj: str) -> float:
        """Total delay imposed on readers by normal-priority Sch-M requests."""
        return self.convoy_delays.get(obj, 0.0)
