"""Query AST.

The engine does not parse arbitrary SQL; workloads build structured query
objects (a parser for the rendered T-SQL-ish subset exists in
:mod:`repro.engine.parser` for replay-from-text scenarios).  The AST covers
the shapes the paper's recommenders care about: sargable equality and range
predicates, a single equi-join, GROUP BY with aggregates, ORDER BY, TOP,
and the three DML forms.

Every query exposes a stable ``template_key`` — the structural fingerprint
with parameter values stripped — which Query Store uses as the query
identity (the paper tunes *templates*, Section 5.3.2).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Sequence, Tuple

from repro.rng import stable_hash


class Op(enum.Enum):
    """Comparison operators supported in WHERE clauses."""

    EQ = "="
    NEQ = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "BETWEEN"

    @property
    def is_equality(self) -> bool:
        return self is Op.EQ

    @property
    def is_range(self) -> bool:
        return self in (Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN)


@dataclasses.dataclass(frozen=True)
class Predicate:
    """A sargable predicate ``column op value`` (or BETWEEN value AND value2)."""

    column: str
    op: Op
    value: object
    value2: object = None

    def __post_init__(self) -> None:
        if self.op is Op.BETWEEN and self.value2 is None:
            raise ValueError("BETWEEN requires value2")

    @property
    def is_equality(self) -> bool:
        return self.op.is_equality

    @property
    def is_range(self) -> bool:
        return self.op.is_range

    def matches(self, row_value: object) -> bool:
        """Evaluate the predicate against a concrete value (SQL NULL = no)."""
        if row_value is None:
            return False
        if self.op is Op.EQ:
            return row_value == self.value
        if self.op is Op.NEQ:
            return row_value != self.value
        try:
            if self.op is Op.LT:
                return row_value < self.value
            if self.op is Op.LE:
                return row_value <= self.value
            if self.op is Op.GT:
                return row_value > self.value
            if self.op is Op.GE:
                return row_value >= self.value
            if self.op is Op.BETWEEN:
                return self.value <= row_value <= self.value2
        except TypeError:
            return False
        raise AssertionError(f"unhandled op {self.op}")

    def range_bounds(self) -> Tuple[Optional[object], Optional[object], bool, bool]:
        """(low, high, low_inclusive, high_inclusive) for range predicates."""
        if self.op is Op.LT:
            return None, self.value, True, False
        if self.op is Op.LE:
            return None, self.value, True, True
        if self.op is Op.GT:
            return self.value, None, False, True
        if self.op is Op.GE:
            return self.value, None, True, True
        if self.op is Op.BETWEEN:
            return self.value, self.value2, True, True
        raise ValueError(f"{self.op} is not a range operator")


@dataclasses.dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    column: str
    ascending: bool = True


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """An aggregate expression; ``column`` is None for COUNT(*)."""

    func: AggFunc
    column: Optional[str] = None

    def label(self) -> str:
        target = self.column if self.column else "*"
        return f"{self.func.value}({target})"


@dataclasses.dataclass(frozen=True)
class JoinSpec:
    """A single equi-join to a second table.

    ``left_column`` is on the outer (FROM) table, ``right_column`` on the
    joined table.  ``predicates`` apply to the joined table and
    ``select_columns`` are projected from it.
    """

    table: str
    left_column: str
    right_column: str
    predicates: Tuple[Predicate, ...] = ()
    select_columns: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class SelectQuery:
    """A single-block SELECT over one table with an optional equi-join."""

    table: str
    select_columns: Tuple[str, ...] = ()
    predicates: Tuple[Predicate, ...] = ()
    join: Optional[JoinSpec] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    #: Optional index hint: force use of the named index (Section 5.4 —
    #: hinted indexes must never be dropped by the service).
    index_hint: Optional[str] = None

    @property
    def kind(self) -> str:
        return "SELECT"

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by)

    def referenced_columns(self) -> Tuple[str, ...]:
        """Columns of the *outer* table this query touches, in stable order."""
        seen: Dict[str, None] = {}
        for column in self.select_columns:
            seen.setdefault(column)
        for predicate in self.predicates:
            seen.setdefault(predicate.column)
        if self.join is not None:
            seen.setdefault(self.join.left_column)
        for column in self.group_by:
            seen.setdefault(column)
        for item in self.order_by:
            seen.setdefault(item.column)
        for aggregate in self.aggregates:
            if aggregate.column is not None:
                seen.setdefault(aggregate.column)
        return tuple(seen)

    def template_key(self) -> int:
        """Structural fingerprint ignoring parameter values."""
        parts = [
            "SELECT",
            self.table,
            ",".join(self.select_columns),
            ";".join(f"{p.column}{p.op.value}" for p in self.predicates),
            _join_part(self.join),
            ",".join(self.group_by),
            ",".join(a.label() for a in self.aggregates),
            ",".join(
                f"{o.column}{'+' if o.ascending else '-'}" for o in self.order_by
            ),
            "TOP" if self.limit is not None else "",
            self.index_hint or "",
        ]
        return stable_hash(*parts)


def _join_part(join: Optional[JoinSpec]) -> str:
    if join is None:
        return ""
    preds = ";".join(f"{p.column}{p.op.value}" for p in join.predicates)
    return (
        f"JOIN {join.table} ON {join.left_column}={join.right_column} "
        f"[{preds}] SEL[{','.join(join.select_columns)}]"
    )


@dataclasses.dataclass(frozen=True)
class InsertQuery:
    """INSERT of one or more fully specified rows."""

    table: str
    rows: Tuple[Tuple[object, ...], ...]
    #: BULK INSERT flavor: cannot be optimized by the what-if API until DTA
    #: rewrites it into an equivalent INSERT (Section 5.3.2).
    bulk: bool = False

    @property
    def kind(self) -> str:
        return "INSERT"

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        return ()

    def template_key(self) -> int:
        return stable_hash("INSERT", self.table, "BULK" if self.bulk else "")


@dataclasses.dataclass(frozen=True)
class UpdateQuery:
    """UPDATE ... SET assignments WHERE predicates."""

    table: str
    assignments: Tuple[Tuple[str, object], ...]
    predicates: Tuple[Predicate, ...] = ()

    @property
    def kind(self) -> str:
        return "UPDATE"

    @property
    def assigned_columns(self) -> Tuple[str, ...]:
        return tuple(column for column, _value in self.assignments)

    def template_key(self) -> int:
        return stable_hash(
            "UPDATE",
            self.table,
            ",".join(self.assigned_columns),
            ";".join(f"{p.column}{p.op.value}" for p in self.predicates),
        )


@dataclasses.dataclass(frozen=True)
class DeleteQuery:
    """DELETE FROM table WHERE predicates."""

    table: str
    predicates: Tuple[Predicate, ...] = ()

    @property
    def kind(self) -> str:
        return "DELETE"

    def template_key(self) -> int:
        return stable_hash(
            "DELETE",
            self.table,
            ";".join(f"{p.column}{p.op.value}" for p in self.predicates),
        )


Query = object  # typing alias documented for readers; no runtime checks


def equality_predicates(predicates: Sequence[Predicate]) -> Tuple[Predicate, ...]:
    """The equality predicates, in input order."""
    return tuple(p for p in predicates if p.is_equality)


def range_predicates(predicates: Sequence[Predicate]) -> Tuple[Predicate, ...]:
    """The range (inequality) predicates, in input order."""
    return tuple(p for p in predicates if p.is_range)
