"""Column statistics: equi-depth histograms and density information.

The optimizer estimates predicate selectivity from these statistics, the
same way SQL Server consults column statistics during costing.  DTA
additionally creates *sampled* statistics on candidate columns during a
tuning session (Section 5.3.1); :func:`build_column_statistics` accepts a
sample fraction to model that.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.types import sort_key


@dataclasses.dataclass
class HistogramBucket:
    """One equi-depth bucket: values in (previous upper bound, upper]."""

    upper: object
    rows: float
    distinct: float


class ColumnStatistics:
    """Equi-depth histogram plus density for a single column.

    Selectivity queries return fractions of the table's rows.  All
    estimates degrade gracefully on empty tables (selectivity 0).
    """

    def __init__(
        self,
        column: str,
        row_count: int,
        null_count: int,
        distinct_count: int,
        buckets: List[HistogramBucket],
        sampled_fraction: float = 1.0,
    ) -> None:
        self.column = column
        self.row_count = row_count
        self.null_count = null_count
        self.distinct_count = max(1, distinct_count) if row_count else 0
        self.buckets = buckets
        self.sampled_fraction = sampled_fraction

    @property
    def density(self) -> float:
        """Average fraction of rows per distinct value (SQL Server density)."""
        if not self.row_count or not self.distinct_count:
            return 0.0
        return 1.0 / self.distinct_count

    def selectivity_eq(self, value: object) -> float:
        """Estimated fraction of rows equal to ``value``."""
        if not self.row_count:
            return 0.0
        if value is None:
            return self.null_count / self.row_count
        bucket = self._bucket_for(value)
        if bucket is None:
            # Out of histogram range: assume one distinct value's worth.
            return min(1.0, self.density)
        per_value = bucket.rows / max(1.0, bucket.distinct)
        return min(1.0, per_value / self.row_count)

    def selectivity_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of non-null rows in [low, high]."""
        if not self.row_count:
            return 0.0
        non_null = self.row_count - self.null_count
        if non_null <= 0:
            return 0.0
        below_high = (
            float(non_null) if high is None else self._rows_below(high, high_inclusive)
        )
        below_low = 0.0 if low is None else self._rows_below(low, not low_inclusive)
        rows = below_high - below_low
        return min(1.0, max(0.0, rows / self.row_count))

    def _bucket_for(self, value: object) -> Optional[HistogramBucket]:
        vkey = sort_key(value)
        for bucket in self.buckets:
            if vkey <= sort_key(bucket.upper):
                return bucket
        return None

    def _rows_below(self, value: object, inclusive: bool) -> float:
        """Estimated count of non-null rows with column value below ``value``."""
        vkey = sort_key(value)
        total = 0.0
        lower_key = None
        for bucket in self.buckets:
            upper_key = sort_key(bucket.upper)
            if vkey >= upper_key:
                total += bucket.rows
                if vkey == upper_key and not inclusive:
                    # Remove this value's share of the boundary bucket.
                    total -= bucket.rows / max(1.0, bucket.distinct)
                lower_key = upper_key
                continue
            # value falls inside this bucket: linear interpolation.
            frac = _interpolate(lower_key, upper_key, vkey)
            total += bucket.rows * frac
            break
        return total

    def __repr__(self) -> str:
        return (
            f"ColumnStatistics({self.column!r}, rows={self.row_count}, "
            f"distinct={self.distinct_count}, buckets={len(self.buckets)})"
        )


def _interpolate(lower_key, upper_key, value_key) -> float:
    """Fraction of a bucket below ``value_key`` (crude linear model)."""
    try:
        low = lower_key[1] if lower_key is not None else None
        high = upper_key[1]
        val = value_key[1]
        if (
            isinstance(high, float)
            and isinstance(val, float)
            and isinstance(low, float)
            and high > low
        ):
            return min(1.0, max(0.0, (val - low) / (high - low)))
    except (TypeError, IndexError):
        pass
    return 0.5


def build_column_statistics(
    column: str,
    values: Sequence[object],
    bucket_count: int = 32,
    sample_fraction: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> ColumnStatistics:
    """Build an equi-depth histogram over ``values``.

    With ``sample_fraction < 1`` a uniform sample is histogrammed and
    counts are scaled back up, modeling DTA's sampled statistics.
    """
    row_count = len(values)
    if row_count == 0:
        return ColumnStatistics(column, 0, 0, 0, [])
    if sample_fraction < 1.0:
        rng = rng if rng is not None else np.random.default_rng(0)
        take = max(1, int(row_count * sample_fraction))
        positions = rng.choice(row_count, size=take, replace=False)
        sampled = [values[int(i)] for i in positions]
        scale = row_count / take
    else:
        sampled = list(values)
        scale = 1.0
    null_count = sum(1 for value in sampled if value is None)
    non_null = sorted(
        (value for value in sampled if value is not None), key=sort_key
    )
    distinct_total = len(set(non_null))
    buckets: List[HistogramBucket] = []
    if non_null:
        per_bucket = max(1, len(non_null) // bucket_count)
        start = 0
        while start < len(non_null):
            end = min(len(non_null), start + per_bucket)
            # Extend to include all duplicates of the boundary value so a
            # value never straddles two buckets.
            boundary = sort_key(non_null[end - 1])
            while end < len(non_null) and sort_key(non_null[end]) == boundary:
                end += 1
            chunk = non_null[start:end]
            buckets.append(
                HistogramBucket(
                    upper=chunk[-1],
                    rows=len(chunk) * scale,
                    distinct=max(1.0, len(set(chunk))),
                )
            )
            start = end
    return ColumnStatistics(
        column=column,
        row_count=row_count,
        null_count=int(null_count * scale),
        distinct_count=int(distinct_total * scale) or (1 if non_null else 0),
        buckets=buckets,
        sampled_fraction=sample_fraction,
    )


class TableStatistics:
    """All column statistics for one table, with staleness tracking."""

    def __init__(self, table: str) -> None:
        self.table = table
        self._columns: dict = {}
        self.built_at: float = 0.0
        self.rows_at_build: int = 0

    def set(self, stats: ColumnStatistics) -> None:
        self._columns[stats.column] = stats

    def get(self, column: str) -> Optional[ColumnStatistics]:
        return self._columns.get(column)

    def columns(self) -> List[str]:
        return sorted(self._columns)

    def staleness(self, current_rows: int) -> float:
        """Relative row-count drift since the statistics were built."""
        if not self.rows_at_build:
            return 0.0 if not current_rows else 1.0
        return abs(current_rows - self.rows_at_build) / self.rows_at_build
