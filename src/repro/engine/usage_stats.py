"""Index usage statistics (``sys.dm_db_index_usage_stats`` equivalent).

The drop recommender (Section 5.4) is deliberately *not* workload-driven;
it reads these server-tracked counters — how often each index is read by
queries vs. how often it is modified by DML — to find indexes with little
or no benefit but real maintenance overhead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional


@dataclasses.dataclass
class IndexUsage:
    """Read/write counters for one index."""

    index_name: str
    table: str
    user_seeks: int = 0
    user_scans: int = 0
    user_lookups: int = 0
    user_updates: int = 0
    last_user_seek: Optional[float] = None
    last_user_scan: Optional[float] = None
    last_user_update: Optional[float] = None

    @property
    def reads(self) -> int:
        return self.user_seeks + self.user_scans + self.user_lookups

    @property
    def writes(self) -> int:
        return self.user_updates

    def last_read(self) -> Optional[float]:
        candidates = [t for t in (self.last_user_seek, self.last_user_scan) if t is not None]
        return max(candidates) if candidates else None


class IndexUsageStats:
    """Accumulates usage counters, keyed by (table, index)."""

    def __init__(self) -> None:
        self._usage: Dict[str, IndexUsage] = {}

    def _entry(self, table: str, index_name: str) -> IndexUsage:
        entry = self._usage.get(index_name)
        if entry is None:
            entry = IndexUsage(index_name=index_name, table=table)
            self._usage[index_name] = entry
        return entry

    def record_seek(self, table: str, index_name: str, now: float) -> None:
        entry = self._entry(table, index_name)
        entry.user_seeks += 1
        entry.last_user_seek = now

    def record_scan(self, table: str, index_name: str, now: float) -> None:
        entry = self._entry(table, index_name)
        entry.user_scans += 1
        entry.last_user_scan = now

    def record_lookup(self, table: str, index_name: str, now: float) -> None:
        entry = self._entry(table, index_name)
        entry.user_lookups += 1

    def record_update(self, table: str, index_name: str, now: float) -> None:
        entry = self._entry(table, index_name)
        entry.user_updates += 1
        entry.last_user_update = now

    def get(self, index_name: str) -> Optional[IndexUsage]:
        return self._usage.get(index_name)

    def entries(self) -> List[IndexUsage]:
        return list(self._usage.values())

    def drop_index(self, index_name: str) -> None:
        """Forget counters for a dropped index."""
        self._usage.pop(index_name, None)
