"""Parser for the engine's T-SQL-ish subset.

Query Store persists statement *text*; replay tooling (B-instances,
Section 7.1) and DTA's workload acquisition conceptually work from text.
This parser round-trips everything :mod:`repro.engine.sqlgen` renders:
single-block SELECT (with TOP, one INNER JOIN, WHERE, GROUP BY, ORDER BY,
an index-hint OPTION), INSERT / BULK INSERT, UPDATE, and DELETE.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.engine.query import (
    AggFunc,
    Aggregate,
    DeleteQuery,
    InsertQuery,
    JoinSpec,
    Op,
    OrderItem,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    \s*(
        N'(?:[^']|'')*'          # unicode string literal
      | '(?:[^']|'')*'           # string literal
      | \[[^\]]+\]               # bracketed identifier
      | -?\d+\.\d+(?:e-?\d+)?    # float literal
      | -?\d+                    # int literal
      | <>|<=|>=|=|<|>           # operators
      | \(|\)|,|\.|\*           # punctuation
      | [A-Za-z_][A-Za-z_0-9]*   # bare word / keyword
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "TOP", "FROM", "AS", "INNER", "JOIN", "ON", "WHERE", "AND",
    "GROUP", "ORDER", "BY", "DESC", "BETWEEN", "INSERT", "BULK", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "NULL", "OPTION", "USE", "INDEX",
    "COUNT", "SUM", "AVG", "MIN", "MAX",
}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    # Strip comments like /* +N rows */ first.
    text = re.sub(r"/\*.*?\*/", "", text)
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise ParseError(f"unexpected input at {text[position:position + 20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> Optional[str]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def peek_upper(self, offset: int = 0) -> Optional[str]:
        token = self.peek(offset)
        return token.upper() if token is not None else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self._pos += 1
        return token

    def expect(self, *words: str) -> None:
        for word in words:
            token = self.next()
            if token.upper() != word:
                raise ParseError(f"expected {word}, found {token!r}")

    def accept(self, word: str) -> bool:
        if self.peek_upper() == word:
            self._pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


def _identifier(stream: _TokenStream) -> str:
    token = stream.next()
    if token.startswith("[") and token.endswith("]"):
        return token[1:-1]
    if token.upper() in _KEYWORDS:
        raise ParseError(f"expected identifier, found keyword {token!r}")
    return token


def _maybe_qualified_column(stream: _TokenStream) -> str:
    """Parse ``[col]`` or ``alias.[col]``; the alias is discarded."""
    token = stream.peek()
    if token is not None and not token.startswith("[") and stream.peek(1) == ".":
        stream.next()  # alias
        stream.next()  # dot
    return _identifier(stream)


def _literal(stream: _TokenStream) -> object:
    token = stream.next()
    upper = token.upper()
    if upper == "NULL":
        return None
    if token.startswith("N'"):
        return token[2:-1].replace("''", "'")
    if token.startswith("'"):
        return token[1:-1].replace("''", "'")
    try:
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        return float(token)
    except ValueError:
        raise ParseError(f"cannot parse literal {token!r}") from None


_OPS = {"=": Op.EQ, "<>": Op.NEQ, "<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}


def _predicate(stream: _TokenStream) -> Tuple[str, Predicate]:
    """Parse one predicate; returns (alias, predicate).

    The alias ('' when unqualified) lets the SELECT parser split WHERE
    clauses between the outer table and the joined table.
    """
    alias = ""
    token = stream.peek()
    if token is not None and not token.startswith("[") and stream.peek(1) == ".":
        alias = stream.next()
        stream.next()
    column = _identifier(stream)
    op_token = stream.next().upper()
    if op_token == "BETWEEN":
        low = _literal(stream)
        stream.expect("AND")
        high = _literal(stream)
        return alias, Predicate(column, Op.BETWEEN, low, high)
    op = _OPS.get(op_token)
    if op is None:
        raise ParseError(f"unknown operator {op_token!r}")
    return alias, Predicate(column, op, _literal(stream))


def _where_clause(stream: _TokenStream) -> List[Tuple[str, Predicate]]:
    predicates = [_predicate(stream)]
    while stream.accept("AND"):
        predicates.append(_predicate(stream))
    return predicates


def parse(text: str):
    """Parse a statement; returns one of the query AST dataclasses."""
    stream = _TokenStream(_tokenize(text))
    head = stream.peek_upper()
    if head == "SELECT":
        return _parse_select(stream)
    if head == "INSERT":
        return _parse_insert(stream, bulk=False)
    if head == "BULK":
        return _parse_insert(stream, bulk=True)
    if head == "UPDATE":
        return _parse_update(stream)
    if head == "DELETE":
        return _parse_delete(stream)
    raise ParseError(f"unsupported statement {text[:40]!r}")


def _parse_select(stream: _TokenStream) -> SelectQuery:
    stream.expect("SELECT")
    limit: Optional[int] = None
    if stream.accept("TOP"):
        limit = int(stream.next())
    select_items: List[Tuple[str, str]] = []  # (alias, column)
    aggregates: List[Aggregate] = []
    if stream.peek() == "*" and stream.peek_upper(1) == "FROM":
        stream.next()
    else:
        while True:
            upper = stream.peek_upper()
            if upper in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                func = AggFunc[stream.next().upper()]
                stream.expect("(")
                if stream.peek() == "*":
                    stream.next()
                    aggregates.append(Aggregate(func, None))
                else:
                    aggregates.append(Aggregate(func, _maybe_qualified_column(stream)))
                stream.expect(")")
            else:
                alias = ""
                token = stream.peek()
                if token is not None and not token.startswith("[") and stream.peek(1) == ".":
                    alias = stream.next()
                    stream.next()
                select_items.append((alias, _identifier(stream)))
            if not stream.accept(","):
                break
    stream.expect("FROM")
    table = _identifier(stream)
    outer_alias = ""
    if stream.accept("AS"):
        outer_alias = stream.next()
    join: Optional[JoinSpec] = None
    join_alias = ""
    if stream.accept("INNER"):
        stream.expect("JOIN")
        join_table = _identifier(stream)
        stream.expect("AS")
        join_alias = stream.next()
        stream.expect("ON")
        left_alias, left = _qualified(stream)
        stream.expect("=")
        right_alias, right = _qualified(stream)
        if left_alias == join_alias:
            left, right = right, left
        join = JoinSpec(table=join_table, left_column=left, right_column=right)
    where: List[Tuple[str, Predicate]] = []
    if stream.accept("WHERE"):
        where = _where_clause(stream)
    group_by: List[str] = []
    order_by: List[OrderItem] = []
    if stream.accept("GROUP"):
        stream.expect("BY")
        group_by.append(_maybe_qualified_column(stream))
        while stream.accept(","):
            group_by.append(_maybe_qualified_column(stream))
    if stream.accept("ORDER"):
        stream.expect("BY")
        while True:
            column = _maybe_qualified_column(stream)
            ascending = not stream.accept("DESC")
            order_by.append(OrderItem(column, ascending))
            if not stream.accept(","):
                break
    index_hint: Optional[str] = None
    if stream.accept("OPTION"):
        stream.expect("(", "USE", "INDEX", "(")
        index_hint = _identifier(stream)
        stream.expect(")", ")")
    outer_preds = tuple(p for alias, p in where if alias != join_alias or not join_alias)
    join_preds = tuple(p for alias, p in where if join_alias and alias == join_alias)
    outer_select = tuple(
        column
        for alias, column in select_items
        if alias != join_alias or not join_alias
    )
    join_select = tuple(
        column for alias, column in select_items if join_alias and alias == join_alias
    )
    if join is not None:
        join = JoinSpec(
            table=join.table,
            left_column=join.left_column,
            right_column=join.right_column,
            predicates=join_preds,
            select_columns=join_select,
        )
    return SelectQuery(
        table=table,
        select_columns=outer_select,
        predicates=outer_preds,
        join=join,
        group_by=tuple(group_by),
        aggregates=tuple(aggregates),
        order_by=tuple(order_by),
        limit=limit,
        index_hint=index_hint,
    )


def _qualified(stream: _TokenStream) -> Tuple[str, str]:
    alias = ""
    token = stream.peek()
    if token is not None and not token.startswith("[") and stream.peek(1) == ".":
        alias = stream.next()
        stream.next()
    return alias, _identifier(stream)


def _parse_insert(stream: _TokenStream, bulk: bool) -> InsertQuery:
    if bulk:
        stream.expect("BULK", "INSERT")
    else:
        stream.expect("INSERT", "INTO")
    table = _identifier(stream)
    if stream.peek() == "(":
        stream.next()
        _identifier(stream)
        while stream.accept(","):
            _identifier(stream)
        stream.expect(")")
    stream.expect("VALUES")
    rows = []
    while True:
        stream.expect("(")
        row = [_literal(stream)]
        while stream.accept(","):
            row.append(_literal(stream))
        stream.expect(")")
        rows.append(tuple(row))
        if not stream.accept(","):
            break
    return InsertQuery(table=table, rows=tuple(rows), bulk=bulk)


def _parse_update(stream: _TokenStream) -> UpdateQuery:
    stream.expect("UPDATE")
    table = _identifier(stream)
    stream.expect("SET")
    assignments = []
    while True:
        column = _identifier(stream)
        stream.expect("=")
        assignments.append((column, _literal(stream)))
        if not stream.accept(","):
            break
    predicates: Tuple[Predicate, ...] = ()
    if stream.accept("WHERE"):
        predicates = tuple(p for _alias, p in _where_clause(stream))
    return UpdateQuery(
        table=table, assignments=tuple(assignments), predicates=predicates
    )


def _parse_delete(stream: _TokenStream) -> DeleteQuery:
    stream.expect("DELETE", "FROM")
    table = _identifier(stream)
    predicates: Tuple[Predicate, ...] = ()
    if stream.accept("WHERE"):
        predicates = tuple(p for _alias, p in _where_clause(stream))
    return DeleteQuery(table=table, predicates=predicates)
