"""Resource governance for tuning work.

The paper runs DTA co-located with the customer's primary replica and
therefore under a strict resource budget (Section 5.3.1): SQL Server's
resource governor limits the CPU/memory/IO of DTA's server-side calls, and
Windows Job Objects cap the DTA process itself.  Here a
:class:`ResourcePool` meters the virtual CPU milliseconds a consumer
charges and raises :class:`ResourceBudgetExceededError` once the budget
for the current accounting window is exhausted; the DTA session catches it
and either yields (extending its runtime) or aborts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.errors import ResourceBudgetExceededError


@dataclasses.dataclass
class PoolUsage:
    """Consumption counters for one pool."""

    cpu_ms: float = 0.0
    whatif_calls: int = 0
    stats_builds: int = 0


class ResourcePool:
    """A named pool with a per-window CPU budget.

    ``budget_cpu_ms`` of ``None`` means ungoverned (the default user pool).
    """

    def __init__(
        self,
        name: str,
        budget_cpu_ms: Optional[float] = None,
        window_minutes: float = 60.0,
    ) -> None:
        self.name = name
        self.budget_cpu_ms = budget_cpu_ms
        self.window_minutes = window_minutes
        self.usage = PoolUsage()
        self._window_index = 0
        self._window_cpu_ms = 0.0

    def _roll_window(self, now: float) -> None:
        index = int(now // self.window_minutes)
        if index != self._window_index:
            self._window_index = index
            self._window_cpu_ms = 0.0

    def charge_cpu(self, cpu_ms: float, now: float) -> None:
        """Charge CPU; raises if the pool's window budget is exceeded."""
        self._roll_window(now)
        self.usage.cpu_ms += cpu_ms
        self._window_cpu_ms += cpu_ms
        if (
            self.budget_cpu_ms is not None
            and self._window_cpu_ms > self.budget_cpu_ms
        ):
            raise ResourceBudgetExceededError(
                f"pool {self.name!r} exceeded {self.budget_cpu_ms} ms "
                f"CPU in its {self.window_minutes} min window"
            )

    def window_headroom(self, now: float) -> Optional[float]:
        """Remaining CPU ms in the current window (None if ungoverned)."""
        if self.budget_cpu_ms is None:
            return None
        self._roll_window(now)
        return max(0.0, self.budget_cpu_ms - self._window_cpu_ms)


class ResourceGovernor:
    """Holds the engine's pools: the user workload pool and tuning pools."""

    USER_POOL = "user"
    TUNING_POOL = "tuning"
    INDEX_BUILD_POOL = "index_build"

    def __init__(
        self,
        tuning_budget_cpu_ms: Optional[float] = None,
        index_build_budget_cpu_ms: Optional[float] = None,
        window_minutes: float = 60.0,
    ) -> None:
        self._pools: Dict[str, ResourcePool] = {
            self.USER_POOL: ResourcePool(self.USER_POOL, None, window_minutes),
            self.TUNING_POOL: ResourcePool(
                self.TUNING_POOL, tuning_budget_cpu_ms, window_minutes
            ),
            self.INDEX_BUILD_POOL: ResourcePool(
                self.INDEX_BUILD_POOL, index_build_budget_cpu_ms, window_minutes
            ),
        }

    def pool(self, name: str) -> ResourcePool:
        return self._pools[name]

    @property
    def user(self) -> ResourcePool:
        return self._pools[self.USER_POOL]

    @property
    def tuning(self) -> ResourcePool:
        return self._pools[self.TUNING_POOL]

    @property
    def index_build(self) -> ResourcePool:
        return self._pools[self.INDEX_BUILD_POOL]
