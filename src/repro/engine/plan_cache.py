"""Memoized plan cache for the optimizer.

Plan search is the engine's hottest profiled path: every executed
statement optimizes, and DTA/MI recommendation sweeps re-optimize the
same templates against dozens of hypothetical configurations
(Section 5.3).  The cache memoizes ``optimize()`` results keyed by

- the **query** itself (queries are frozen, hashable dataclasses, so the
  full query — including literal values — is its own signature),
- a per-referenced-table **fingerprint** ``(name, schema_version,
  stats_version, data_version)`` capturing everything cost estimation
  reads: the visible index set, the statistics snapshot, and the live
  tree shape / row count, and
- the **what-if configuration**: the sorted ``excluded`` names plus the
  ``extra_indexes`` tuple, so hypothetical configurations are cached
  independently of normal mode and of each other.

Staleness is handled twice over.  Version counters inside the key mean a
DDL change, statistics rebuild, or DML mutation makes every affected key
unreachable, so a stale plan can never be returned.  Explicit
:meth:`PlanCache.invalidate` additionally reclaims the memory for those
unreachable entries at the events the engine knows about (index
create/drop, fleet statistics refresh, restart).

Plans are frozen dataclass trees and are shared by reference between the
cache and callers.  Missing-index emissions recorded while a plan was
first computed are replayed on every hit, so the MI DMV's ``user_seeks``
accounting (Section 5.2) is identical with and without the cache.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from repro.engine.plans import PlanNode

#: Default maximum number of cached plans per engine.
DEFAULT_CAPACITY = 1024

#: Default maximum number of memoized what-if substrates per engine.
#: Substrates (see :class:`repro.engine.optimizer.BatchPricer`) are much
#: larger than plans — they hold every base candidate's finished plan —
#: so their store is bounded separately and more tightly.
DEFAULT_SUBSTRATE_CAPACITY = 256


@dataclasses.dataclass(frozen=True)
class PlanCacheEntry:
    """One memoized optimization result."""

    plan: PlanNode
    #: MI sink argument tuples recorded when the plan was computed; replayed
    #: into the sink on every cache hit (normal mode only).
    mi_emissions: Tuple[tuple, ...]
    #: Tables the plan reads or writes — the invalidation granularity.
    tables: Tuple[str, ...]


class PlanCache:
    """A bounded LRU mapping cache keys to :class:`PlanCacheEntry`.

    Counters are monotone over the cache's lifetime: ``hits``/``misses``
    count :meth:`lookup` outcomes, ``evictions`` counts entries removed
    for any reason (capacity pressure *and* invalidation), and
    ``invalidations`` counts :meth:`invalidate` calls.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        substrate_capacity: int = DEFAULT_SUBSTRATE_CAPACITY,
    ) -> None:
        self.capacity = capacity
        self.substrate_capacity = substrate_capacity
        self._entries: "OrderedDict[Hashable, PlanCacheEntry]" = OrderedDict()
        #: Memoized batched-what-if substrates: key -> (substrate, tables).
        #: Keyed by the base-configuration plan key, so the same version
        #: fingerprints that gate plan staleness gate substrate staleness.
        #: Hit/miss accounting lives in the optimizer's BatchPricingStats,
        #: not in the plan counters below, so plan-cache hit rates are
        #: identical whether or not the batched pricer is in use.
        self._substrates: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[PlanCacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: Hashable, entry: PlanCacheEntry) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # What-if substrate memoization (see optimizer.BatchPricer)

    def lookup_substrate(self, key: Hashable):
        """The memoized substrate for ``key``, or None."""
        item = self._substrates.get(key)
        if item is None:
            return None
        self._substrates.move_to_end(key)
        return item[0]

    def store_substrate(
        self, key: Hashable, substrate, tables: Tuple[str, ...]
    ) -> None:
        if self.substrate_capacity <= 0:
            return
        self._substrates[key] = (substrate, tuple(tables))
        self._substrates.move_to_end(key)
        while len(self._substrates) > self.substrate_capacity:
            self._substrates.popitem(last=False)

    def substrate_count(self) -> int:
        return len(self._substrates)

    # ------------------------------------------------------------------

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop entries touching ``table`` (all entries when ``None``).

        Version counters in the key already make stale entries
        unreachable; this reclaims their memory.  Returns the number of
        entries removed.  Memoized substrates touching the table are
        dropped too (they embed stats views and finished plans).
        """
        self.invalidations += 1
        if table is None:
            removed = len(self._entries)
            self._entries.clear()
            self._substrates.clear()
        else:
            stale = [
                key
                for key, entry in self._entries.items()
                if table in entry.tables
            ]
            for key in stale:
                del self._entries[key]
            removed = len(stale)
            stale_substrates = [
                key
                for key, (_substrate, tables) in self._substrates.items()
                if table in tables
            ]
            for key in stale_substrates:
                del self._substrates[key]
        self.evictions += removed
        return removed
