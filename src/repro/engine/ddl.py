"""Online and resumable index DDL.

The paper's service only ever performs *online* operations (Section 6):
index builds that do not block queries, and drops issued under low-priority
Sch-M locks with a back-off/retry protocol (Section 8.3).  Index creation
can be paused and resumed — modeling Azure SQL Database's resumable index
create (Section 8.3) — and generates transaction log proportional to the
data it writes, which the control plane monitors.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

from repro.engine.locks import LockManager, LockPriority
from repro.engine.schema import IndexDefinition
from repro.engine.table import Table
from repro.engine.types import PAGE_SIZE, rows_per_page
from repro.errors import LockTimeoutError


class BuildState(enum.Enum):
    """Lifecycle of an online index build."""

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclasses.dataclass
class BuildProgress:
    """Progress snapshot of an index build."""

    state: BuildState
    fraction_done: float
    rows_done: int
    rows_total: int
    log_bytes_generated: int
    cpu_ms_spent: float


class OnlineIndexBuildJob:
    """A resumable, online index build.

    Work is measured in rows: the build scans the clustered index, sorts,
    and writes leaf pages.  ``advance(rows)`` performs a slice of the work;
    when all rows are processed the index is materialized on the table.
    With ``resumable=True``, log can be truncated at each advance (the
    pre-resumable failure mode — filling the transaction log on large
    tables — is modeled by :attr:`log_bytes_outstanding`).
    """

    #: Virtual CPU ms per row of build work (scan + sort + write amortized).
    CPU_MS_PER_ROW = 0.004

    def __init__(
        self,
        table: Table,
        definition: IndexDefinition,
        resumable: bool = False,
    ) -> None:
        self.table = table
        self.definition = definition
        self.resumable = resumable
        self.state = BuildState.PENDING
        self.rows_total = table.row_count
        self.rows_done = 0
        self.cpu_ms_spent = 0.0
        entry_width = table.schema.row_width(
            definition.all_columns
        ) + table.schema.row_width(table.schema.primary_key)
        self._entry_width = entry_width
        self.log_bytes_generated = 0
        self.log_bytes_outstanding = 0
        self.completed_at: Optional[float] = None

    @property
    def fraction_done(self) -> float:
        if self.rows_total == 0:
            return 1.0
        return self.rows_done / self.rows_total

    def estimated_total_cpu_ms(self) -> float:
        sort_factor = math.log2(self.rows_total + 2)
        return self.rows_total * self.CPU_MS_PER_ROW * (1 + 0.1 * sort_factor)

    def estimated_size_bytes(self) -> int:
        pages = max(1, math.ceil(self.rows_total / rows_per_page(self._entry_width)))
        return pages * PAGE_SIZE

    def advance(self, rows: int, now: float = 0.0) -> BuildProgress:
        """Perform up to ``rows`` rows of build work."""
        if self.state in (BuildState.COMPLETED, BuildState.ABORTED):
            return self.progress()
        self.state = BuildState.RUNNING
        todo = min(rows, self.rows_total - self.rows_done)
        self.rows_done += todo
        self.cpu_ms_spent += todo * self.CPU_MS_PER_ROW
        log_bytes = todo * (self._entry_width + 16)
        self.log_bytes_generated += log_bytes
        if self.resumable:
            # Resumable builds allow frequent log truncation.
            self.log_bytes_outstanding = log_bytes
        else:
            self.log_bytes_outstanding += log_bytes
        if self.rows_done >= self.rows_total:
            self._materialize(now)
        return self.progress()

    def pause(self) -> None:
        """Pause a resumable build (no-op state change otherwise allowed)."""
        if self.state is BuildState.RUNNING:
            self.state = BuildState.PAUSED

    def abort(self) -> None:
        if self.state is not BuildState.COMPLETED:
            self.state = BuildState.ABORTED
            self.log_bytes_outstanding = 0

    def _materialize(self, now: float) -> None:
        self.table.create_index(self.definition, created_at=now)
        self.state = BuildState.COMPLETED
        self.completed_at = now
        self.log_bytes_outstanding = 0

    def progress(self) -> BuildProgress:
        return BuildProgress(
            state=self.state,
            fraction_done=self.fraction_done,
            rows_done=self.rows_done,
            rows_total=self.rows_total,
            log_bytes_generated=self.log_bytes_generated,
            cpu_ms_spent=self.cpu_ms_spent,
        )


@dataclasses.dataclass
class DropAttempt:
    """Record of one low-priority drop attempt."""

    at: float
    succeeded: bool
    waited: float


class LowPriorityDropProtocol:
    """Back-off/retry drop of an index under a low-priority Sch-M lock.

    Mirrors Section 8.3: issue the drop at low priority so it never blocks
    concurrent transactions; on timeout, back off exponentially and retry.
    The control plane drives :meth:`attempt` from its scheduler.
    """

    def __init__(
        self,
        lock_manager: LockManager,
        table: Table,
        index_name: str,
        wait_timeout: float = 0.5,
        initial_backoff: float = 5.0,
        backoff_factor: float = 2.0,
        max_attempts: int = 8,
    ) -> None:
        self._locks = lock_manager
        self._table = table
        self.index_name = index_name
        self.wait_timeout = wait_timeout
        self.backoff = initial_backoff
        self.backoff_factor = backoff_factor
        self.max_attempts = max_attempts
        self.attempts: list = []
        self.dropped = False

    def next_retry_delay(self) -> float:
        delay = self.backoff
        self.backoff *= self.backoff_factor
        return delay

    def exhausted(self) -> bool:
        return len(self.attempts) >= self.max_attempts and not self.dropped

    def attempt(self, now: float) -> bool:
        """Try to drop the index at ``now``; True on success."""
        if self.dropped:
            return True
        try:
            grant = self._locks.request_exclusive(
                self._table.name,
                now,
                priority=LockPriority.LOW,
                wait_timeout=self.wait_timeout,
            )
        except LockTimeoutError:
            self.attempts.append(DropAttempt(at=now, succeeded=False, waited=self.wait_timeout))
            return False
        self._table.drop_index(self.index_name)
        self._locks.release_exclusive(self._table.name)
        self.attempts.append(DropAttempt(at=now, succeeded=True, waited=grant.waited))
        self.dropped = True
        return True
