"""Optimizer cost model and the estimation-error mechanism.

Two cost systems coexist, deliberately:

- **Estimated cost** (abstract optimizer units) is what the optimizer and
  the what-if API compute from histograms.  A deterministic per
  (database, table, column, operator-kind) multiplicative error — modeling
  the optimizer's blindness to correlation, skew, and stale statistics —
  perturbs the histogram selectivities.  This is the paper's challenge #3:
  indexes estimated to help can actually hurt.
- **Actual cost** (milliseconds of CPU, logical page reads) is metered by
  the executor from the pages and rows it really touches.

Because the error is keyed deterministically, the same query template is
mis-estimated the same way every time, so the mistake is stable enough for
Query Store statistics and the validator to catch — exactly the
production situation the paper's validation component addresses.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence, Tuple

from repro.engine.query import Predicate
from repro.engine.table import Table
from repro.rng import stable_hash


@dataclasses.dataclass
class CostModelSettings:
    """Tunable constants of the estimated-cost formulas."""

    #: Cost of one sequentially read page.  The constants are calibrated to
    #: the executor's actual-cost scale (ms-equivalents) so that the
    #: optimizer's *systematic* model matches execution and mis-estimation
    #: comes from cardinality errors, as in a real optimizer.
    seq_page: float = 0.045
    #: Cost of one randomly read page (seek traversals, key lookups).
    rand_page: float = 0.11
    #: CPU cost per processed row.
    row_cpu: float = 0.002
    #: Extra per-row CPU for sorting (times log2 of the row count).
    sort_row_cpu: float = 0.0016
    #: Extra per-row CPU for hashing (build + probe).
    hash_row_cpu: float = 0.003
    #: Std-dev of the log-normal estimation error (0 = perfect estimates).
    error_sigma: float = 0.85
    #: Probability that a (table, column) pair is severely mis-estimated,
    #: modeling correlated predicates / out-of-model skew.  Calibrated so
    #: the closed-loop service reverts ~10% of automated actions
    #: (Section 8.1 reports ~11%).
    severe_error_rate: float = 0.10
    #: Multiplier applied to severe under-estimates (estimates too low by
    #: roughly this factor; the optimizer then picks seek plans that touch
    #: far more rows than predicted).
    severe_error_factor: float = 14.0


class CostModel:
    """Selectivity and cost estimation with injected estimation error."""

    def __init__(
        self, db_seed: int, settings: Optional[CostModelSettings] = None
    ) -> None:
        self.db_seed = db_seed
        self.settings = settings or CostModelSettings()

    # ------------------------------------------------------------------
    # Estimation error

    def error_multiplier(self, table: str, column: str, op_kind: str) -> float:
        """Deterministic multiplicative error on a predicate's selectivity.

        Values < 1 under-estimate (dangerous: over-eager seek plans);
        values > 1 over-estimate (indexes look less useful than they are).
        """
        sigma = self.settings.error_sigma
        multiplier = 1.0
        if sigma > 0:
            h = stable_hash(self.db_seed, "esterr", table, column, op_kind)
            unit = (h % (1 << 30)) / float(1 << 30)
            # Box-Muller-free approximation of a standard normal via the
            # inverse-CDF of a logistic, adequate for an error model.
            unit = min(max(unit, 1e-9), 1 - 1e-9)
            z = math.log(unit / (1.0 - unit)) / 1.702
            multiplier = math.exp(sigma * z)
        if self.settings.severe_error_rate > 0:
            severe = stable_hash(self.db_seed, "severe", table, column)
            draw = (severe % (1 << 20)) / float(1 << 20)
            if draw < self.settings.severe_error_rate:
                multiplier /= self.settings.severe_error_factor
        if multiplier == 1.0:
            return 1.0
        return min(50.0, max(0.02, multiplier))

    # ------------------------------------------------------------------
    # Selectivity

    def predicate_selectivity(self, table: Table, predicate: Predicate) -> float:
        """Estimated selectivity of one predicate, error included."""
        from repro.engine.plans import PARAM

        stats = table.statistics.get(predicate.column)
        if predicate.value is PARAM:
            # Join-parameterized equality: estimated at the column density.
            if stats is not None and stats.density:
                return _clamp_selectivity(stats.density, table.row_count)
            return _clamp_selectivity(
                _DEFAULT_SELECTIVITY["eq"], table.row_count
            )
        if stats is None:
            base = _DEFAULT_SELECTIVITY[_op_kind(predicate)]
        elif predicate.is_equality:
            base = stats.selectivity_eq(predicate.value)
        elif predicate.is_range:
            low, high, low_inc, high_inc = predicate.range_bounds()
            base = stats.selectivity_range(low, high, low_inc, high_inc)
        else:  # NEQ
            base = max(0.0, 1.0 - stats.selectivity_eq(predicate.value))
        error = self.error_multiplier(
            table.name, predicate.column, _op_kind(predicate)
        )
        return _clamp_selectivity(base * error, table.row_count)

    def combined_selectivity(
        self, table: Table, predicates: Sequence[Predicate]
    ) -> float:
        """Independence-assumption product of predicate selectivities."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(table, predicate)
        return _clamp_selectivity(selectivity, table.row_count)

    def true_selectivity(
        self, table: Table, predicates: Sequence[Predicate]
    ) -> float:
        """Error-free histogram selectivity (used by tests and oracles)."""
        selectivity = 1.0
        for predicate in predicates:
            stats = table.statistics.get(predicate.column)
            if stats is None:
                selectivity *= _DEFAULT_SELECTIVITY[_op_kind(predicate)]
            elif predicate.is_equality:
                selectivity *= stats.selectivity_eq(predicate.value)
            elif predicate.is_range:
                low, high, low_inc, high_inc = predicate.range_bounds()
                selectivity *= stats.selectivity_range(low, high, low_inc, high_inc)
            else:
                selectivity *= max(0.0, 1.0 - stats.selectivity_eq(predicate.value))
        return _clamp_selectivity(selectivity, table.row_count)

    # ------------------------------------------------------------------
    # Cost formulas (all return abstract optimizer units)

    def scan_cost(self, pages: int, rows: int) -> float:
        return pages * self.settings.seq_page + rows * self.settings.row_cpu

    def seek_cost(
        self, height: int, leaf_pages_touched: float, rows_out: float
    ) -> float:
        io = height * self.settings.rand_page
        io += max(0.0, leaf_pages_touched - 1) * self.settings.seq_page
        return io + rows_out * self.settings.row_cpu

    def lookup_cost(self, rows: float, clustered_height: int) -> float:
        return rows * clustered_height * self.settings.rand_page * 0.5 + (
            rows * self.settings.row_cpu
        )

    def sort_cost(self, rows: float) -> float:
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows + 1) * self.settings.sort_row_cpu

    def hash_cost(self, build_rows: float, probe_rows: float) -> float:
        return (build_rows + probe_rows) * self.settings.hash_row_cpu

    def aggregate_cost(self, rows: float, hashed: bool) -> float:
        per_row = self.settings.hash_row_cpu if hashed else self.settings.row_cpu
        return rows * per_row

    def maintenance_cost(self, index_height: int, rows: float) -> float:
        """Estimated cost of maintaining one index for ``rows`` modifications.

        Mirrors the executor's actual charge: roughly one leaf write per
        modified index entry (upper tree levels are cached).
        """
        return rows * (self.settings.rand_page + self.settings.row_cpu)


@dataclasses.dataclass
class ExecutionCostSettings:
    """Constants converting metered work into *actual* execution metrics."""

    cpu_ms_per_row: float = 0.0020
    cpu_ms_per_page: float = 0.045
    cpu_ms_per_sort_row: float = 0.0016
    cpu_ms_per_hash_row: float = 0.0030
    cpu_ms_per_maintained_entry: float = 0.0080
    #: Mean IO wait per logical read converted into duration (ms).
    io_wait_ms_per_page: float = 0.010
    #: Log-normal sigma of run-to-run measurement noise (concurrency).
    noise_sigma: float = 0.10
    #: Execution path: "vector", "interp", or "auto"; None defers to the
    #: ``REPRO_EXECUTOR`` environment variable (default "auto").  Both
    #: paths produce byte-identical rows and metrics; this only changes
    #: how fast the host executes them.
    executor_mode: Optional[str] = None
    #: In "auto" mode, the minimum scanned-table row count before the
    #: vectorized path is worth the projection build.
    vector_min_rows: int = 256
    #: In "auto" mode, the minimum affected-row count before DML index
    #: maintenance is applied as one grouped batch per index rather than
    #: row at a time.  (``vector`` mode always batches; ``interp`` never
    #: does.)  Charges are identical either way.
    dml_batch_min_rows: int = 8


def _op_kind(predicate: Predicate) -> str:
    if predicate.is_equality:
        return "eq"
    if predicate.is_range:
        return "range"
    return "neq"


_DEFAULT_SELECTIVITY = {"eq": 0.01, "range": 0.25, "neq": 0.9}


def _clamp_selectivity(selectivity: float, row_count: int) -> float:
    floor = 1.0 / row_count if row_count else 0.0
    return min(1.0, max(floor, selectivity)) if row_count else 0.0


def estimate_rows(selectivity: float, row_count: int) -> float:
    """Estimated row count for a selectivity over a table."""
    return selectivity * row_count


__all__: Tuple[str, ...] = (
    "CostModel",
    "CostModelSettings",
    "ExecutionCostSettings",
    "estimate_rows",
)
