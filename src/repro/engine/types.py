"""SQL type system for the engine simulator.

Only the handful of scalar types the synthetic workloads need are modeled.
Each type carries a fixed on-disk width used by the storage layer to compute
rows-per-page, which in turn drives logical-read accounting.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import QueryError


class SqlType(enum.Enum):
    """Scalar column types with fixed storage widths (bytes)."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    BOOL = "bit"
    DATE = "date"
    TEXT = "nvarchar"

    @property
    def width(self) -> int:
        """Approximate storage width in bytes, used for page math."""
        return _WIDTHS[self]

    def coerce(self, value: object) -> object:
        """Coerce a Python value to this SQL type's canonical Python form.

        Raises :class:`QueryError` if the value is not representable.
        ``None`` (SQL NULL) passes through unchanged.
        """
        if value is None:
            return None
        try:
            if self in (SqlType.INT, SqlType.BIGINT, SqlType.DATE):
                return int(value)
            if self is SqlType.FLOAT:
                return float(value)
            if self is SqlType.BOOL:
                return bool(value)
            return str(value)
        except (TypeError, ValueError) as exc:
            raise QueryError(f"cannot coerce {value!r} to {self.value}") from exc

    def render(self, value: object) -> str:
        """Render a value as a T-SQL literal."""
        if value is None:
            return "NULL"
        if self is SqlType.TEXT:
            escaped = str(value).replace("'", "''")
            return f"N'{escaped}'"
        if self is SqlType.BOOL:
            return "1" if value else "0"
        return str(value)


_WIDTHS = {
    SqlType.INT: 4,
    SqlType.BIGINT: 8,
    SqlType.FLOAT: 8,
    SqlType.BOOL: 1,
    SqlType.DATE: 4,
    SqlType.TEXT: 32,
}

#: Logical page size in bytes (SQL Server uses 8 KiB pages).
PAGE_SIZE = 8192

#: Per-row storage overhead (record header, null bitmap, slot entry).
ROW_OVERHEAD = 10


def rows_per_page(row_width: int) -> int:
    """Number of rows that fit on one page given a row width in bytes."""
    return max(1, PAGE_SIZE // (row_width + ROW_OVERHEAD))


def sort_key(value: object) -> tuple:
    """Total-order key placing NULLs first, then by type group.

    SQL orders NULLs before other values in ascending sorts; we mimic that
    while remaining comparable across Python types.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


def row_sort_key(values: tuple) -> tuple:
    """Sort key for a composite key tuple."""
    return tuple(sort_key(value) for value in values)


def compare(left: object, right: object) -> int:
    """Three-way compare with NULLs-first semantics."""
    lkey, rkey = sort_key(left), sort_key(right)
    if lkey < rkey:
        return -1
    if lkey > rkey:
        return 1
    return 0


def type_for_value(value: object) -> Optional[SqlType]:
    """Best-effort inference of a SQL type from a Python value."""
    if value is None:
        return None
    if isinstance(value, bool):
        return SqlType.BOOL
    if isinstance(value, int):
        return SqlType.BIGINT
    if isinstance(value, float):
        return SqlType.FLOAT
    return SqlType.TEXT
