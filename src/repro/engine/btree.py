"""A paged B+ tree with logical-read accounting.

This is the storage structure behind both clustered and non-clustered
indexes.  Every traversal counts the pages (nodes) it touches into a
:class:`PageMeter`, which is how the executor derives ``logical_reads`` —
the metric the paper's validator treats as a primary plan-quality signal
(Section 6).

Keys are tuples of column values.  NULL-safe total ordering is provided by
:func:`repro.engine.types.row_sort_key`; each entry stores its normalized
key alongside the original so comparisons never see raw ``None``.

Deletion removes entries from leaves without rebalancing (underflowed nodes
are merged only when they become empty).  This keeps the implementation
compact while preserving exact key/payload contents; page counts may
slightly overstate an aggressively shrunk tree, which is harmless for the
cost accounting this simulator needs.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.engine.types import row_sort_key
from repro.observability.profiling import count

Key = Tuple[object, ...]
NKey = Tuple[tuple, ...]
Payload = Tuple[object, ...]


class PageMeter:
    """Counts logical page reads performed by storage operations."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages = 0

    def charge(self, pages: int = 1) -> None:
        self.pages += pages

    def reset(self) -> int:
        """Return the current count and reset to zero."""
        count, self.pages = self.pages, 0
        return count


_NULL_METER = PageMeter()


class _Node:
    __slots__ = ("leaf", "nkeys", "children", "keys", "payloads", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.nkeys: List[NKey] = []
        # Internal nodes only:
        self.children: List["_Node"] = []
        # Leaf nodes only:
        self.keys: List[Key] = []
        self.payloads: List[Payload] = []
        self.next: Optional["_Node"] = None


class BPlusTree:
    """An order-configurable B+ tree mapping composite keys to payloads.

    Duplicate keys are allowed; :meth:`seek_prefix` and :meth:`range_scan`
    return every matching entry.  Callers that need uniqueness (e.g. the
    clustered index keyed by primary key) enforce it a level above.
    """

    def __init__(self, leaf_capacity: int = 64, internal_capacity: int = 64):
        self.leaf_capacity = max(4, leaf_capacity)
        self.internal_capacity = max(4, internal_capacity)
        self._root: _Node = _Node(leaf=True)
        self._height = 1
        self._size = 0
        self._leaf_count = 1
        self._internal_count = 0

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def page_count(self) -> int:
        """Total node (page) count, leaves plus internal nodes."""
        return self._leaf_count + self._internal_count

    @property
    def leaf_page_count(self) -> int:
        return self._leaf_count

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[Tuple[Key, Payload]],
        leaf_capacity: int = 64,
        internal_capacity: int = 64,
    ) -> "BPlusTree":
        """Build a tree from entries, sorting them once.

        This mirrors an offline index build: a scan plus a sort, then a
        bottom-up packed construction at ~90% fill.
        """
        tree = cls(leaf_capacity=leaf_capacity, internal_capacity=internal_capacity)
        decorated = sorted(
            ((row_sort_key(key), key, payload) for key, payload in entries),
            key=lambda item: item[0],
        )
        if not decorated:
            return tree
        fill = max(2, int(tree.leaf_capacity * 0.9))
        leaves: List[_Node] = []
        for start in range(0, len(decorated), fill):
            chunk = decorated[start : start + fill]
            leaf = _Node(leaf=True)
            leaf.nkeys = [item[0] for item in chunk]
            leaf.keys = [item[1] for item in chunk]
            leaf.payloads = [item[2] for item in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        level = leaves
        height = 1
        internal_count = 0
        internal_fill = max(2, int(tree.internal_capacity * 0.9))
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), internal_fill):
                chunk = level[start : start + internal_fill]
                parent = _Node(leaf=False)
                parent.children = chunk
                parent.nkeys = [_min_nkey(child) for child in chunk[1:]]
                parents.append(parent)
            internal_count += len(parents)
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        tree._size = len(decorated)
        tree._leaf_count = len(leaves)
        tree._internal_count = internal_count
        return tree

    # ------------------------------------------------------------------
    # Mutation

    def insert(self, key: Key, payload: Payload) -> None:
        count("btree_insert")
        """Insert an entry; duplicates are stored adjacent to equals."""
        nkey = row_sort_key(key)
        split = self._insert(self._root, nkey, key, payload)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.nkeys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._internal_count += 1
        self._size += 1

    def _insert(
        self, node: _Node, nkey: NKey, key: Key, payload: Payload
    ) -> Optional[Tuple[NKey, _Node]]:
        if node.leaf:
            pos = bisect.bisect_right(node.nkeys, nkey)
            node.nkeys.insert(pos, nkey)
            node.keys.insert(pos, key)
            node.payloads.insert(pos, payload)
            if len(node.nkeys) > self.leaf_capacity:
                return self._split_leaf(node)
            return None
        child_pos = bisect.bisect_right(node.nkeys, nkey)
        split = self._insert(node.children[child_pos], nkey, key, payload)
        if split is None:
            return None
        sep, right = split
        node.nkeys.insert(child_pos, sep)
        node.children.insert(child_pos + 1, right)
        if len(node.children) > self.internal_capacity:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[NKey, _Node]:
        mid = len(node.nkeys) // 2
        right = _Node(leaf=True)
        right.nkeys = node.nkeys[mid:]
        right.keys = node.keys[mid:]
        right.payloads = node.payloads[mid:]
        right.next = node.next
        node.nkeys = node.nkeys[:mid]
        node.keys = node.keys[:mid]
        node.payloads = node.payloads[:mid]
        node.next = right
        self._leaf_count += 1
        return right.nkeys[0], right

    def _split_internal(self, node: _Node) -> Tuple[NKey, _Node]:
        mid = len(node.children) // 2
        sep = node.nkeys[mid - 1]
        right = _Node(leaf=False)
        right.nkeys = node.nkeys[mid:]
        right.children = node.children[mid:]
        node.nkeys = node.nkeys[: mid - 1]
        node.children = node.children[:mid]
        self._internal_count += 1
        return sep, right

    def delete(self, key: Key, payload: Optional[Payload] = None) -> int:
        count("btree_delete")
        """Delete entries equal to ``key``.

        If ``payload`` is given only entries with that exact payload are
        removed (needed for non-unique secondary indexes where the payload
        carries the row locator).  Returns the number of entries removed.
        """
        nkey = row_sort_key(key)
        removed = 0
        leaf: Optional[_Node] = self._descend_to_leaf(nkey, _NULL_METER)
        pos = bisect.bisect_left(leaf.nkeys, nkey)
        while leaf is not None:
            if pos >= len(leaf.nkeys):
                leaf = leaf.next
                pos = 0
                continue
            if leaf.nkeys[pos] != nkey:
                break
            if payload is None or leaf.payloads[pos] == payload:
                del leaf.nkeys[pos]
                del leaf.keys[pos]
                del leaf.payloads[pos]
                removed += 1
            else:
                pos += 1
        self._size -= removed
        return removed

    # ------------------------------------------------------------------
    # Lookup

    def _descend_to_leaf(self, nkey: NKey, meter: PageMeter) -> _Node:
        """Descend to the leftmost leaf that can contain ``nkey``.

        Uses ``bisect_left`` on separators so duplicate keys spanning a
        separator boundary are found from their first occurrence.
        """
        node = self._root
        meter.charge()
        while not node.leaf:
            pos = bisect.bisect_left(node.nkeys, nkey)
            node = node.children[pos]
            meter.charge()
        return node

    def _leftmost_leaf(self, meter: PageMeter) -> _Node:
        node = self._root
        meter.charge()
        while not node.leaf:
            node = node.children[0]
            meter.charge()
        return node

    def seek_prefix(
        self, prefix: Key, meter: Optional[PageMeter] = None
    ) -> Iterator[Tuple[Key, Payload]]:
        """Yield all entries whose key begins with ``prefix``."""
        count("btree_seek")
        nprefix = row_sort_key(prefix)
        width = len(nprefix)
        meter = meter if meter is not None else _NULL_METER
        leaf = self._descend_to_leaf(nprefix, meter)
        pos = bisect.bisect_left(leaf.nkeys, nprefix)
        while True:
            if pos >= len(leaf.nkeys):
                leaf = leaf.next
                if leaf is None:
                    return
                meter.charge()
                pos = 0
                continue
            nkey = leaf.nkeys[pos]
            head = nkey[:width]
            if head > nprefix:
                return
            if head == nprefix:
                yield leaf.keys[pos], leaf.payloads[pos]
            pos += 1

    def range_scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        meter: Optional[PageMeter] = None,
    ) -> Iterator[Tuple[Key, Payload]]:
        """Yield entries with ``low <= key <= high`` (bounds optional).

        Bound keys may be shorter than stored keys; prefix comparison
        semantics apply (a 1-column bound against a 2-column key compares
        the first column only at the boundary).
        """
        meter = meter if meter is not None else _NULL_METER
        count("btree_scan" if low is None and high is None else "btree_range_scan")
        if low is None and high is None:
            # Fast path for full scans: stream whole leaves.
            leaf = self._leftmost_leaf(meter)
            while True:
                yield from zip(leaf.keys, leaf.payloads)
                leaf = leaf.next
                if leaf is None:
                    return
                meter.charge()
        nlow: Optional[NKey] = None
        if low is not None:
            nlow = row_sort_key(low)
            leaf = self._descend_to_leaf(nlow, meter)
            pos = bisect.bisect_left(leaf.nkeys, nlow)
        else:
            leaf = self._leftmost_leaf(meter)
            pos = 0
        nhigh = row_sort_key(high) if high is not None else None
        high_width = len(nhigh) if nhigh is not None else 0
        low_width = len(nlow) if nlow is not None else 0
        skipping_low = nlow is not None and not low_inclusive
        while True:
            if pos >= len(leaf.nkeys):
                leaf = leaf.next
                if leaf is None:
                    return
                meter.charge()
                pos = 0
                continue
            nkey = leaf.nkeys[pos]
            if skipping_low:
                if nkey[:low_width] == nlow:
                    pos += 1
                    continue
                skipping_low = False
            if nhigh is not None:
                head = nkey[:high_width]
                if head > nhigh or (head == nhigh and not high_inclusive):
                    return
            yield leaf.keys[pos], leaf.payloads[pos]
            pos += 1

    def scan(self, meter: Optional[PageMeter] = None) -> Iterator[Tuple[Key, Payload]]:
        """Full in-order scan of all entries."""
        return self.range_scan(meter=meter)

    def items(self) -> Iterator[Tuple[Key, Payload]]:
        """Unmetered full scan (for snapshots and tests)."""
        return self.scan()


def _min_nkey(node: _Node) -> NKey:
    while not node.leaf:
        node = node.children[0]
    return node.nkeys[0]
