"""Cost-based query optimizer with a what-if API, MI emission, and a plan cache.

The optimizer enumerates access paths (clustered scan/seek, secondary index
seek with optional key lookup, covering index scan), join strategies
(nested-loop with parameterized inner seek, hash join), and aggregation /
ordering operators, picking the plan with the lowest *estimated* cost under
the :class:`repro.engine.cost_model.CostModel`.

SELECT planning costs the **complete** plan — access + join + aggregate +
sort + top — independently for every access candidate and returns the true
argmin.  That makes plan choice monotone by construction: hiding indexes
only removes candidates (the minimum can only rise), and hypothetical
indexes only add candidates (the minimum can only fall).  An earlier
"effective cost" heuristic credited order-providing access paths with an
avoided-sort bonus derived from an arbitrary candidate's cardinality,
which both violated monotonicity and mispriced ordered plans under
aggregation (where the real saving is only the stream-vs-hash delta on
far fewer rows).

Results are memoized in a :class:`repro.engine.plan_cache.PlanCache` keyed
by (query, per-table version fingerprint, what-if configuration); see that
module for the staleness rules.

Two features mirror the SQL Server surfaces the paper's service depends on:

- **What-if mode** (Section 5.3): callers pass hypothetical index
  definitions via ``extra_indexes``; the optimizer costs them from
  closed-form shape estimates without materializing anything.  ``excluded``
  similarly hides existing indexes, which is how index *drops* are costed.
- **Missing-index emission** (Section 5.2): during normal (non-what-if)
  optimization, the optimizer compares the chosen plan against an ideal
  single-table index built from the query's own sargable predicates and, if
  the ideal index would beat the plan, reports a missing-index candidate to
  the DMV sink.  Deliberately local: join, GROUP BY and ORDER BY columns
  are *not* considered — exactly the MI limitation the paper describes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.cost_model import CostModel
from repro.engine.plan_cache import PlanCache, PlanCacheEntry
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    ClusteredSeekNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    IndexSeekNode,
    InsertPlanNode,
    KeyLookupNode,
    DeletePlanNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
    UpdatePlanNode,
)
from repro.engine.query import (
    DeleteQuery,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.engine.schema import IndexDefinition
from repro.engine.table import IndexStatsView, Table
from repro.errors import ExecutionError, OptimizeError, UnknownTableError
from repro.observability.profiling import count, profile

#: Minimum relative improvement for the optimizer to report an MI candidate.
MI_REPORT_THRESHOLD = 0.05

#: Signature for a missing-index sink callback:
#: (table, equality_cols, inequality_cols, include_cols, best_cost, impact_pct)
MiSink = Callable[[str, Tuple[str, ...], Tuple[str, ...], Tuple[str, ...], float, float], None]


@dataclasses.dataclass
class _AccessCandidate:
    """One candidate access path with its bookkeeping."""

    node: PlanNode
    out_rows: float
    cost: float
    #: Columns the output is ordered by (ascending), outermost first.
    output_order: Tuple[str, ...]
    index_name: Optional[str] = None


@dataclasses.dataclass
class _JoinContext:
    """Outer-candidate-independent join planning state (computed once)."""

    join: object
    right_rows: float
    distinct: float
    #: Best per-probe parameterized seek, or None if the inner side only scans.
    nl_inner: Optional[_AccessCandidate]
    #: Best build-side access for a hash join.
    hash_inner: _AccessCandidate


class Optimizer:
    """Plans queries against a database's tables."""

    def __init__(self, tables: Dict[str, Table], cost_model: CostModel) -> None:
        self._tables = tables
        self._cost_model = cost_model
        #: Number of optimizations performed in what-if mode (metered for
        #: DTA resource accounting).
        self.whatif_calls = 0
        #: Memoized plans (normal mode and what-if mode alike).
        self.plan_cache = PlanCache()

    # ------------------------------------------------------------------
    # Entry point

    def optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition] = (),
        excluded: frozenset = frozenset(),
        mi_sink: Optional[MiSink] = None,
    ) -> PlanNode:
        """Produce the cheapest estimated plan for ``query``.

        ``extra_indexes``/``excluded`` put the optimizer in what-if mode
        (hypothetical configuration); MI candidates are only emitted in
        normal mode (``mi_sink`` provided and no hypothetical config).
        Results are memoized in :attr:`plan_cache`; on a hit the MI
        emissions recorded at compute time are replayed into ``mi_sink``
        so the DMV accounting is cache-transparent.
        """
        extra_indexes = tuple(extra_indexes)
        excluded = frozenset(excluded)
        whatif = bool(extra_indexes) or bool(excluded)
        if whatif:
            self.whatif_calls += 1
        key = self._cache_key(query, extra_indexes, excluded)
        if key is not None:
            entry = self.plan_cache.lookup(key)
            if entry is not None:
                count("plan_cache_hit")
                if mi_sink is not None and not whatif:
                    for emission in entry.mi_emissions:
                        mi_sink(*emission)
                return entry.plan
            count("plan_cache_miss")
        emissions: List[tuple] = []
        with profile("optimizer_plan_search"):
            plan = self._optimize(
                query, extra_indexes, excluded, emissions.append, whatif
            )
        if mi_sink is not None and not whatif:
            for emission in emissions:
                mi_sink(*emission)
        if key is not None:
            self.plan_cache.store(
                key,
                PlanCacheEntry(
                    plan=plan,
                    mi_emissions=tuple(emissions),
                    tables=self._referenced_tables(query),
                ),
            )
        return plan

    def _cache_key(
        self,
        query,
        extra_indexes: Tuple[IndexDefinition, ...],
        excluded: frozenset,
    ) -> Optional[Hashable]:
        """The memoization key, or None when the query is not cacheable.

        Queries and index definitions are frozen dataclasses, so the key
        hashes structurally; anything unhashable (e.g. exotic predicate
        values) simply bypasses the cache rather than erroring.
        """
        fingerprint = []
        for name in self._referenced_tables(query):
            table = self._tables.get(name)
            if table is None:
                return None  # planning will raise UnknownTableError
            fingerprint.append(
                (name, table.schema_version, table.stats_version,
                 table.data_version)
            )
        key = (query, tuple(fingerprint), tuple(sorted(excluded)), extra_indexes)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    @staticmethod
    def _referenced_tables(query) -> Tuple[str, ...]:
        join = getattr(query, "join", None)
        if join is not None:
            return (query.table, join.table)
        return (query.table,)

    def _optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        record_emission: Callable[[tuple], None],
        whatif: bool,
    ) -> PlanNode:
        if isinstance(query, SelectQuery):
            plan = self._plan_select(query, extra_indexes, excluded)
            if not whatif:
                self._emit_missing_indexes(query, plan, record_emission)
            return plan
        if isinstance(query, InsertQuery):
            if query.bulk and whatif:
                raise OptimizeError(
                    "BULK INSERT cannot be optimized in what-if mode"
                )
            return self._plan_insert(query, extra_indexes, excluded)
        if isinstance(query, UpdateQuery):
            plan = self._plan_update(query, extra_indexes, excluded)
            if not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, record_emission)
            return plan
        if isinstance(query, DeleteQuery):
            plan = self._plan_delete(query, extra_indexes, excluded)
            if not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, record_emission)
            return plan
        raise OptimizeError(f"cannot optimize {type(query).__name__}")

    # ------------------------------------------------------------------
    # Helpers

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _visible_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        visible: List[Tuple[IndexDefinition, IndexStatsView]] = []
        for index in table.indexes.values():
            if index.name in excluded:
                continue
            visible.append((index.definition, index.stats_view()))
        for definition in extra_indexes:
            if definition.table != table.name or definition.name in excluded:
                continue
            visible.append((definition, table.hypothetical_stats_view(definition)))
        return visible

    # ------------------------------------------------------------------
    # Access-path enumeration

    def _access_candidates(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[_AccessCandidate]:
        model = self._cost_model
        rows = table.row_count
        all_sel = model.combined_selectivity(table, predicates)
        out_rows = max(0.0, all_sel * rows) if predicates else float(rows)
        candidates: List[_AccessCandidate] = []

        # 1. Clustered scan (always available).
        cview = table.clustered_stats_view()
        scan_cost = model.scan_cost(cview.leaf_pages, rows)
        candidates.append(
            _AccessCandidate(
                node=ClusteredScanNode(
                    est_rows=out_rows,
                    est_cost=scan_cost,
                    table=table.name,
                    residual=predicates,
                ),
                out_rows=out_rows,
                cost=scan_cost,
                output_order=table.schema.primary_key,
            )
        )

        # 2. Clustered seek on a PK prefix.
        pk_candidate = self._clustered_seek_candidate(table, predicates, out_rows)
        if pk_candidate is not None:
            candidates.append(pk_candidate)

        # 3. Secondary indexes: seeks (covering or + lookup) and covering scans.
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            candidate = self._index_seek_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
            candidate = self._index_scan_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _clustered_seek_candidate(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        pk = table.schema.primary_key
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in pk:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(pk):
            next_column = pk[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        view = table.clustered_stats_view()
        matched = seek_sel * table.row_count
        pages = max(1.0, seek_sel * view.leaf_pages)
        residual = tuple(p for p in predicates if p not in seek_preds)
        cost = model.seek_cost(view.height, pages, matched)
        cost += matched * model.settings.row_cpu * len(residual)
        node = ClusteredSeekNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=residual,
        )
        remaining_order = pk[len(eq_preds):]
        return _AccessCandidate(
            node=node, out_rows=out_rows, cost=cost, output_order=remaining_order
        )

    def _index_seek_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in definition.key_columns:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(definition.key_columns):
            next_column = definition.key_columns[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        matched = seek_sel * table.row_count
        leaf_pages = max(1.0, seek_sel * view.leaf_pages)
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        leftover = [p for p in predicates if p not in seek_preds]
        index_residual = tuple(p for p in leftover if p.column in index_columns)
        lookup_residual = tuple(p for p in leftover if p.column not in index_columns)
        covering = all(column in index_columns for column in needed_columns)
        rows_after_index = matched * model.combined_selectivity(
            table, index_residual
        ) if index_residual else matched
        cost = model.seek_cost(view.height, leaf_pages, matched)
        cost += matched * model.settings.row_cpu * len(index_residual)
        remaining_order = definition.key_columns[len(eq_preds):]
        seek_node = IndexSeekNode(
            est_rows=rows_after_index if covering and not lookup_residual else out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=index_residual,
            covering=covering and not lookup_residual,
            hypothetical=definition.hypothetical,
        )
        if covering and not lookup_residual:
            return _AccessCandidate(
                node=seek_node,
                out_rows=rows_after_index,
                cost=cost,
                output_order=remaining_order,
                index_name=definition.name,
            )
        cview = table.clustered_stats_view()
        lookup = model.lookup_cost(rows_after_index, cview.height)
        total = cost + lookup
        node = KeyLookupNode(
            est_rows=out_rows,
            est_cost=total,
            child=seek_node,
            table=table.name,
            residual=lookup_residual,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=total,
            output_order=remaining_order,
            index_name=definition.name,
        )

    def _index_scan_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        """Covering leaf scan of a narrower index (cheaper than table scan)."""
        model = self._cost_model
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        if not all(column in index_columns for column in needed_columns):
            return None
        if not all(p.column in index_columns for p in predicates):
            return None
        cost = model.scan_cost(view.leaf_pages, table.row_count)
        node = IndexScanNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            residual=predicates,
            hypothetical=definition.hypothetical,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=cost,
            output_order=definition.key_columns,
            index_name=definition.name,
        )

    def _best_access(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> _AccessCandidate:
        """Cheapest access path by its own cost (no downstream context).

        Used where the access path *is* the whole read — DML source,
        hash-join build side, MI baseline.  SELECT planning instead costs
        the complete plan per candidate in :meth:`_plan_select`.
        """
        candidates = self._access_candidates(
            table, predicates, needed_columns, extra_indexes, excluded
        )
        return min(candidates, key=lambda c: c.cost)

    # ------------------------------------------------------------------
    # SELECT planning

    def _plan_select(
        self,
        query: SelectQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        """True min-cost search: finish the full plan per access candidate.

        Every candidate is carried through join, aggregation, sort, and
        top costing independently, and the cheapest *complete* plan wins.
        Each candidate's final cost is independent of which other
        candidates were enumerated, so hiding indexes (fewer candidates)
        can never lower the minimum and hypothetical indexes (more
        candidates) can never raise it — the monotonicity the what-if API
        relies on holds by construction.
        """
        table = self._table(query.table)
        needed = query.referenced_columns()
        candidates = self._access_candidates(
            table, query.predicates, needed, extra_indexes, excluded
        )
        if query.index_hint is not None:
            candidates = [
                c for c in candidates if c.index_name == query.index_hint
            ]
            if not candidates:
                raise ExecutionError(
                    f"query hints index {query.index_hint!r} which does not "
                    f"exist on table {table.name!r}"
                )
        join_ctx = None
        if query.join is not None:
            join_ctx = self._join_context(query, extra_indexes, excluded)
        best_plan: Optional[PlanNode] = None
        best_cost = math.inf
        for candidate in candidates:
            plan, cost = self._finish_select(query, table, candidate, join_ctx)
            if plan is not None and cost < best_cost:
                best_plan, best_cost = plan, cost
        assert best_plan is not None  # clustered scan always completes
        return best_plan

    def _finish_select(
        self,
        query: SelectQuery,
        table: Table,
        candidate: _AccessCandidate,
        join_ctx: Optional["_JoinContext"],
    ) -> Tuple[Optional[PlanNode], float]:
        """Complete one access candidate into a full plan and its cost."""
        plan = candidate.node
        rows = candidate.out_rows
        order = candidate.output_order
        cost = candidate.cost

        if join_ctx is not None:
            plan, rows, order, cost = self._apply_join(
                join_ctx, plan, rows, order, cost
            )

        if query.group_by or query.aggregates:
            plan, rows, order, cost = self._plan_aggregate(
                query, table, plan, rows, order, cost
            )

        if query.order_by:
            wanted = tuple(i.column for i in query.order_by)
            # Access paths deliver ascending order only, so any descending
            # item forces a Sort regardless of column match.
            satisfied = all(
                i.ascending for i in query.order_by
            ) and _order_satisfied(order, wanted)
            if not satisfied:
                cost += self._cost_model.sort_cost(rows)
                plan = SortNode(
                    est_rows=rows,
                    est_cost=cost,
                    child=plan,
                    order_by=query.order_by,
                )
                order = wanted

        if query.limit is not None:
            rows = min(rows, float(query.limit))
            plan = TopNode(
                est_rows=rows, est_cost=cost, child=plan, limit=query.limit
            )
        return plan, cost

    def _join_context(
        self,
        query: SelectQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> "_JoinContext":
        """Inner-side planning shared by every outer access candidate.

        The inner side's best per-probe seek and best build-side access do
        not depend on the outer candidate, so they are computed once per
        SELECT rather than once per candidate.
        """
        join = query.join
        right = self._table(join.table)
        model = self._cost_model
        right_needed = tuple(
            dict.fromkeys(
                (join.right_column,)
                + tuple(p.column for p in join.predicates)
                + tuple(join.select_columns)
            )
        )
        right_sel = model.combined_selectivity(right, join.predicates)
        right_rows = right_sel * right.row_count
        distinct = _distinct_estimate(right, join.right_column)
        # Nested loop: parameterized seek on the inner side.
        param_pred = Predicate(join.right_column, Op.EQ, PARAM)
        inner_preds = (param_pred,) + tuple(join.predicates)
        nl_inner = self._nl_inner_access(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        # Hash join: scan both sides, build on inner.
        hash_inner = self._best_access(
            right, tuple(join.predicates), right_needed, extra_indexes, excluded
        )
        return _JoinContext(
            join=join,
            right_rows=right_rows,
            distinct=distinct,
            nl_inner=nl_inner,
            hash_inner=hash_inner,
        )

    def _apply_join(
        self,
        ctx: "_JoinContext",
        outer_plan: PlanNode,
        outer_rows: float,
        outer_order: Tuple[str, ...],
        outer_cost: float,
    ):
        model = self._cost_model
        # Join output cardinality via the containment assumption.
        join_rows = max(
            1.0, outer_rows * ctx.right_rows / max(1.0, ctx.distinct)
        )
        nl_cost = None
        if ctx.nl_inner is not None:
            nl_cost = outer_cost + outer_rows * ctx.nl_inner.cost
        hash_cost = (
            outer_cost
            + ctx.hash_inner.cost
            + model.hash_cost(ctx.right_rows, outer_rows)
        )
        if nl_cost is not None and nl_cost <= hash_cost:
            plan = NestedLoopJoinNode(
                est_rows=join_rows,
                est_cost=nl_cost,
                outer=outer_plan,
                inner=ctx.nl_inner.node,
                join=ctx.join,
            )
            return plan, join_rows, outer_order, nl_cost
        plan = HashJoinNode(
            est_rows=join_rows,
            est_cost=hash_cost,
            outer=outer_plan,
            inner=ctx.hash_inner.node,
            join=ctx.join,
        )
        return plan, join_rows, (), hash_cost

    def _nl_inner_access(
        self,
        right: Table,
        inner_preds: Tuple[Predicate, ...],
        right_needed: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> Optional[_AccessCandidate]:
        """Best per-probe access for the inner side, or None if only scans.

        A nested loop over a full inner scan per probe is almost never
        competitive; we only return seek-capable candidates so the planner
        falls back to hash join otherwise.
        """
        candidates = self._access_candidates(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        seekable = [
            c
            for c in candidates
            if isinstance(c.node, (ClusteredSeekNode, IndexSeekNode))
            or (
                isinstance(c.node, KeyLookupNode)
                and isinstance(c.node.child, IndexSeekNode)
            )
        ]
        param_ok = []
        for c in seekable:
            seek_node = c.node.child if isinstance(c.node, KeyLookupNode) else c.node
            eq_values = [p.value for p in seek_node.eq_predicates]
            if any(value is PARAM for value in eq_values):
                param_ok.append(c)
        if not param_ok:
            return None
        return min(param_ok, key=lambda c: c.cost)

    def _plan_aggregate(
        self,
        query: SelectQuery,
        table: Table,
        plan: PlanNode,
        rows: float,
        order: Tuple[str, ...],
        cost: float,
    ):
        model = self._cost_model
        if query.group_by:
            groups = 1.0
            for column in query.group_by:
                groups *= _distinct_estimate(table, column)
            groups = min(rows, max(1.0, groups))
        else:
            groups = 1.0
        if query.group_by and _order_satisfied(order, query.group_by):
            cost += model.aggregate_cost(rows, hashed=False)
            plan = StreamAggregateNode(
                est_rows=groups,
                est_cost=cost,
                child=plan,
                group_by=query.group_by,
                aggregates=query.aggregates,
            )
            return plan, groups, query.group_by, cost
        cost += model.aggregate_cost(rows, hashed=True)
        plan = HashAggregateNode(
            est_rows=groups,
            est_cost=cost,
            child=plan,
            group_by=query.group_by,
            aggregates=query.aggregates,
        )
        return plan, groups, (), cost

    # ------------------------------------------------------------------
    # DML planning

    def _maintained_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        changed_columns: Optional[Sequence[str]] = None,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        maintained = []
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            if changed_columns is not None:
                relevant = set(definition.all_columns) | set(
                    table.schema.primary_key
                )
                if not any(c in relevant for c in changed_columns):
                    continue
            maintained.append((definition, view))
        return maintained

    def _plan_insert(
        self,
        query: InsertQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = float(len(query.rows))
        cview = table.clustered_stats_view()
        cost = model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return InsertPlanNode(
            est_rows=rows,
            est_cost=cost,
            table=table.name,
            row_count=len(query.rows),
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_update(
        self,
        query: UpdateQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(
            table, extra_indexes, excluded, query.assigned_columns
        )
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += 2 * model.maintenance_cost(view.height, rows)
        return UpdatePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            assignments=query.assignments,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_delete(
        self,
        query: DeleteQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return DeletePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    # ------------------------------------------------------------------
    # Missing-index emission

    def _emit_missing_indexes(
        self,
        query: SelectQuery,
        plan: PlanNode,
        record: Callable[[tuple], None],
    ) -> None:
        # MI's analysis is local, "predominantly in the leaf node of a
        # plan" (Section 5.1.1): the include list captures the plan leaf's
        # output — selected and filtered columns — but NOT columns needed
        # by upstream joins, aggregations, or sorts.
        leaf_columns = tuple(
            dict.fromkeys(
                tuple(query.select_columns)
                + tuple(p.column for p in query.predicates)
            )
        )
        self._emit_for_table(
            query.table,
            query.predicates,
            leaf_columns,
            plan.est_cost,
            record,
        )
        if query.join is not None:
            join_needed = tuple(
                dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
            )
            self._emit_for_table(
                query.join.table,
                tuple(query.join.predicates),
                join_needed,
                plan.est_cost,
                record,
            )

    def _emit_dml_missing_indexes(
        self, query, plan: PlanNode, record: Callable[[tuple], None]
    ) -> None:
        self._emit_for_table(
            query.table,
            query.predicates,
            tuple(p.column for p in query.predicates),
            plan.est_cost,
            record,
        )

    def _emit_for_table(
        self,
        table_name: str,
        predicates: Tuple[Predicate, ...],
        referenced: Tuple[str, ...],
        plan_cost: float,
        record: Callable[[tuple], None],
    ) -> None:
        """Compare the current plan to an ideal local index; report if better.

        MI semantics (Section 5.2): equality predicate columns become
        EQUALITY columns, range predicate columns become INEQUALITY columns,
        other referenced columns become INCLUDE columns.  No join/group-by/
        order-by awareness and no maintenance costing.
        """
        if not predicates:
            return
        table = self._table(table_name)
        if table.row_count == 0:
            return
        eq_cols = tuple(
            dict.fromkeys(p.column for p in predicates if p.is_equality)
        )
        ineq_cols = tuple(
            dict.fromkeys(
                p.column
                for p in predicates
                if p.is_range and p.column not in eq_cols
            )
        )
        if not eq_cols and not ineq_cols:
            return
        key_cols = eq_cols + ineq_cols[:1]
        include_cols = tuple(
            c for c in referenced if c not in key_cols
        ) + ineq_cols[1:]
        include_cols = tuple(dict.fromkeys(include_cols))
        ideal = IndexDefinition(
            name="_mi_ideal",
            table=table_name,
            key_columns=key_cols,
            included_columns=tuple(
                c for c in include_cols if c not in key_cols
            ),
            hypothetical=True,
        )
        try:
            view = table.hypothetical_stats_view(ideal)
        except Exception:
            return
        candidate = self._index_seek_candidate(
            table,
            ideal,
            view,
            predicates,
            referenced,
            out_rows=self._cost_model.combined_selectivity(table, predicates)
            * table.row_count,
        )
        if candidate is None:
            return
        # Compare against the best access over *existing* structures only.
        best_existing = self._best_access(
            table, predicates, referenced, (), frozenset()
        )
        if candidate.cost >= best_existing.cost * (1.0 - MI_REPORT_THRESHOLD):
            return
        impact = 100.0 * (1.0 - candidate.cost / best_existing.cost)
        record(
            (
                table_name,
                eq_cols,
                ineq_cols,
                ideal.included_columns,
                best_existing.cost,
                impact,
            )
        )


# ----------------------------------------------------------------------
# Small helpers


def _predicates_by_column(
    predicates: Sequence[Predicate],
) -> Dict[str, List[Predicate]]:
    by_column: Dict[str, List[Predicate]] = {}
    for predicate in predicates:
        by_column.setdefault(predicate.column, []).append(predicate)
    return by_column


def _first_equality(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_equality:
            return predicate
    return None


def _first_range(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_range:
            return predicate
    return None


def _order_satisfied(
    available: Tuple[str, ...], wanted: Tuple[str, ...]
) -> bool:
    """True if ``available`` ordering covers ``wanted`` as a prefix."""
    if not wanted:
        return True
    if len(wanted) > len(available):
        return False
    return tuple(available[: len(wanted)]) == tuple(wanted)


def _distinct_estimate(table: Table, column: str) -> float:
    stats = table.statistics.get(column)
    if stats is not None and stats.distinct_count:
        return float(stats.distinct_count)
    return max(1.0, table.row_count / 10.0)
