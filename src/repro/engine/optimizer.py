"""Cost-based query optimizer with a what-if API, MI emission, and a plan cache.

The optimizer enumerates access paths (clustered scan/seek, secondary index
seek with optional key lookup, covering index scan), join strategies
(nested-loop with parameterized inner seek, hash join), and aggregation /
ordering operators, picking the plan with the lowest *estimated* cost under
the :class:`repro.engine.cost_model.CostModel`.

SELECT planning costs the **complete** plan — access + join + aggregate +
sort + top — independently for every access candidate and returns the true
argmin.  That makes plan choice monotone by construction: hiding indexes
only removes candidates (the minimum can only rise), and hypothetical
indexes only add candidates (the minimum can only fall).  An earlier
"effective cost" heuristic credited order-providing access paths with an
avoided-sort bonus derived from an arbitrary candidate's cardinality,
which both violated monotonicity and mispriced ordered plans under
aggregation (where the real saving is only the stream-vs-hash delta on
far fewer rows).

Results are memoized in a :class:`repro.engine.plan_cache.PlanCache` keyed
by (query, per-table version fingerprint, what-if configuration); see that
module for the staleness rules.

Two features mirror the SQL Server surfaces the paper's service depends on:

- **What-if mode** (Section 5.3): callers pass hypothetical index
  definitions via ``extra_indexes``; the optimizer costs them from
  closed-form shape estimates without materializing anything.  ``excluded``
  similarly hides existing indexes, which is how index *drops* are costed.
- **Missing-index emission** (Section 5.2): during normal (non-what-if)
  optimization, the optimizer compares the chosen plan against an ideal
  single-table index built from the query's own sargable predicates and, if
  the ideal index would beat the plan, reports a missing-index candidate to
  the DMV sink.  Deliberately local: join, GROUP BY and ORDER BY columns
  are *not* considered — exactly the MI limitation the paper describes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.cost_model import CostModel
from repro.engine.plan_cache import PlanCache, PlanCacheEntry
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    ClusteredSeekNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    IndexSeekNode,
    InsertPlanNode,
    KeyLookupNode,
    DeletePlanNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
    UpdatePlanNode,
)
from repro.engine.query import (
    DeleteQuery,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.engine.schema import IndexDefinition
from repro.engine.table import IndexStatsView, Table
from repro.errors import ExecutionError, OptimizeError, UnknownTableError
from repro.observability.profiling import count, profile

#: Minimum relative improvement for the optimizer to report an MI candidate.
MI_REPORT_THRESHOLD = 0.05

#: Signature for a missing-index sink callback:
#: (table, equality_cols, inequality_cols, include_cols, best_cost, impact_pct)
MiSink = Callable[[str, Tuple[str, ...], Tuple[str, ...], Tuple[str, ...], float, float], None]


@dataclasses.dataclass
class _AccessCandidate:
    """One candidate access path with its bookkeeping."""

    node: PlanNode
    out_rows: float
    cost: float
    #: Columns the output is ordered by (ascending), outermost first.
    output_order: Tuple[str, ...]
    index_name: Optional[str] = None


@dataclasses.dataclass
class _JoinContext:
    """Outer-candidate-independent join planning state (computed once)."""

    join: object
    right_rows: float
    distinct: float
    #: Best per-probe parameterized seek, or None if the inner side only scans.
    nl_inner: Optional[_AccessCandidate]
    #: Best build-side access for a hash join.
    hash_inner: _AccessCandidate


@dataclasses.dataclass
class BatchPricingStats:
    """Monotone counters for the batched what-if pricer (per engine)."""

    #: Pricers created (one per (statement, excluded-set) batch).
    batches: int = 0
    #: Hypothetical configurations priced through a pricer.
    configurations: int = 0
    #: Pricers that found their statement substrate memoized.
    substrate_hits: int = 0
    #: Pricers that had to build the statement substrate.
    substrate_misses: int = 0
    #: Configurations delegated to the scalar ``optimize()`` path.
    scalar_fallbacks: int = 0


class Optimizer:
    """Plans queries against a database's tables."""

    def __init__(self, tables: Dict[str, Table], cost_model: CostModel) -> None:
        self._tables = tables
        self._cost_model = cost_model
        #: Number of optimizations performed in what-if mode (metered for
        #: DTA resource accounting).
        self.whatif_calls = 0
        #: Memoized plans (normal mode and what-if mode alike).
        self.plan_cache = PlanCache()
        #: Counters for the batched what-if pricer.
        self.batch_stats = BatchPricingStats()

    # ------------------------------------------------------------------
    # Entry point

    def optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition] = (),
        excluded: frozenset = frozenset(),
        mi_sink: Optional[MiSink] = None,
    ) -> PlanNode:
        """Produce the cheapest estimated plan for ``query``.

        ``extra_indexes``/``excluded`` put the optimizer in what-if mode
        (hypothetical configuration); MI candidates are only emitted in
        normal mode (``mi_sink`` provided and no hypothetical config).
        Results are memoized in :attr:`plan_cache`; on a hit the MI
        emissions recorded at compute time are replayed into ``mi_sink``
        so the DMV accounting is cache-transparent.
        """
        extra_indexes = tuple(extra_indexes)
        excluded = frozenset(excluded)
        whatif = bool(extra_indexes) or bool(excluded)
        if whatif:
            self.whatif_calls += 1
        key = self._cache_key(query, extra_indexes, excluded)
        if key is not None:
            entry = self.plan_cache.lookup(key)
            if entry is not None:
                count("plan_cache_hit")
                if mi_sink is not None and not whatif:
                    for emission in entry.mi_emissions:
                        mi_sink(*emission)
                return entry.plan
            count("plan_cache_miss")
        emissions: List[tuple] = []
        with profile("optimizer_plan_search"):
            plan = self._optimize(
                query, extra_indexes, excluded, emissions.append, whatif
            )
        if mi_sink is not None and not whatif:
            for emission in emissions:
                mi_sink(*emission)
        if key is not None:
            self.plan_cache.store(
                key,
                PlanCacheEntry(
                    plan=plan,
                    mi_emissions=tuple(emissions),
                    tables=self._referenced_tables(query),
                ),
            )
        return plan

    def batch_pricer(
        self, query, excluded: frozenset = frozenset()
    ) -> "BatchPricer":
        """A pricer that costs many hypothetical configurations of ``query``.

        The pricer performs the query-invariant work (predicate analysis,
        base access-path costing, join/aggregate/sort shape completion)
        once, then prices each configuration as an incremental delta; see
        :class:`BatchPricer`.  Plans and costs are bit-identical to
        per-configuration :meth:`optimize` calls.
        """
        return BatchPricer(self, query, frozenset(excluded))

    def _cache_key(
        self,
        query,
        extra_indexes: Tuple[IndexDefinition, ...],
        excluded: frozenset,
    ) -> Optional[Hashable]:
        """The memoization key, or None when the query is not cacheable.

        Queries and index definitions are frozen dataclasses, so the key
        hashes structurally; anything unhashable (e.g. exotic predicate
        values) simply bypasses the cache rather than erroring.
        """
        fingerprint = []
        for name in self._referenced_tables(query):
            table = self._tables.get(name)
            if table is None:
                return None  # planning will raise UnknownTableError
            fingerprint.append(
                (name, table.schema_version, table.stats_version,
                 table.data_version)
            )
        key = (query, tuple(fingerprint), tuple(sorted(excluded)), extra_indexes)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    @staticmethod
    def _referenced_tables(query) -> Tuple[str, ...]:
        join = getattr(query, "join", None)
        if join is not None:
            return (query.table, join.table)
        return (query.table,)

    def _optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        record_emission: Callable[[tuple], None],
        whatif: bool,
    ) -> PlanNode:
        if isinstance(query, SelectQuery):
            plan = self._plan_select(query, extra_indexes, excluded)
            if not whatif:
                self._emit_missing_indexes(query, plan, record_emission)
            return plan
        if isinstance(query, InsertQuery):
            if query.bulk and whatif:
                raise OptimizeError(
                    "BULK INSERT cannot be optimized in what-if mode"
                )
            return self._plan_insert(query, extra_indexes, excluded)
        if isinstance(query, UpdateQuery):
            plan = self._plan_update(query, extra_indexes, excluded)
            if not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, record_emission)
            return plan
        if isinstance(query, DeleteQuery):
            plan = self._plan_delete(query, extra_indexes, excluded)
            if not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, record_emission)
            return plan
        raise OptimizeError(f"cannot optimize {type(query).__name__}")

    # ------------------------------------------------------------------
    # Helpers

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _visible_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        visible: List[Tuple[IndexDefinition, IndexStatsView]] = []
        for index in table.indexes.values():
            if index.name in excluded:
                continue
            visible.append((index.definition, index.stats_view()))
        for definition in extra_indexes:
            if definition.table != table.name or definition.name in excluded:
                continue
            visible.append((definition, table.hypothetical_stats_view(definition)))
        return visible

    # ------------------------------------------------------------------
    # Access-path enumeration

    def _access_candidates(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[_AccessCandidate]:
        model = self._cost_model
        rows = table.row_count
        all_sel = model.combined_selectivity(table, predicates)
        out_rows = max(0.0, all_sel * rows) if predicates else float(rows)
        candidates: List[_AccessCandidate] = []

        # 1. Clustered scan (always available).
        cview = table.clustered_stats_view()
        scan_cost = model.scan_cost(cview.leaf_pages, rows)
        candidates.append(
            _AccessCandidate(
                node=ClusteredScanNode(
                    est_rows=out_rows,
                    est_cost=scan_cost,
                    table=table.name,
                    residual=predicates,
                ),
                out_rows=out_rows,
                cost=scan_cost,
                output_order=table.schema.primary_key,
            )
        )

        # 2. Clustered seek on a PK prefix.
        pk_candidate = self._clustered_seek_candidate(table, predicates, out_rows)
        if pk_candidate is not None:
            candidates.append(pk_candidate)

        # 3. Secondary indexes: seeks (covering or + lookup) and covering scans.
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            candidate = self._index_seek_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
            candidate = self._index_scan_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _clustered_seek_candidate(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        pk = table.schema.primary_key
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in pk:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(pk):
            next_column = pk[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        view = table.clustered_stats_view()
        matched = seek_sel * table.row_count
        pages = max(1.0, seek_sel * view.leaf_pages)
        residual = tuple(p for p in predicates if p not in seek_preds)
        cost = model.seek_cost(view.height, pages, matched)
        cost += matched * model.settings.row_cpu * len(residual)
        node = ClusteredSeekNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=residual,
        )
        remaining_order = pk[len(eq_preds):]
        return _AccessCandidate(
            node=node, out_rows=out_rows, cost=cost, output_order=remaining_order
        )

    def _index_seek_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in definition.key_columns:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(definition.key_columns):
            next_column = definition.key_columns[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        matched = seek_sel * table.row_count
        leaf_pages = max(1.0, seek_sel * view.leaf_pages)
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        leftover = [p for p in predicates if p not in seek_preds]
        index_residual = tuple(p for p in leftover if p.column in index_columns)
        lookup_residual = tuple(p for p in leftover if p.column not in index_columns)
        covering = all(column in index_columns for column in needed_columns)
        rows_after_index = matched * model.combined_selectivity(
            table, index_residual
        ) if index_residual else matched
        cost = model.seek_cost(view.height, leaf_pages, matched)
        cost += matched * model.settings.row_cpu * len(index_residual)
        remaining_order = definition.key_columns[len(eq_preds):]
        seek_node = IndexSeekNode(
            est_rows=rows_after_index if covering and not lookup_residual else out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=index_residual,
            covering=covering and not lookup_residual,
            hypothetical=definition.hypothetical,
        )
        if covering and not lookup_residual:
            return _AccessCandidate(
                node=seek_node,
                out_rows=rows_after_index,
                cost=cost,
                output_order=remaining_order,
                index_name=definition.name,
            )
        cview = table.clustered_stats_view()
        lookup = model.lookup_cost(rows_after_index, cview.height)
        total = cost + lookup
        node = KeyLookupNode(
            est_rows=out_rows,
            est_cost=total,
            child=seek_node,
            table=table.name,
            residual=lookup_residual,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=total,
            output_order=remaining_order,
            index_name=definition.name,
        )

    def _index_scan_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        """Covering leaf scan of a narrower index (cheaper than table scan)."""
        model = self._cost_model
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        if not all(column in index_columns for column in needed_columns):
            return None
        if not all(p.column in index_columns for p in predicates):
            return None
        cost = model.scan_cost(view.leaf_pages, table.row_count)
        node = IndexScanNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            residual=predicates,
            hypothetical=definition.hypothetical,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=cost,
            output_order=definition.key_columns,
            index_name=definition.name,
        )

    def _best_access(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> _AccessCandidate:
        """Cheapest access path by its own cost (no downstream context).

        Used where the access path *is* the whole read — DML source,
        hash-join build side, MI baseline.  SELECT planning instead costs
        the complete plan per candidate in :meth:`_plan_select`.
        """
        candidates = self._access_candidates(
            table, predicates, needed_columns, extra_indexes, excluded
        )
        return min(candidates, key=lambda c: c.cost)

    # ------------------------------------------------------------------
    # SELECT planning

    def _plan_select(
        self,
        query: SelectQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        """True min-cost search: finish the full plan per access candidate.

        Every candidate is carried through join, aggregation, sort, and
        top costing independently, and the cheapest *complete* plan wins.
        Each candidate's final cost is independent of which other
        candidates were enumerated, so hiding indexes (fewer candidates)
        can never lower the minimum and hypothetical indexes (more
        candidates) can never raise it — the monotonicity the what-if API
        relies on holds by construction.
        """
        table = self._table(query.table)
        needed = query.referenced_columns()
        candidates = self._access_candidates(
            table, query.predicates, needed, extra_indexes, excluded
        )
        if query.index_hint is not None:
            candidates = [
                c for c in candidates if c.index_name == query.index_hint
            ]
            if not candidates:
                raise ExecutionError(
                    f"query hints index {query.index_hint!r} which does not "
                    f"exist on table {table.name!r}"
                )
        join_ctx = None
        if query.join is not None:
            join_ctx = self._join_context(query, extra_indexes, excluded)
        best_plan: Optional[PlanNode] = None
        best_cost = math.inf
        for candidate in candidates:
            plan, cost = self._finish_select(query, table, candidate, join_ctx)
            if plan is not None and cost < best_cost:
                best_plan, best_cost = plan, cost
        assert best_plan is not None  # clustered scan always completes
        return best_plan

    def _finish_select(
        self,
        query: SelectQuery,
        table: Table,
        candidate: _AccessCandidate,
        join_ctx: Optional["_JoinContext"],
    ) -> Tuple[Optional[PlanNode], float]:
        """Complete one access candidate into a full plan and its cost."""
        plan = candidate.node
        rows = candidate.out_rows
        order = candidate.output_order
        cost = candidate.cost

        if join_ctx is not None:
            plan, rows, order, cost = self._apply_join(
                join_ctx, plan, rows, order, cost
            )

        if query.group_by or query.aggregates:
            plan, rows, order, cost = self._plan_aggregate(
                query, table, plan, rows, order, cost
            )

        if query.order_by:
            wanted = tuple(i.column for i in query.order_by)
            # Access paths deliver ascending order only, so any descending
            # item forces a Sort regardless of column match.
            satisfied = all(
                i.ascending for i in query.order_by
            ) and _order_satisfied(order, wanted)
            if not satisfied:
                cost += self._cost_model.sort_cost(rows)
                plan = SortNode(
                    est_rows=rows,
                    est_cost=cost,
                    child=plan,
                    order_by=query.order_by,
                )
                order = wanted

        if query.limit is not None:
            rows = min(rows, float(query.limit))
            plan = TopNode(
                est_rows=rows, est_cost=cost, child=plan, limit=query.limit
            )
        return plan, cost

    def _join_context(
        self,
        query: SelectQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> "_JoinContext":
        """Inner-side planning shared by every outer access candidate.

        The inner side's best per-probe seek and best build-side access do
        not depend on the outer candidate, so they are computed once per
        SELECT rather than once per candidate.
        """
        join = query.join
        right = self._table(join.table)
        model = self._cost_model
        right_needed = tuple(
            dict.fromkeys(
                (join.right_column,)
                + tuple(p.column for p in join.predicates)
                + tuple(join.select_columns)
            )
        )
        right_sel = model.combined_selectivity(right, join.predicates)
        right_rows = right_sel * right.row_count
        distinct = _distinct_estimate(right, join.right_column)
        # Nested loop: parameterized seek on the inner side.
        param_pred = Predicate(join.right_column, Op.EQ, PARAM)
        inner_preds = (param_pred,) + tuple(join.predicates)
        nl_inner = self._nl_inner_access(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        # Hash join: scan both sides, build on inner.
        hash_inner = self._best_access(
            right, tuple(join.predicates), right_needed, extra_indexes, excluded
        )
        return _JoinContext(
            join=join,
            right_rows=right_rows,
            distinct=distinct,
            nl_inner=nl_inner,
            hash_inner=hash_inner,
        )

    def _apply_join(
        self,
        ctx: "_JoinContext",
        outer_plan: PlanNode,
        outer_rows: float,
        outer_order: Tuple[str, ...],
        outer_cost: float,
    ):
        model = self._cost_model
        # Join output cardinality via the containment assumption.
        join_rows = max(
            1.0, outer_rows * ctx.right_rows / max(1.0, ctx.distinct)
        )
        nl_cost = None
        if ctx.nl_inner is not None:
            nl_cost = outer_cost + outer_rows * ctx.nl_inner.cost
        hash_cost = (
            outer_cost
            + ctx.hash_inner.cost
            + model.hash_cost(ctx.right_rows, outer_rows)
        )
        if nl_cost is not None and nl_cost <= hash_cost:
            plan = NestedLoopJoinNode(
                est_rows=join_rows,
                est_cost=nl_cost,
                outer=outer_plan,
                inner=ctx.nl_inner.node,
                join=ctx.join,
            )
            return plan, join_rows, outer_order, nl_cost
        plan = HashJoinNode(
            est_rows=join_rows,
            est_cost=hash_cost,
            outer=outer_plan,
            inner=ctx.hash_inner.node,
            join=ctx.join,
        )
        return plan, join_rows, (), hash_cost

    def _nl_inner_access(
        self,
        right: Table,
        inner_preds: Tuple[Predicate, ...],
        right_needed: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> Optional[_AccessCandidate]:
        """Best per-probe access for the inner side, or None if only scans.

        A nested loop over a full inner scan per probe is almost never
        competitive; we only return seek-capable candidates so the planner
        falls back to hash join otherwise.
        """
        candidates = self._access_candidates(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        seekable = [
            c
            for c in candidates
            if isinstance(c.node, (ClusteredSeekNode, IndexSeekNode))
            or (
                isinstance(c.node, KeyLookupNode)
                and isinstance(c.node.child, IndexSeekNode)
            )
        ]
        param_ok = []
        for c in seekable:
            seek_node = c.node.child if isinstance(c.node, KeyLookupNode) else c.node
            eq_values = [p.value for p in seek_node.eq_predicates]
            if any(value is PARAM for value in eq_values):
                param_ok.append(c)
        if not param_ok:
            return None
        return min(param_ok, key=lambda c: c.cost)

    def _plan_aggregate(
        self,
        query: SelectQuery,
        table: Table,
        plan: PlanNode,
        rows: float,
        order: Tuple[str, ...],
        cost: float,
    ):
        model = self._cost_model
        if query.group_by:
            groups = 1.0
            for column in query.group_by:
                groups *= _distinct_estimate(table, column)
            groups = min(rows, max(1.0, groups))
        else:
            groups = 1.0
        if query.group_by and _order_satisfied(order, query.group_by):
            cost += model.aggregate_cost(rows, hashed=False)
            plan = StreamAggregateNode(
                est_rows=groups,
                est_cost=cost,
                child=plan,
                group_by=query.group_by,
                aggregates=query.aggregates,
            )
            return plan, groups, query.group_by, cost
        cost += model.aggregate_cost(rows, hashed=True)
        plan = HashAggregateNode(
            est_rows=groups,
            est_cost=cost,
            child=plan,
            group_by=query.group_by,
            aggregates=query.aggregates,
        )
        return plan, groups, (), cost

    # ------------------------------------------------------------------
    # DML planning

    def _maintained_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        changed_columns: Optional[Sequence[str]] = None,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        maintained = []
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            if changed_columns is not None:
                relevant = set(definition.all_columns) | set(
                    table.schema.primary_key
                )
                if not any(c in relevant for c in changed_columns):
                    continue
            maintained.append((definition, view))
        return maintained

    def _plan_insert(
        self,
        query: InsertQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = float(len(query.rows))
        cview = table.clustered_stats_view()
        cost = model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return InsertPlanNode(
            est_rows=rows,
            est_cost=cost,
            table=table.name,
            row_count=len(query.rows),
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_update(
        self,
        query: UpdateQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(
            table, extra_indexes, excluded, query.assigned_columns
        )
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += 2 * model.maintenance_cost(view.height, rows)
        return UpdatePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            assignments=query.assignments,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_delete(
        self,
        query: DeleteQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return DeletePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    # ------------------------------------------------------------------
    # Missing-index emission

    def _emit_missing_indexes(
        self,
        query: SelectQuery,
        plan: PlanNode,
        record: Callable[[tuple], None],
    ) -> None:
        # MI's analysis is local, "predominantly in the leaf node of a
        # plan" (Section 5.1.1): the include list captures the plan leaf's
        # output — selected and filtered columns — but NOT columns needed
        # by upstream joins, aggregations, or sorts.
        leaf_columns = tuple(
            dict.fromkeys(
                tuple(query.select_columns)
                + tuple(p.column for p in query.predicates)
            )
        )
        self._emit_for_table(
            query.table,
            query.predicates,
            leaf_columns,
            plan.est_cost,
            record,
        )
        if query.join is not None:
            join_needed = tuple(
                dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
            )
            self._emit_for_table(
                query.join.table,
                tuple(query.join.predicates),
                join_needed,
                plan.est_cost,
                record,
            )

    def _emit_dml_missing_indexes(
        self, query, plan: PlanNode, record: Callable[[tuple], None]
    ) -> None:
        self._emit_for_table(
            query.table,
            query.predicates,
            tuple(p.column for p in query.predicates),
            plan.est_cost,
            record,
        )

    def _emit_for_table(
        self,
        table_name: str,
        predicates: Tuple[Predicate, ...],
        referenced: Tuple[str, ...],
        plan_cost: float,
        record: Callable[[tuple], None],
    ) -> None:
        """Compare the current plan to an ideal local index; report if better.

        MI semantics (Section 5.2): equality predicate columns become
        EQUALITY columns, range predicate columns become INEQUALITY columns,
        other referenced columns become INCLUDE columns.  No join/group-by/
        order-by awareness and no maintenance costing.
        """
        if not predicates:
            return
        table = self._table(table_name)
        if table.row_count == 0:
            return
        eq_cols = tuple(
            dict.fromkeys(p.column for p in predicates if p.is_equality)
        )
        ineq_cols = tuple(
            dict.fromkeys(
                p.column
                for p in predicates
                if p.is_range and p.column not in eq_cols
            )
        )
        if not eq_cols and not ineq_cols:
            return
        key_cols = eq_cols + ineq_cols[:1]
        include_cols = tuple(
            c for c in referenced if c not in key_cols
        ) + ineq_cols[1:]
        include_cols = tuple(dict.fromkeys(include_cols))
        ideal = IndexDefinition(
            name="_mi_ideal",
            table=table_name,
            key_columns=key_cols,
            included_columns=tuple(
                c for c in include_cols if c not in key_cols
            ),
            hypothetical=True,
        )
        try:
            view = table.hypothetical_stats_view(ideal)
        except Exception:
            return
        candidate = self._index_seek_candidate(
            table,
            ideal,
            view,
            predicates,
            referenced,
            out_rows=self._cost_model.combined_selectivity(table, predicates)
            * table.row_count,
        )
        if candidate is None:
            return
        # Compare against the best access over *existing* structures only.
        best_existing = self._best_access(
            table, predicates, referenced, (), frozenset()
        )
        if candidate.cost >= best_existing.cost * (1.0 - MI_REPORT_THRESHOLD):
            return
        impact = 100.0 * (1.0 - candidate.cost / best_existing.cost)
        record(
            (
                table_name,
                eq_cols,
                ineq_cols,
                ideal.included_columns,
                best_existing.cost,
                impact,
            )
        )


# ----------------------------------------------------------------------
# Batched what-if pricing
#
# DTA enumeration and MI impact verification price the *same statement*
# against many hypothetical configurations.  Everything except the
# configuration's own access-path candidates is query-invariant: the
# predicate analysis, the base (existing-structure) candidates, the join
# context, and the completion of each candidate through join, aggregate,
# sort, and top.  The substrate classes below compute that invariant part
# once; pricing a configuration then only costs the candidates its
# indexes contribute and recomputes the argmin from cached component
# costs.  Every arithmetic operation runs in the same order on the same
# inputs as the scalar path, so the resulting plans and costs are
# bit-identical — the property the differential test suite pins down.


class _SelectSubstrate:
    """Query-invariant plan-space for one SELECT under one exclusion set."""

    def __init__(
        self, opt: Optimizer, query: SelectQuery, excluded: frozenset
    ) -> None:
        self._opt = opt
        self._query = query
        self._excluded = excluded
        table = opt._table(query.table)
        self._table_obj = table
        model = opt._cost_model
        self._needed = query.referenced_columns()
        rows = table.row_count
        all_sel = model.combined_selectivity(table, query.predicates)
        # Same expression as _access_candidates, so extra candidates are
        # costed against the identical out_rows estimate.
        self._out_rows = (
            max(0.0, all_sel * rows) if query.predicates else float(rows)
        )
        self._base_candidates = opt._access_candidates(
            table, query.predicates, self._needed, (), excluded
        )
        self._base_ctx: Optional[_JoinContext] = None
        if query.join is not None:
            self._base_ctx = opt._join_context(query, (), excluded)
            join = query.join
            right = opt._table(join.table)
            self._right = right
            self._right_needed = tuple(
                dict.fromkeys(
                    (join.right_column,)
                    + tuple(p.column for p in join.predicates)
                    + tuple(join.select_columns)
                )
            )
            self._inner_preds = (
                Predicate(join.right_column, Op.EQ, PARAM),
            ) + tuple(join.predicates)
            self._hash_preds = tuple(join.predicates)
            inner_sel = model.combined_selectivity(right, self._inner_preds)
            self._inner_out_rows = max(0.0, inner_sel * right.row_count)
            hash_sel = model.combined_selectivity(right, self._hash_preds)
            self._hash_out_rows = (
                max(0.0, hash_sel * right.row_count)
                if self._hash_preds
                else float(right.row_count)
            )
        self._base_results = [
            opt._finish_select(query, table, c, self._base_ctx)
            for c in self._base_candidates
        ]
        self._base_costs = np.array(
            [cost for _plan, cost in self._base_results], dtype=np.float64
        )
        # np.argmin returns the *first* minimum — the same winner as the
        # scalar strict-< scan over the candidate list.
        self._base_argmin = int(np.argmin(self._base_costs))
        #: Per-definition memos.  Every memoized value is a deterministic
        #: function of the frozen definition (given this substrate's table
        #: versions), so sharing across configurations cannot change costs.
        self._outer_memo: Dict[IndexDefinition, tuple] = {}
        self._finished_memo: Dict[IndexDefinition, tuple] = {}
        self._inner_memo: Dict[IndexDefinition, tuple] = {}
        self._ctx_memo: Dict[tuple, _JoinContext] = {}

    def price(self, extras: Tuple[IndexDefinition, ...]) -> PlanNode:
        opt = self._opt
        query = self._query
        table = self._table_obj
        join = query.join
        outer_defs: List[IndexDefinition] = []
        inner_defs: List[IndexDefinition] = []
        for definition in extras:
            if definition.name in self._excluded:
                continue
            if definition.table == table.name:
                outer_defs.append(definition)
            if join is not None and definition.table == join.table:
                inner_defs.append(definition)
        ctx = self._base_ctx
        if inner_defs:
            ctx = self._extended_ctx(tuple(inner_defs))
        if ctx is self._base_ctx:
            base_results = self._base_results
            base_costs = self._base_costs
            base_argmin = self._base_argmin
            extra_results: List[tuple] = []
            for definition in outer_defs:
                extra_results.extend(self._finished_outer(definition))
        else:
            # The configuration improved the join's inner side, which
            # changes every candidate's completion: re-finish the full
            # plan per candidate under the new context (still cheaper
            # than scalar — candidate enumeration itself is reused).
            base_results = [
                opt._finish_select(query, table, c, ctx)
                for c in self._base_candidates
            ]
            base_costs = np.fromiter(
                (cost for _plan, cost in base_results),
                dtype=np.float64,
                count=len(base_results),
            )
            base_argmin = int(np.argmin(base_costs))
            extra_results = [
                opt._finish_select(query, table, candidate, ctx)
                for definition in outer_defs
                for candidate in self._outer_candidates(definition)
            ]
        if extra_results:
            extra_costs = np.fromiter(
                (cost for _plan, cost in extra_results),
                dtype=np.float64,
                count=len(extra_results),
            )
            extra_argmin = int(np.argmin(extra_costs))
            # Strict <: on a tie the earliest candidate wins, and base
            # candidates precede extras in the scalar enumeration order.
            if extra_costs[extra_argmin] < base_costs[base_argmin]:
                return extra_results[extra_argmin][0]
        return base_results[base_argmin][0]

    # -- per-definition memos ------------------------------------------

    def _outer_candidates(self, definition: IndexDefinition) -> tuple:
        cached = self._outer_memo.get(definition)
        if cached is None:
            opt = self._opt
            table = self._table_obj
            view = table.hypothetical_stats_view(definition)
            out = []
            for maker in (opt._index_seek_candidate, opt._index_scan_candidate):
                candidate = maker(
                    table,
                    definition,
                    view,
                    self._query.predicates,
                    self._needed,
                    self._out_rows,
                )
                if candidate is not None:
                    out.append(candidate)
            cached = tuple(out)
            self._outer_memo[definition] = cached
        return cached

    def _finished_outer(self, definition: IndexDefinition) -> tuple:
        cached = self._finished_memo.get(definition)
        if cached is None:
            opt = self._opt
            cached = tuple(
                opt._finish_select(
                    self._query, self._table_obj, candidate, self._base_ctx
                )
                for candidate in self._outer_candidates(definition)
            )
            self._finished_memo[definition] = cached
        return cached

    def _inner_candidates(self, definition: IndexDefinition) -> tuple:
        cached = self._inner_memo.get(definition)
        if cached is None:
            opt = self._opt
            right = self._right
            view = right.hypothetical_stats_view(definition)
            nl = []
            candidate = opt._index_seek_candidate(
                right,
                definition,
                view,
                self._inner_preds,
                self._right_needed,
                self._inner_out_rows,
            )
            if candidate is not None and _param_seekable(candidate):
                nl.append(candidate)
            hashes = []
            for maker in (opt._index_seek_candidate, opt._index_scan_candidate):
                candidate = maker(
                    right,
                    definition,
                    view,
                    self._hash_preds,
                    self._right_needed,
                    self._hash_out_rows,
                )
                if candidate is not None:
                    hashes.append(candidate)
            cached = (tuple(nl), tuple(hashes))
            self._inner_memo[definition] = cached
        return cached

    def _extended_ctx(self, inner_defs: tuple) -> _JoinContext:
        ctx = self._ctx_memo.get(inner_defs)
        if ctx is not None:
            return ctx
        base = self._base_ctx
        nl = base.nl_inner
        hash_best = base.hash_inner
        # First-minimum merge: base candidates precede extras in the
        # scalar list, so an extra only wins with a strictly lower cost.
        for definition in inner_defs:
            nl_cands, hash_cands = self._inner_candidates(definition)
            for candidate in nl_cands:
                if nl is None or candidate.cost < nl.cost:
                    nl = candidate
            for candidate in hash_cands:
                if candidate.cost < hash_best.cost:
                    hash_best = candidate
        if nl is base.nl_inner and hash_best is base.hash_inner:
            ctx = base  # unchanged: lets price() reuse finished plans
        else:
            ctx = _JoinContext(
                join=base.join,
                right_rows=base.right_rows,
                distinct=base.distinct,
                nl_inner=nl,
                hash_inner=hash_best,
            )
        self._ctx_memo[inner_defs] = ctx
        return ctx


class _InsertSubstrate:
    """Maintenance-cost prefix for a (non-bulk) INSERT."""

    def __init__(
        self, opt: Optimizer, query: InsertQuery, excluded: frozenset
    ) -> None:
        self._opt = opt
        self._query = query
        self._excluded = excluded
        table = opt._table(query.table)
        self._table_obj = table
        model = opt._cost_model
        self._rows = float(len(query.rows))
        maintained = opt._maintained_indexes(table, (), excluded)
        cview = table.clustered_stats_view()
        # Left-to-right accumulation in the scalar order (clustered tree
        # first, then existing indexes); extras append in price().
        cost = model.maintenance_cost(cview.height, self._rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, self._rows)
        self._base_cost = cost
        self._base_names = tuple(d.name for d, _v in maintained)
        self._extra_memo: Dict[IndexDefinition, float] = {}

    def price(self, extras: Tuple[IndexDefinition, ...]) -> PlanNode:
        table = self._table_obj
        cost = self._base_cost
        names = list(self._base_names)
        for definition in extras:
            if definition.table != table.name or definition.name in self._excluded:
                continue
            maint = self._extra_memo.get(definition)
            if maint is None:
                view = table.hypothetical_stats_view(definition)
                maint = self._opt._cost_model.maintenance_cost(
                    view.height, self._rows
                )
                self._extra_memo[definition] = maint
            cost += maint
            names.append(definition.name)
        return InsertPlanNode(
            est_rows=self._rows,
            est_cost=cost,
            table=table.name,
            row_count=len(self._query.rows),
            maintained_indexes=tuple(names),
        )


class _DmlSubstrate:
    """Access-path + maintenance substrate shared by UPDATE and DELETE.

    Unlike INSERT, the maintenance row count is the *winning* access
    candidate's output estimate, which can change per configuration, so
    maintenance terms are summed per price() from memoized tree heights.
    """

    def __init__(self, opt: Optimizer, query, excluded: frozenset) -> None:
        self._opt = opt
        self._query = query
        self._excluded = excluded
        self._is_update = isinstance(query, UpdateQuery)
        table = opt._table(query.table)
        self._table_obj = table
        self._needed = tuple(table.schema.column_names)
        self._base_candidates = opt._access_candidates(
            table, query.predicates, self._needed, (), excluded
        )
        self._base_best = min(self._base_candidates, key=lambda c: c.cost)
        changed = query.assigned_columns if self._is_update else None
        maintained = opt._maintained_indexes(table, (), excluded, changed)
        self._base_maintained = tuple(
            (d.name, view.height) for d, view in maintained
        )
        self._cview_height = table.clustered_stats_view().height
        self._access_memo: Dict[IndexDefinition, tuple] = {}
        #: definition -> maintained tree height, or None when the update
        #: does not touch the index (the changed-columns filter).
        self._maint_memo: Dict[IndexDefinition, Optional[float]] = {}

    def _visible(self, definition: IndexDefinition) -> bool:
        return (
            definition.table == self._table_obj.name
            and definition.name not in self._excluded
        )

    def _extra_access(self, definition: IndexDefinition) -> tuple:
        cached = self._access_memo.get(definition)
        if cached is None:
            opt = self._opt
            table = self._table_obj
            view = table.hypothetical_stats_view(definition)
            query = self._query
            model = opt._cost_model
            rows = table.row_count
            all_sel = model.combined_selectivity(table, query.predicates)
            out_rows = (
                max(0.0, all_sel * rows) if query.predicates else float(rows)
            )
            out = []
            for maker in (opt._index_seek_candidate, opt._index_scan_candidate):
                candidate = maker(
                    table, definition, view, query.predicates,
                    self._needed, out_rows,
                )
                if candidate is not None:
                    out.append(candidate)
            cached = tuple(out)
            self._access_memo[definition] = cached
        return cached

    def _extra_height(self, definition: IndexDefinition) -> Optional[float]:
        if definition in self._maint_memo:
            return self._maint_memo[definition]
        table = self._table_obj
        height: Optional[float] = None
        if self._is_update:
            relevant = set(definition.all_columns) | set(
                table.schema.primary_key
            )
            touched = any(
                c in relevant for c in self._query.assigned_columns
            )
        else:
            touched = True
        if touched:
            height = table.hypothetical_stats_view(definition).height
        self._maint_memo[definition] = height
        return height

    def price(self, extras: Tuple[IndexDefinition, ...]) -> PlanNode:
        model = self._opt._cost_model
        best = self._base_best
        for definition in extras:
            if not self._visible(definition):
                continue
            for candidate in self._extra_access(definition):
                if candidate.cost < best.cost:
                    best = candidate
        rows = best.out_rows
        factor = 2 if self._is_update else 1
        cost = best.cost + model.maintenance_cost(self._cview_height, rows)
        names: List[str] = []
        for name, height in self._base_maintained:
            cost += factor * model.maintenance_cost(height, rows)
            names.append(name)
        for definition in extras:
            if not self._visible(definition):
                continue
            height = self._extra_height(definition)
            if height is None:
                continue
            cost += factor * model.maintenance_cost(height, rows)
            names.append(definition.name)
        table_name = self._table_obj.name
        if self._is_update:
            return UpdatePlanNode(
                est_rows=rows,
                est_cost=cost,
                child=best.node,
                table=table_name,
                assignments=self._query.assignments,
                maintained_indexes=tuple(names),
            )
        return DeletePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=best.node,
            table=table_name,
            maintained_indexes=tuple(names),
        )


def _param_seekable(candidate: _AccessCandidate) -> bool:
    """The _nl_inner_access filter: a seek parameterized on the join key."""
    node = candidate.node
    seek = node.child if isinstance(node, KeyLookupNode) else node
    if not isinstance(seek, (ClusteredSeekNode, IndexSeekNode)):
        return False
    return any(p.value is PARAM for p in seek.eq_predicates)


def _batchable(query) -> bool:
    """Statement shapes the substrate can express incrementally."""
    if isinstance(query, SelectQuery):
        return query.index_hint is None
    if isinstance(query, InsertQuery):
        return not query.bulk
    return isinstance(query, (UpdateQuery, DeleteQuery))


def _build_substrate(opt: Optimizer, query, excluded: frozenset):
    if isinstance(query, SelectQuery):
        return _SelectSubstrate(opt, query, excluded)
    if isinstance(query, InsertQuery):
        return _InsertSubstrate(opt, query, excluded)
    return _DmlSubstrate(opt, query, excluded)


class BatchPricer:
    """Batched what-if pricing for one statement under one exclusion set.

    ``price(extra_indexes)`` returns exactly the plan that
    ``optimize(query, extra_indexes, excluded)`` would — same floats,
    same argmin winner — while sharing the query-invariant substrate
    across configurations (and, via the plan cache's substrate store,
    across pricers for the same statement at the same table versions).

    Observable side effects also match the scalar path one for one: the
    same ``whatif_calls`` metering, the same per-configuration
    plan-cache lookups/stores and hit/miss counts, the same exceptions
    (unknown tables, bulk INSERT in what-if mode).  Statements the
    substrate cannot express — index hints, bulk INSERT, exotic query
    types — fall back to a scalar ``optimize()`` call per configuration,
    counted in :class:`BatchPricingStats`.
    """

    def __init__(
        self, optimizer: Optimizer, query, excluded: frozenset
    ) -> None:
        self._optimizer = optimizer
        self._query = query
        self._excluded = excluded
        self._substrate = None
        optimizer.batch_stats.batches += 1

    def price(self, extra_indexes: Sequence[IndexDefinition] = ()) -> PlanNode:
        opt = self._optimizer
        query = self._query
        excluded = self._excluded
        extras = tuple(extra_indexes)
        opt.batch_stats.configurations += 1
        if not extras and not excluded:
            # The base configuration is a normal-mode optimization:
            # delegate wholesale so MI-emission bookkeeping (recorded
            # into the cache entry, replayed on later normal-mode hits)
            # stays cache-transparent.
            return opt.optimize(query)
        if not _batchable(query):
            opt.batch_stats.scalar_fallbacks += 1
            return opt.optimize(query, extras, excluded)
        opt.whatif_calls += 1
        key = opt._cache_key(query, extras, excluded)
        if key is not None:
            entry = opt.plan_cache.lookup(key)
            if entry is not None:
                count("plan_cache_hit")
                return entry.plan
            count("plan_cache_miss")
        substrate = self._ensure_substrate()
        with profile("optimizer_batch_price"):
            plan = substrate.price(extras)
        if key is not None:
            opt.plan_cache.store(
                key,
                PlanCacheEntry(
                    plan=plan,
                    mi_emissions=(),
                    tables=opt._referenced_tables(query),
                ),
            )
        return plan

    def _ensure_substrate(self):
        if self._substrate is not None:
            return self._substrate
        opt = self._optimizer
        skey = opt._cache_key(self._query, (), self._excluded)
        substrate = (
            opt.plan_cache.lookup_substrate(skey) if skey is not None else None
        )
        if substrate is None:
            opt.batch_stats.substrate_misses += 1
            with profile("optimizer_substrate_build"):
                substrate = _build_substrate(opt, self._query, self._excluded)
            if skey is not None:
                opt.plan_cache.store_substrate(
                    skey, substrate, opt._referenced_tables(self._query)
                )
        else:
            opt.batch_stats.substrate_hits += 1
        self._substrate = substrate
        return substrate


# ----------------------------------------------------------------------
# Small helpers


def _predicates_by_column(
    predicates: Sequence[Predicate],
) -> Dict[str, List[Predicate]]:
    by_column: Dict[str, List[Predicate]] = {}
    for predicate in predicates:
        by_column.setdefault(predicate.column, []).append(predicate)
    return by_column


def _first_equality(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_equality:
            return predicate
    return None


def _first_range(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_range:
            return predicate
    return None


def _order_satisfied(
    available: Tuple[str, ...], wanted: Tuple[str, ...]
) -> bool:
    """True if ``available`` ordering covers ``wanted`` as a prefix."""
    if not wanted:
        return True
    if len(wanted) > len(available):
        return False
    return tuple(available[: len(wanted)]) == tuple(wanted)


def _distinct_estimate(table: Table, column: str) -> float:
    stats = table.statistics.get(column)
    if stats is not None and stats.distinct_count:
        return float(stats.distinct_count)
    return max(1.0, table.row_count / 10.0)
