"""Cost-based query optimizer with a what-if API and MI emission.

The optimizer enumerates access paths (clustered scan/seek, secondary index
seek with optional key lookup, covering index scan), join strategies
(nested-loop with parameterized inner seek, hash join), and aggregation /
ordering operators, picking the plan with the lowest *estimated* cost under
the :class:`repro.engine.cost_model.CostModel`.

Two features mirror the SQL Server surfaces the paper's service depends on:

- **What-if mode** (Section 5.3): callers pass hypothetical index
  definitions via ``extra_indexes``; the optimizer costs them from
  closed-form shape estimates without materializing anything.  ``excluded``
  similarly hides existing indexes, which is how index *drops* are costed.
- **Missing-index emission** (Section 5.2): during normal (non-what-if)
  optimization, the optimizer compares the chosen plan against an ideal
  single-table index built from the query's own sargable predicates and, if
  the ideal index would beat the plan, reports a missing-index candidate to
  the DMV sink.  Deliberately local: join, GROUP BY and ORDER BY columns
  are *not* considered — exactly the MI limitation the paper describes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cost_model import CostModel
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    ClusteredSeekNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    IndexSeekNode,
    InsertPlanNode,
    KeyLookupNode,
    DeletePlanNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
    UpdatePlanNode,
)
from repro.engine.query import (
    DeleteQuery,
    InsertQuery,
    Op,
    Predicate,
    SelectQuery,
    UpdateQuery,
)
from repro.engine.schema import IndexDefinition
from repro.engine.table import IndexStatsView, Table
from repro.errors import ExecutionError, OptimizeError, UnknownTableError
from repro.observability.profiling import profile

#: Minimum relative improvement for the optimizer to report an MI candidate.
MI_REPORT_THRESHOLD = 0.05

#: Signature for a missing-index sink callback:
#: (table, equality_cols, inequality_cols, include_cols, best_cost, impact_pct)
MiSink = Callable[[str, Tuple[str, ...], Tuple[str, ...], Tuple[str, ...], float, float], None]


@dataclasses.dataclass
class _AccessCandidate:
    """One candidate access path with its bookkeeping."""

    node: PlanNode
    out_rows: float
    cost: float
    #: Columns the output is ordered by (ascending), outermost first.
    output_order: Tuple[str, ...]
    index_name: Optional[str] = None


class Optimizer:
    """Plans queries against a database's tables."""

    def __init__(self, tables: Dict[str, Table], cost_model: CostModel) -> None:
        self._tables = tables
        self._cost_model = cost_model
        #: Number of optimizations performed in what-if mode (metered for
        #: DTA resource accounting).
        self.whatif_calls = 0

    # ------------------------------------------------------------------
    # Entry point

    def optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition] = (),
        excluded: frozenset = frozenset(),
        mi_sink: Optional[MiSink] = None,
    ) -> PlanNode:
        """Produce the cheapest estimated plan for ``query``.

        ``extra_indexes``/``excluded`` put the optimizer in what-if mode
        (hypothetical configuration); MI candidates are only emitted in
        normal mode (``mi_sink`` provided and no hypothetical config).
        """
        whatif = bool(extra_indexes) or bool(excluded)
        if whatif:
            self.whatif_calls += 1
        with profile("optimizer_plan_search"):
            return self._optimize(query, extra_indexes, excluded, mi_sink, whatif)

    def _optimize(
        self,
        query,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        mi_sink: Optional[MiSink],
        whatif: bool,
    ) -> PlanNode:
        if isinstance(query, SelectQuery):
            plan = self._plan_select(query, extra_indexes, excluded)
            if mi_sink is not None and not whatif:
                self._emit_missing_indexes(query, plan, mi_sink)
            return plan
        if isinstance(query, InsertQuery):
            if query.bulk and whatif:
                raise OptimizeError(
                    "BULK INSERT cannot be optimized in what-if mode"
                )
            return self._plan_insert(query, extra_indexes, excluded)
        if isinstance(query, UpdateQuery):
            plan = self._plan_update(query, extra_indexes, excluded)
            if mi_sink is not None and not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, mi_sink)
            return plan
        if isinstance(query, DeleteQuery):
            plan = self._plan_delete(query, extra_indexes, excluded)
            if mi_sink is not None and not whatif and query.predicates:
                self._emit_dml_missing_indexes(query, plan, mi_sink)
            return plan
        raise OptimizeError(f"cannot optimize {type(query).__name__}")

    # ------------------------------------------------------------------
    # Helpers

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _visible_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        visible: List[Tuple[IndexDefinition, IndexStatsView]] = []
        for index in table.indexes.values():
            if index.name in excluded:
                continue
            visible.append((index.definition, index.stats_view()))
        for definition in extra_indexes:
            if definition.table != table.name or definition.name in excluded:
                continue
            visible.append((definition, table.hypothetical_stats_view(definition)))
        return visible

    # ------------------------------------------------------------------
    # Access-path enumeration

    def _access_candidates(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> List[_AccessCandidate]:
        model = self._cost_model
        rows = table.row_count
        all_sel = model.combined_selectivity(table, predicates)
        out_rows = max(0.0, all_sel * rows) if predicates else float(rows)
        candidates: List[_AccessCandidate] = []

        # 1. Clustered scan (always available).
        cview = table.clustered_stats_view()
        scan_cost = model.scan_cost(cview.leaf_pages, rows)
        candidates.append(
            _AccessCandidate(
                node=ClusteredScanNode(
                    est_rows=out_rows,
                    est_cost=scan_cost,
                    table=table.name,
                    residual=predicates,
                ),
                out_rows=out_rows,
                cost=scan_cost,
                output_order=table.schema.primary_key,
            )
        )

        # 2. Clustered seek on a PK prefix.
        pk_candidate = self._clustered_seek_candidate(table, predicates, out_rows)
        if pk_candidate is not None:
            candidates.append(pk_candidate)

        # 3. Secondary indexes: seeks (covering or + lookup) and covering scans.
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            candidate = self._index_seek_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
            candidate = self._index_scan_candidate(
                table, definition, view, predicates, needed_columns, out_rows
            )
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _clustered_seek_candidate(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        pk = table.schema.primary_key
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in pk:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(pk):
            next_column = pk[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        view = table.clustered_stats_view()
        matched = seek_sel * table.row_count
        pages = max(1.0, seek_sel * view.leaf_pages)
        residual = tuple(p for p in predicates if p not in seek_preds)
        cost = model.seek_cost(view.height, pages, matched)
        cost += matched * model.settings.row_cpu * len(residual)
        node = ClusteredSeekNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=residual,
        )
        remaining_order = pk[len(eq_preds):]
        return _AccessCandidate(
            node=node, out_rows=out_rows, cost=cost, output_order=remaining_order
        )

    def _index_seek_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        model = self._cost_model
        by_column = _predicates_by_column(predicates)
        eq_preds: List[Predicate] = []
        for column in definition.key_columns:
            pred = _first_equality(by_column.get(column, ()))
            if pred is None:
                break
            eq_preds.append(pred)
        range_pred = None
        if len(eq_preds) < len(definition.key_columns):
            next_column = definition.key_columns[len(eq_preds)]
            range_pred = _first_range(by_column.get(next_column, ()))
        if not eq_preds and range_pred is None:
            return None
        seek_preds = tuple(eq_preds) + ((range_pred,) if range_pred else ())
        seek_sel = model.combined_selectivity(table, seek_preds)
        matched = seek_sel * table.row_count
        leaf_pages = max(1.0, seek_sel * view.leaf_pages)
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        leftover = [p for p in predicates if p not in seek_preds]
        index_residual = tuple(p for p in leftover if p.column in index_columns)
        lookup_residual = tuple(p for p in leftover if p.column not in index_columns)
        covering = all(column in index_columns for column in needed_columns)
        rows_after_index = matched * model.combined_selectivity(
            table, index_residual
        ) if index_residual else matched
        cost = model.seek_cost(view.height, leaf_pages, matched)
        cost += matched * model.settings.row_cpu * len(index_residual)
        remaining_order = definition.key_columns[len(eq_preds):]
        seek_node = IndexSeekNode(
            est_rows=rows_after_index if covering and not lookup_residual else out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            eq_predicates=tuple(eq_preds),
            range_predicate=range_pred,
            residual=index_residual,
            covering=covering and not lookup_residual,
            hypothetical=definition.hypothetical,
        )
        if covering and not lookup_residual:
            return _AccessCandidate(
                node=seek_node,
                out_rows=rows_after_index,
                cost=cost,
                output_order=remaining_order,
                index_name=definition.name,
            )
        cview = table.clustered_stats_view()
        lookup = model.lookup_cost(rows_after_index, cview.height)
        total = cost + lookup
        node = KeyLookupNode(
            est_rows=out_rows,
            est_cost=total,
            child=seek_node,
            table=table.name,
            residual=lookup_residual,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=total,
            output_order=remaining_order,
            index_name=definition.name,
        )

    def _index_scan_candidate(
        self,
        table: Table,
        definition: IndexDefinition,
        view: IndexStatsView,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        out_rows: float,
    ) -> Optional[_AccessCandidate]:
        """Covering leaf scan of a narrower index (cheaper than table scan)."""
        model = self._cost_model
        index_columns = set(definition.all_columns) | set(table.schema.primary_key)
        if not all(column in index_columns for column in needed_columns):
            return None
        if not all(p.column in index_columns for p in predicates):
            return None
        cost = model.scan_cost(view.leaf_pages, table.row_count)
        node = IndexScanNode(
            est_rows=out_rows,
            est_cost=cost,
            table=table.name,
            index_name=definition.name,
            residual=predicates,
            hypothetical=definition.hypothetical,
        )
        return _AccessCandidate(
            node=node,
            out_rows=out_rows,
            cost=cost,
            output_order=definition.key_columns,
            index_name=definition.name,
        )

    def _best_access(
        self,
        table: Table,
        predicates: Tuple[Predicate, ...],
        needed_columns: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        index_hint: Optional[str] = None,
        preferred_order: Tuple[str, ...] = (),
    ) -> _AccessCandidate:
        candidates = self._access_candidates(
            table, predicates, needed_columns, extra_indexes, excluded
        )
        if index_hint is not None:
            hinted = [c for c in candidates if c.index_name == index_hint]
            if not hinted:
                raise ExecutionError(
                    f"query hints index {index_hint!r} which does not exist "
                    f"on table {table.name!r}"
                )
            candidates = hinted
        if preferred_order:
            # Credit order-providing candidates with the avoided sort cost.
            sort_bonus = self._cost_model.sort_cost(
                max(1.0, candidates[0].out_rows)
            )

            def effective(c: _AccessCandidate) -> float:
                if _order_satisfied(c.output_order, preferred_order):
                    return c.cost
                return c.cost + sort_bonus

            return min(candidates, key=effective)
        return min(candidates, key=lambda c: c.cost)

    # ------------------------------------------------------------------
    # SELECT planning

    def _plan_select(
        self,
        query: SelectQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        needed = query.referenced_columns()
        order_columns = tuple(
            item.column for item in query.order_by if item.ascending
        )
        if len(order_columns) != len(query.order_by):
            order_columns = ()  # descending sorts always need a Sort node
        preferred = query.group_by or order_columns
        candidate = self._best_access(
            table,
            query.predicates,
            needed,
            extra_indexes,
            excluded,
            index_hint=query.index_hint,
            preferred_order=preferred,
        )
        plan = candidate.node
        rows = candidate.out_rows
        order = candidate.output_order
        cost = candidate.cost

        if query.join is not None:
            plan, rows, order, cost = self._plan_join(
                query, plan, rows, order, cost, extra_indexes, excluded
            )

        if query.group_by or query.aggregates:
            plan, rows, order, cost = self._plan_aggregate(
                query, table, plan, rows, order, cost
            )

        if query.order_by and not _order_satisfied(
            order, tuple(i.column for i in query.order_by)
        ):
            cost += self._cost_model.sort_cost(rows)
            plan = SortNode(
                est_rows=rows, est_cost=cost, child=plan, order_by=query.order_by
            )
            order = tuple(i.column for i in query.order_by)

        if query.limit is not None:
            rows = min(rows, float(query.limit))
            plan = TopNode(
                est_rows=rows, est_cost=cost, child=plan, limit=query.limit
            )
        return plan

    def _plan_join(
        self,
        query: SelectQuery,
        outer_plan: PlanNode,
        outer_rows: float,
        outer_order: Tuple[str, ...],
        outer_cost: float,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ):
        join = query.join
        right = self._table(join.table)
        model = self._cost_model
        right_needed = tuple(
            dict.fromkeys(
                (join.right_column,)
                + tuple(p.column for p in join.predicates)
                + tuple(join.select_columns)
            )
        )
        # Join output cardinality via the containment assumption.
        right_sel = model.combined_selectivity(right, join.predicates)
        right_rows = right_sel * right.row_count
        distinct = _distinct_estimate(right, join.right_column)
        join_rows = max(1.0, outer_rows * right_rows / max(1.0, distinct))

        # Nested loop: parameterized seek on the inner side.
        param_pred = Predicate(join.right_column, Op.EQ, PARAM)
        inner_preds = (param_pred,) + tuple(join.predicates)
        nl_inner = self._nl_inner_access(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        nl_cost = None
        if nl_inner is not None:
            per_probe = nl_inner.cost
            nl_cost = outer_cost + outer_rows * per_probe
        # Hash join: scan both sides, build on inner.
        hash_inner = self._best_access(
            right, tuple(join.predicates), right_needed, extra_indexes, excluded
        )
        hash_cost = (
            outer_cost
            + hash_inner.cost
            + model.hash_cost(right_rows, outer_rows)
        )
        if nl_cost is not None and nl_cost <= hash_cost:
            plan = NestedLoopJoinNode(
                est_rows=join_rows,
                est_cost=nl_cost,
                outer=outer_plan,
                inner=nl_inner.node,
                join=join,
            )
            return plan, join_rows, outer_order, nl_cost
        plan = HashJoinNode(
            est_rows=join_rows,
            est_cost=hash_cost,
            outer=outer_plan,
            inner=hash_inner.node,
            join=join,
        )
        return plan, join_rows, (), hash_cost

    def _nl_inner_access(
        self,
        right: Table,
        inner_preds: Tuple[Predicate, ...],
        right_needed: Tuple[str, ...],
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> Optional[_AccessCandidate]:
        """Best per-probe access for the inner side, or None if only scans.

        A nested loop over a full inner scan per probe is almost never
        competitive; we only return seek-capable candidates so the planner
        falls back to hash join otherwise.
        """
        candidates = self._access_candidates(
            right, inner_preds, right_needed, extra_indexes, excluded
        )
        seekable = [
            c
            for c in candidates
            if isinstance(c.node, (ClusteredSeekNode, IndexSeekNode))
            or (
                isinstance(c.node, KeyLookupNode)
                and isinstance(c.node.child, IndexSeekNode)
            )
        ]
        param_ok = []
        for c in seekable:
            seek_node = c.node.child if isinstance(c.node, KeyLookupNode) else c.node
            eq_values = [p.value for p in seek_node.eq_predicates]
            if any(value is PARAM for value in eq_values):
                param_ok.append(c)
        if not param_ok:
            return None
        return min(param_ok, key=lambda c: c.cost)

    def _plan_aggregate(
        self,
        query: SelectQuery,
        table: Table,
        plan: PlanNode,
        rows: float,
        order: Tuple[str, ...],
        cost: float,
    ):
        model = self._cost_model
        if query.group_by:
            groups = 1.0
            for column in query.group_by:
                groups *= _distinct_estimate(table, column)
            groups = min(rows, max(1.0, groups))
        else:
            groups = 1.0
        if query.group_by and _order_satisfied(order, query.group_by):
            cost += model.aggregate_cost(rows, hashed=False)
            plan = StreamAggregateNode(
                est_rows=groups,
                est_cost=cost,
                child=plan,
                group_by=query.group_by,
                aggregates=query.aggregates,
            )
            return plan, groups, query.group_by, cost
        cost += model.aggregate_cost(rows, hashed=True)
        plan = HashAggregateNode(
            est_rows=groups,
            est_cost=cost,
            child=plan,
            group_by=query.group_by,
            aggregates=query.aggregates,
        )
        return plan, groups, (), cost

    # ------------------------------------------------------------------
    # DML planning

    def _maintained_indexes(
        self,
        table: Table,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
        changed_columns: Optional[Sequence[str]] = None,
    ) -> List[Tuple[IndexDefinition, IndexStatsView]]:
        maintained = []
        for definition, view in self._visible_indexes(table, extra_indexes, excluded):
            if changed_columns is not None:
                relevant = set(definition.all_columns) | set(
                    table.schema.primary_key
                )
                if not any(c in relevant for c in changed_columns):
                    continue
            maintained.append((definition, view))
        return maintained

    def _plan_insert(
        self,
        query: InsertQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = float(len(query.rows))
        cview = table.clustered_stats_view()
        cost = model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return InsertPlanNode(
            est_rows=rows,
            est_cost=cost,
            table=table.name,
            row_count=len(query.rows),
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_update(
        self,
        query: UpdateQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(
            table, extra_indexes, excluded, query.assigned_columns
        )
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += 2 * model.maintenance_cost(view.height, rows)
        return UpdatePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            assignments=query.assignments,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    def _plan_delete(
        self,
        query: DeleteQuery,
        extra_indexes: Sequence[IndexDefinition],
        excluded: frozenset,
    ) -> PlanNode:
        table = self._table(query.table)
        model = self._cost_model
        candidate = self._best_access(
            table,
            query.predicates,
            tuple(table.schema.column_names),
            extra_indexes,
            excluded,
        )
        maintained = self._maintained_indexes(table, extra_indexes, excluded)
        rows = candidate.out_rows
        cview = table.clustered_stats_view()
        cost = candidate.cost + model.maintenance_cost(cview.height, rows)
        for _definition, view in maintained:
            cost += model.maintenance_cost(view.height, rows)
        return DeletePlanNode(
            est_rows=rows,
            est_cost=cost,
            child=candidate.node,
            table=table.name,
            maintained_indexes=tuple(d.name for d, _v in maintained),
        )

    # ------------------------------------------------------------------
    # Missing-index emission

    def _emit_missing_indexes(
        self, query: SelectQuery, plan: PlanNode, mi_sink: MiSink
    ) -> None:
        # MI's analysis is local, "predominantly in the leaf node of a
        # plan" (Section 5.1.1): the include list captures the plan leaf's
        # output — selected and filtered columns — but NOT columns needed
        # by upstream joins, aggregations, or sorts.
        leaf_columns = tuple(
            dict.fromkeys(
                tuple(query.select_columns)
                + tuple(p.column for p in query.predicates)
            )
        )
        self._emit_for_table(
            query.table,
            query.predicates,
            leaf_columns,
            plan.est_cost,
            mi_sink,
        )
        if query.join is not None:
            join_needed = tuple(
                dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
            )
            self._emit_for_table(
                query.join.table,
                tuple(query.join.predicates),
                join_needed,
                plan.est_cost,
                mi_sink,
            )

    def _emit_dml_missing_indexes(self, query, plan: PlanNode, mi_sink: MiSink) -> None:
        self._emit_for_table(
            query.table,
            query.predicates,
            tuple(p.column for p in query.predicates),
            plan.est_cost,
            mi_sink,
        )

    def _emit_for_table(
        self,
        table_name: str,
        predicates: Tuple[Predicate, ...],
        referenced: Tuple[str, ...],
        plan_cost: float,
        mi_sink: MiSink,
    ) -> None:
        """Compare the current plan to an ideal local index; report if better.

        MI semantics (Section 5.2): equality predicate columns become
        EQUALITY columns, range predicate columns become INEQUALITY columns,
        other referenced columns become INCLUDE columns.  No join/group-by/
        order-by awareness and no maintenance costing.
        """
        if not predicates:
            return
        table = self._table(table_name)
        if table.row_count == 0:
            return
        eq_cols = tuple(
            dict.fromkeys(p.column for p in predicates if p.is_equality)
        )
        ineq_cols = tuple(
            dict.fromkeys(
                p.column
                for p in predicates
                if p.is_range and p.column not in eq_cols
            )
        )
        if not eq_cols and not ineq_cols:
            return
        key_cols = eq_cols + ineq_cols[:1]
        include_cols = tuple(
            c for c in referenced if c not in key_cols
        ) + ineq_cols[1:]
        include_cols = tuple(dict.fromkeys(include_cols))
        ideal = IndexDefinition(
            name="_mi_ideal",
            table=table_name,
            key_columns=key_cols,
            included_columns=tuple(
                c for c in include_cols if c not in key_cols
            ),
            hypothetical=True,
        )
        try:
            view = table.hypothetical_stats_view(ideal)
        except Exception:
            return
        candidate = self._index_seek_candidate(
            table,
            ideal,
            view,
            predicates,
            referenced,
            out_rows=self._cost_model.combined_selectivity(table, predicates)
            * table.row_count,
        )
        if candidate is None:
            return
        # Compare against the best access over *existing* structures only.
        best_existing = self._best_access(
            table, predicates, referenced, (), frozenset()
        )
        if candidate.cost >= best_existing.cost * (1.0 - MI_REPORT_THRESHOLD):
            return
        impact = 100.0 * (1.0 - candidate.cost / best_existing.cost)
        mi_sink(
            table_name,
            eq_cols,
            ineq_cols,
            ideal.included_columns,
            best_existing.cost,
            impact,
        )


# ----------------------------------------------------------------------
# Small helpers


def _predicates_by_column(
    predicates: Sequence[Predicate],
) -> Dict[str, List[Predicate]]:
    by_column: Dict[str, List[Predicate]] = {}
    for predicate in predicates:
        by_column.setdefault(predicate.column, []).append(predicate)
    return by_column


def _first_equality(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_equality:
            return predicate
    return None


def _first_range(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    for predicate in predicates:
        if predicate.is_range:
            return predicate
    return None


def _order_satisfied(
    available: Tuple[str, ...], wanted: Tuple[str, ...]
) -> bool:
    """True if ``available`` ordering covers ``wanted`` as a prefix."""
    if not wanted:
        return True
    if len(wanted) > len(available):
        return False
    return tuple(available[: len(wanted)]) == tuple(wanted)


def _distinct_estimate(table: Table, column: str) -> float:
    stats = table.statistics.get(column)
    if stats is not None and stats.distinct_count:
        return float(stats.distinct_count)
    return max(1.0, table.row_count / 10.0)
