"""Row-at-a-time plan interpretation with actual-cost metering.

The interpreter walks plan trees against real table data, counting the
pages and rows it genuinely touches.  Row streams between operators are
dictionaries keyed by column name; scans evaluate residual predicates on
raw tuples first and only build the dictionary for qualifying rows.

This is the reference semantics: the vectorized path in
:mod:`repro.engine.exec.vector` must reproduce both its row sets and its
meter charges bit for bit.  Helpers that define value semantics
(:func:`stable_sum`, :func:`aggregate_values`, :func:`sort_rows_inplace`,
:func:`topn_rows`) live here and are shared by both paths.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.exec.metering import (
    Meterings,
    delete_meter_entries,
    hash_join_meter_rows,
    insert_meter_entries,
    sort_meter_rows,
    update_meter_entries,
)
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    ClusteredSeekNode,
    DeletePlanNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    IndexSeekNode,
    InsertPlanNode,
    KeyLookupNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
    UpdatePlanNode,
)
from repro.engine.query import (
    AggFunc,
    DeleteQuery,
    InsertQuery,
    Op,
    Predicate,
    UpdateQuery,
)
from repro.engine.table import Table
from repro.engine.types import sort_key
from repro.errors import ExecutionError

RowDict = Dict[str, object]


class InterpExecutor:
    """Interprets plans one row dictionary at a time."""

    def __init__(self, tables: Dict[str, Table]) -> None:
        self._tables = tables

    # ------------------------------------------------------------------
    # Row-stream interpretation

    def iterate(
        self,
        node: PlanNode,
        meters: Meterings,
        binding: Optional[object] = None,
    ) -> Iterator[RowDict]:
        if isinstance(node, ClusteredScanNode):
            yield from self._iter_clustered_scan(node, meters)
        elif isinstance(node, ClusteredSeekNode):
            yield from self._iter_clustered_seek(node, meters, binding)
        elif isinstance(node, IndexSeekNode):
            yield from self._iter_index_seek(node, meters, binding)
        elif isinstance(node, IndexScanNode):
            yield from self._iter_index_scan(node, meters)
        elif isinstance(node, KeyLookupNode):
            yield from self._iter_key_lookup(node, meters, binding)
        elif isinstance(node, SortNode):
            yield from self._iter_sort(node, meters)
        elif isinstance(node, TopNode):
            yield from self._iter_top(node, meters)
        elif isinstance(node, (StreamAggregateNode, HashAggregateNode)):
            yield from self._iter_aggregate(node, meters)
        elif isinstance(node, NestedLoopJoinNode):
            yield from self._iter_nl_join(node, meters)
        elif isinstance(node, HashJoinNode):
            yield from self._iter_hash_join(node, meters)
        else:
            raise ExecutionError(f"cannot execute node {type(node).__name__}")

    def _table(self, name: str) -> Table:
        return self._tables[name]

    def _iter_clustered_scan(
        self, node: ClusteredScanNode, meters: Meterings
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        checks = compile_predicates(node.residual, schema)
        names, positions = meters.columns_for(table)
        columns = tuple(zip(names, positions))
        processed = 0
        try:
            for _key, row in table.clustered.scan(meter=meters.page_meter):
                processed += 1
                for check in checks:
                    if not check(row):
                        break
                else:
                    yield {name: row[pos] for name, pos in columns}
        finally:
            meters.rows_processed += processed

    def _iter_clustered_seek(
        self,
        node: ClusteredSeekNode,
        meters: Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        names, positions = meters.columns_for(table)
        checks = compile_predicates(node.residual, schema)
        entries = _seek_entries(
            table.clustered,
            node.eq_predicates,
            node.range_predicate,
            meters,
            binding,
        )
        for _key, row in entries:
            meters.rows_processed += 1
            if all(check(row) for check in checks):
                yield {name: row[pos] for name, pos in zip(names, positions)}

    def _iter_index_entries(
        self, node, meters: Meterings, entries
    ) -> Iterator[RowDict]:
        """Shared seek/scan entry pipeline: residual-check raw entries,
        then materialize only the needed columns."""
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        sources = index_entry_layout(table, index.definition)
        names, _positions = meters.columns_for(table)
        out_columns = [
            (name,) + sources[name] for name in names if name in sources
        ]
        checks = compile_entry_predicates(
            node.residual, sources, table.schema
        )
        processed = 0
        try:
            for key, payload in entries:
                processed += 1
                for check in checks:
                    if not check(key, payload):
                        break
                else:
                    yield {
                        name: (key[i] if in_key else payload[i])
                        for name, in_key, i in out_columns
                    }
        finally:
            meters.rows_processed += processed

    def _iter_index_seek(
        self,
        node: IndexSeekNode,
        meters: Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        entries = _seek_entries(
            index.tree, node.eq_predicates, node.range_predicate, meters, binding
        )
        return self._iter_index_entries(node, meters, entries)

    def _iter_index_scan(
        self, node: IndexScanNode, meters: Meterings
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        index = table.get_index(node.index_name)
        entries = index.tree.scan(meter=meters.page_meter)
        return self._iter_index_entries(node, meters, entries)

    def _iter_key_lookup(
        self,
        node: KeyLookupNode,
        meters: Meterings,
        binding: Optional[object],
    ) -> Iterator[RowDict]:
        table = self._table(node.table)
        schema = table.schema
        names, positions = meters.columns_for(table)
        pk = schema.primary_key
        checks = compile_predicates(node.residual, schema)
        for partial in self.iterate(node.child, meters, binding):
            pk_values = tuple(partial[column] for column in pk)
            row = table.fetch_by_pk(pk_values, meter=meters.page_meter)
            if row is None:
                continue
            meters.rows_processed += 1
            if all(check(row) for check in checks):
                yield {name: row[pos] for name, pos in zip(names, positions)}

    def _iter_sort(
        self,
        node: SortNode,
        meters: Meterings,
        limit: Optional[int] = None,
    ) -> Iterator[RowDict]:
        rows = list(self.iterate(node.child, meters))
        meters.sort_rows += sort_meter_rows(len(rows), limit)
        if limit is not None and limit < len(rows):
            yield from topn_rows(rows, node.order_by, limit)
            return
        sort_rows_inplace(rows, node.order_by)
        yield from rows

    def _iter_top(self, node: TopNode, meters: Meterings) -> Iterator[RowDict]:
        if isinstance(node.child, SortNode):
            # TOP-N pushdown: the sort keeps only a bounded heap instead
            # of ordering its entire input (charged via sort_meter_rows).
            yield from self._iter_sort(node.child, meters, limit=node.limit)
            return
        produced = 0
        for row in self.iterate(node.child, meters):
            if produced >= node.limit:
                return
            produced += 1
            yield row

    def _iter_aggregate(self, node, meters: Meterings) -> Iterator[RowDict]:
        hashed = isinstance(node, HashAggregateNode)
        group_by = node.group_by
        groups: Dict[tuple, List[RowDict]] = {}
        order: List[tuple] = []
        hash_rows = 0
        for row in self.iterate(node.child, meters):
            hash_rows += 1
            key = tuple(row[column] for column in group_by)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if hashed:
            meters.hash_rows += hash_rows
        if not groups and not node.group_by:
            groups[()] = []
            order.append(())
        for key in order:
            members = groups[key]
            out: RowDict = dict(zip(node.group_by, key))
            for aggregate in node.aggregates:
                out[aggregate.label()] = compute_aggregate(aggregate, members)
            yield out

    def _iter_nl_join(
        self, node: NestedLoopJoinNode, meters: Meterings
    ) -> Iterator[RowDict]:
        join = node.join
        for outer_row in self.iterate(node.outer, meters):
            bind_value = outer_row.get(join.left_column)
            if bind_value is None:
                continue
            for inner_row in self.iterate(node.inner, meters, binding=bind_value):
                yield {**inner_row, **outer_row}

    def _iter_hash_join(
        self, node: HashJoinNode, meters: Meterings
    ) -> Iterator[RowDict]:
        join = node.join
        build: Dict[object, List[RowDict]] = {}
        built = 0
        for inner_row in self.iterate(node.inner, meters):
            built += 1
            build.setdefault(inner_row.get(join.right_column), []).append(inner_row)
        meters.hash_rows += hash_join_meter_rows(built)
        probed = 0
        try:
            for outer_row in self.iterate(node.outer, meters):
                probed += 1
                value = outer_row.get(join.left_column)
                if value is None:
                    continue
                for inner_row in build.get(value, ()):
                    yield {**inner_row, **outer_row}
        finally:
            # Charged on close so an early-exiting consumer (TOP) still
            # pays for exactly the outer rows it pulled — the same total
            # the old per-row increment produced.
            meters.hash_rows += hash_join_meter_rows(probed)

    # ------------------------------------------------------------------
    # DML

    def execute_insert(
        self, plan: InsertPlanNode, query: InsertQuery, meters: Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        for row in query.rows:
            table.insert(row, meter=meters.page_meter)
            meters.maintained_entries += insert_meter_entries(1, len(table.indexes))
            meters.rows_processed += 1
        return []

    def execute_insert_batch(
        self, plan: InsertPlanNode, query: InsertQuery, meters: Meterings
    ) -> Optional[Tuple[List[RowDict], int]]:
        """Batched insert with per-index grouped maintenance.

        Returns ``(rows, batched row count)``, or ``None`` when the
        pre-checks (validation, duplicate keys) fail — the caller then
        runs the row-at-a-time path, which mutates and raises exactly as
        before, so error-path table state stays path-independent.  The
        pre-checks use unmetered seeks, so declining the batch leaves no
        charges behind.
        """
        table = self._table(plan.table)
        prepared = table.prepare_insert_rows(query.rows)
        if prepared is None:
            return None
        table.insert_rows(prepared, meter=meters.page_meter)
        meters.maintained_entries += insert_meter_entries(
            len(prepared), len(table.indexes)
        )
        meters.rows_processed += len(prepared)
        return [], len(prepared)

    def _collect_target_rows(
        self, child: PlanNode, table: Table, meters: Meterings
    ) -> List[tuple]:
        names = table.schema.column_names
        rows = []
        for row_map in self.iterate(child, meters):
            rows.append(tuple(row_map[name] for name in names))
        return rows

    def execute_update(
        self, plan: UpdatePlanNode, query: UpdateQuery, meters: Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        targets = self._collect_target_rows(plan.child, table, meters)
        affected = [
            name
            for name, index in table.indexes.items()
            if index.touches_columns(query.assigned_columns)
        ]
        for row in targets:
            table.update_row(row, query.assignments, meter=meters.page_meter)
            meters.maintained_entries += update_meter_entries(1, len(affected))
            meters.rows_processed += 1
        return []

    def execute_update_batch(
        self, plan: UpdatePlanNode, query: UpdateQuery, meters: Meterings
    ) -> Optional[Tuple[List[RowDict], int]]:
        """Batched update with per-index grouped maintenance.

        Declines (returns ``None``) when an assignment targets a primary
        key column or a value fails coercion up front: those paths can
        raise mid-statement, and the row-at-a-time path must own them so
        partial-mutation state is identical either way.  Target
        collection through the child plan is shared with the row path,
        so its charges are identical by construction.
        """
        table = self._table(plan.table)
        if any(
            column in table.schema.primary_key
            for column in query.assigned_columns
        ):
            return None
        try:
            coerced = tuple(
                (column, table.schema.column(column).sql_type.coerce(value))
                for column, value in query.assignments
            )
        except Exception:
            return None
        targets = self._collect_target_rows(plan.child, table, meters)
        affected = sum(
            1
            for index in table.indexes.values()
            if index.touches_columns(query.assigned_columns)
        )
        table.update_rows(targets, coerced, meter=meters.page_meter)
        meters.maintained_entries += update_meter_entries(len(targets), affected)
        meters.rows_processed += len(targets)
        return [], len(targets)

    def execute_delete(
        self, plan: DeletePlanNode, query: DeleteQuery, meters: Meterings
    ) -> List[RowDict]:
        table = self._table(plan.table)
        targets = self._collect_target_rows(plan.child, table, meters)
        for row in targets:
            table.delete_row(row, meter=meters.page_meter)
            meters.maintained_entries += delete_meter_entries(1, len(table.indexes))
            meters.rows_processed += 1
        return []

    def execute_delete_batch(
        self, plan: DeletePlanNode, query: DeleteQuery, meters: Meterings
    ) -> Tuple[List[RowDict], int]:
        """Batched delete with per-index grouped maintenance.

        Deletes cannot fail validation (targets were just read), so
        there is no pre-check/decline step.
        """
        table = self._table(plan.table)
        targets = self._collect_target_rows(plan.child, table, meters)
        table.delete_rows(targets, meter=meters.page_meter)
        meters.maintained_entries += delete_meter_entries(
            len(targets), len(table.indexes)
        )
        meters.rows_processed += len(targets)
        return [], len(targets)


# ----------------------------------------------------------------------
# Sorting helpers (shared by both execution paths)


class _DescKey:
    """Inverts comparisons so ``heapq.nsmallest`` handles DESC columns."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_DescKey") -> bool:
        return other.key < self.key

    def __le__(self, other: "_DescKey") -> bool:
        return other.key <= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescKey) and other.key == self.key


def _composite_sort_key(order_by):
    def key(row: RowDict) -> tuple:
        parts = []
        for item in order_by:
            part = sort_key(row.get(item.column))
            parts.append(part if item.ascending else _DescKey(part))
        return tuple(parts)

    return key


def sort_rows_inplace(rows: List[RowDict], order_by) -> None:
    """Order rows by the ORDER BY list via repeated stable passes.

    Equivalent to one stable sort on the composite key; kept as the
    reference implementation because ties must preserve input order.
    """
    for item in reversed(order_by):
        rows.sort(
            key=lambda r: sort_key(r.get(item.column)),
            reverse=not item.ascending,
        )


def topn_rows(rows: List[RowDict], order_by, limit: int) -> List[RowDict]:
    """First ``limit`` rows of the fully sorted order, via a bounded heap.

    ``heapq.nsmallest`` is documented equivalent to ``sorted(...)[:n]``
    (stable), so the result matches :func:`sort_rows_inplace` + slice.
    """
    return heapq.nsmallest(limit, rows, key=_composite_sort_key(order_by))


# ----------------------------------------------------------------------
# Predicate compilation


def compile_entry_predicates(predicates, sources, schema):
    """Compile predicates into checks over raw (key, payload) entries."""
    checks = []
    for predicate in predicates:
        in_key, i = sources[predicate.column]
        sql_type = schema.column(predicate.column).sql_type
        v = sql_type.coerce(predicate.value)
        v2 = (
            sql_type.coerce(predicate.value2)
            if predicate.op is Op.BETWEEN
            else None
        )
        op = predicate.op

        def check(key, payload, in_key=in_key, i=i, op=op, v=v, v2=v2):
            value = key[i] if in_key else payload[i]
            if value is None:
                return False
            if op is Op.EQ:
                return value == v
            if op is Op.NEQ:
                return value != v
            if op is Op.LT:
                return value < v
            if op is Op.LE:
                return value <= v
            if op is Op.GT:
                return value > v
            if op is Op.GE:
                return value >= v
            return v <= value <= v2

        checks.append(check)
    return checks


def compile_predicates(predicates, schema):
    """Compile predicates into specialized row-tuple checks.

    Values are coerced to the column type once here, so the per-row
    closures can use native comparisons without type guards (SQL NULL is
    the only special case: it never matches).
    """
    checks = []
    for predicate in predicates:
        i = schema.position(predicate.column)
        sql_type = schema.column(predicate.column).sql_type
        op = predicate.op
        v = sql_type.coerce(predicate.value)
        if op is Op.EQ:
            checks.append(lambda row, i=i, v=v: row[i] == v and v is not None)
        elif op is Op.NEQ:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] != v
            )
        elif op is Op.LT:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] < v
            )
        elif op is Op.LE:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] <= v
            )
        elif op is Op.GT:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] > v
            )
        elif op is Op.GE:
            checks.append(
                lambda row, i=i, v=v: row[i] is not None and row[i] >= v
            )
        elif op is Op.BETWEEN:
            v2 = sql_type.coerce(predicate.value2)
            checks.append(
                lambda row, i=i, v=v, v2=v2: row[i] is not None
                and v <= row[i] <= v2
            )
        else:  # pragma: no cover - exhaustive over Op
            checks.append(lambda row, p=predicate, i=i: p.matches(row[i]))
    return checks


def index_entry_layout(table: Table, definition):
    """Column -> (in_key, position) map for an index's (key, payload)."""
    key_len = len(definition.key_columns)
    sources: Dict[str, Tuple[bool, int]] = {}
    for i, column in enumerate(definition.key_columns):
        sources[column] = (True, i)
    for i, column in enumerate(table.schema.primary_key):
        sources.setdefault(column, (True, key_len + i))
    for i, column in enumerate(definition.included_columns):
        sources.setdefault(column, (False, i))
    return sources


def _bind(value: object, binding: Optional[object]) -> object:
    if value is PARAM:
        if binding is None:
            raise ExecutionError("unbound join parameter in seek predicate")
        return binding
    return value


def _seek_entries(
    tree,
    eq_predicates: Tuple[Predicate, ...],
    range_predicate: Optional[Predicate],
    meters: Meterings,
    binding: Optional[object],
):
    """Iterate index entries matching an equality prefix + optional range."""
    prefix = tuple(_bind(p.value, binding) for p in eq_predicates)
    if range_predicate is None:
        if not prefix:
            return tree.scan(meter=meters.page_meter)
        return tree.seek_prefix(prefix, meter=meters.page_meter)
    low, high, low_inc, high_inc = range_predicate.range_bounds()
    low_key = prefix + ((_bind(low, binding),) if low is not None else ())
    high_key = prefix + ((_bind(high, binding),) if high is not None else ())
    return tree.range_scan(
        low=low_key if (low is not None or prefix) else None,
        high=high_key if (high is not None or prefix) else None,
        low_inclusive=low_inc if low is not None else True,
        high_inclusive=high_inc if high is not None else True,
        meter=meters.page_meter,
    )


# ----------------------------------------------------------------------
# Aggregation (value semantics shared by both paths)


def stable_sum(values):
    """Order-independent sum: exact ``math.fsum`` whenever floats appear.

    Different access paths feed aggregation in different row orders
    (index order vs heap order), and naive float addition is not
    associative — plans would return different SUM/AVG bits for the same
    data.  ``fsum`` is exactly rounded, so every ordering agrees.
    All-integer inputs keep ``sum()`` to preserve the ``int`` result type.
    """
    if any(isinstance(v, float) for v in values):
        return math.fsum(values)
    return sum(values)


def aggregate_values(aggregate, values: List[object], count: int):
    """Reduce one group given its non-NULL ``values`` and member ``count``.

    ``values`` must exclude SQL NULLs; ``count`` includes them (COUNT(*)
    semantics).  Both execution paths funnel through this function so
    SUM/AVG/MIN/MAX bits agree regardless of how members were gathered.
    """
    if aggregate.func is AggFunc.COUNT:
        return count if aggregate.column is None else len(values)
    if not values:
        return None
    if aggregate.func is AggFunc.SUM:
        return stable_sum(values)
    if aggregate.func is AggFunc.AVG:
        return stable_sum(values) / len(values)
    if aggregate.func is AggFunc.MIN:
        return min(values, key=sort_key)
    if aggregate.func is AggFunc.MAX:
        return max(values, key=sort_key)
    raise ExecutionError(f"unhandled aggregate {aggregate.func}")


def compute_aggregate(aggregate, rows: List[RowDict]):
    """Reduce one group of row dictionaries (interpreter's view)."""
    if aggregate.func is AggFunc.COUNT and aggregate.column is None:
        return len(rows)
    values = [
        row.get(aggregate.column)
        for row in rows
        if row.get(aggregate.column) is not None
    ]
    return aggregate_values(aggregate, values, len(rows))
