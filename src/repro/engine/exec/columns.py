"""Columnar projection cache for the vectorized execution path.

Each :class:`ColumnarCache` belongs to one :class:`~repro.engine.table.Table`
and holds per-projection columnar images: one for the clustered tree and
one per secondary index.  A projection snapshots the tree's entries in
scan order and lazily normalizes each referenced column into a NumPy
array pair (filled values + NULL mask).

Validity is keyed on the table's ``(data_version, schema_version)``
token: every DML bumps ``data_version`` and every index create/drop
bumps ``schema_version``, so any access after a mutation discards the
cached projections and rebuilds on demand.  ``Table.clone()`` constructs
a fresh ``Table`` (fresh cache attribute), so B-instance forks never
share projections with their origin.

Design rule: output values always come from the original Python entry
tuples — NumPy computes only masks, orders, and groupings — so result
bits match the interpreted path exactly.
"""

from __future__ import annotations

import functools
import operator
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.exec.interp import index_entry_layout
from repro.engine.types import SqlType

#: SQL types stored as int64 arrays (BOOL uses 0/1; DATE is an int day).
_INT_KINDS = (SqlType.INT, SqlType.BIGINT, SqlType.DATE, SqlType.BOOL)


class VectorUnsupported(Exception):
    """The vectorized path cannot handle this plan/column; fall back."""


class ColumnVector:
    """One column as (filled values, NULL mask) plus lazy rank codes."""

    __slots__ = ("values", "nulls", "_codes", "_equi")

    def __init__(self, values: np.ndarray, nulls: np.ndarray) -> None:
        self.values = values
        self.nulls = nulls
        self._codes: Optional[np.ndarray] = None
        self._equi: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def codes(self) -> np.ndarray:
        """Dense sort ranks (int64); NULLs are coded -1 so they sort
        first ascending, matching ``sort_key``'s NULLs-first order."""
        if self._codes is None:
            _uniq, inverse = np.unique(self.values, return_inverse=True)
            codes = inverse.reshape(len(self.values)).astype(np.int64)
            codes[self.nulls] = -1
            self._codes = codes
        return self._codes

    def equi_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """The column's cached hash-build side: ``(order, sorted_values)``.

        ``order`` lists the non-NULL row positions stably sorted by
        value, ``sorted_values`` the values in that order, so an
        equi-join probe is two ``searchsorted`` calls and ``order[lo:hi]``
        yields a key's matches in scan order (the order the
        interpreter's build dict preserves).  NULL rows are excluded:
        SQL equality never matches NULL.  The index lives on the vector,
        inside the owning table's :class:`ColumnarCache`, so it is
        keyed on that table's ``(data_version, schema_version)`` token
        and invalidates on *its* DML/DDL — the build side's, not the
        probe side's.
        """
        if self._equi is None:
            valid = np.flatnonzero(~self.nulls)
            values = self.values[valid]
            order = np.argsort(values, kind="stable")
            self._equi = (valid[order], values[order])
        return self._equi


def _build_vector(sql_type: SqlType, raw_values: List[object]) -> ColumnVector:
    n = len(raw_values)
    nulls = np.fromiter((v is None for v in raw_values), dtype=bool, count=n)
    try:
        if sql_type in _INT_KINDS:
            values = np.fromiter(
                (0 if v is None else v for v in raw_values),
                dtype=np.int64,
                count=n,
            )
        elif sql_type is SqlType.FLOAT:
            values = np.fromiter(
                (0.0 if v is None else v for v in raw_values),
                dtype=np.float64,
                count=n,
            )
        else:
            if n == 0:
                values = np.empty(0, dtype="U1")
            else:
                values = np.array(
                    ["" if v is None else v for v in raw_values], dtype=np.str_
                )
    except (OverflowError, ValueError, TypeError) as exc:
        # e.g. a BIGINT beyond int64: the interpreter handles it fine.
        raise VectorUnsupported(str(exc)) from exc
    return ColumnVector(values, nulls)


def contiguous_slice(positions: np.ndarray) -> Optional[Tuple[int, int]]:
    """``(start, stop)`` when ``positions`` is a dense ascending run,
    else ``None``.

    Full scans and high-selectivity filters select long unbroken runs
    of row positions; gathering those with one list slice skips the
    per-cell indexing entirely.  ``stop - start == n`` plus strictly
    increasing values proves the run covers every position exactly
    once.
    """
    n = positions.size
    if n == 0:
        return None
    start = int(positions[0])
    stop = int(positions[-1]) + 1
    if stop - start != n:
        return None
    if n > 1 and not bool((positions[1:] > positions[:-1]).all()):
        return None
    return start, stop


@functools.lru_cache(maxsize=256)
def row_builder(
    names: Tuple[str, ...]
) -> Callable[[List[object]], List[Dict[str, object]]]:
    """A compiled row-dict constructor for one column-name tuple.

    Takes per-column cell sequences (all the same length) and returns
    the row dictionaries, keys in ``names`` order — the same output as
    ``[dict(zip(names, cells)) for cells in zip(*columns)]``, but ~3x
    faster: the generated comprehension builds each dict with a literal
    whose keys are embedded constants, skipping the per-row ``zip`` and
    ``dict()`` call overhead.  Names are embedded via ``repr`` so any
    column name is safe to compile.  Cached per name tuple; statements
    reuse a handful of projections, so the cache stays tiny.
    """
    if not names:
        return lambda columns: []
    if len(names) == 1:
        key = names[0]
        return lambda columns: [{key: value} for value in columns[0]]
    variables = [f"v{i}" for i in range(len(names))]
    pairs = ", ".join(
        f"{name!r}: {var}" for name, var in zip(names, variables)
    )
    args = ", ".join(variables)
    source = f"lambda columns: [{{{pairs}}} for {args} in zip(*columns)]"
    return eval(source)  # noqa: S307 - keys repr-escaped above


class Projection:
    """Columnar image of one tree (clustered or one secondary index).

    Entries are snapshotted eagerly in scan order (cheap: list of
    existing tuples); per-column arrays are built lazily on first use.
    """

    def __init__(self, table, index_name: Optional[str] = None) -> None:
        self._schema = table.schema
        if index_name is None:
            tree = table.clustered
            rows = [row for _key, row in tree.items()]
            self._rows = rows
            self._layout: Dict[str, Tuple[bool, int]] = {}
            self._positions = {
                name: self._schema.position(name)
                for name in self._schema.column_names
            }
        else:
            index = table.get_index(index_name)
            tree = index.tree
            entries = list(tree.items())
            self._rows = entries
            self._layout = index_entry_layout(table, index.definition)
            self._positions = {}
        self.row_count = len(self._rows)
        #: Page charge of a complete scan of this tree: the descent to
        #: the leftmost leaf (= height) plus one hop per remaining leaf.
        self.scan_pages = tree.height + tree.leaf_page_count - 1
        self._raw: Dict[str, List[object]] = {}
        self._vectors: Dict[str, ColumnVector] = {}

    def has(self, column: str) -> bool:
        return column in self._positions or column in self._layout

    def raw_column(self, column: str) -> List[object]:
        """All values of one column, in scan order, as raw Python objects."""
        cached = self._raw.get(column)
        if cached is not None:
            return cached
        if column in self._positions:
            pos = self._positions[column]
            values = [row[pos] for row in self._rows]
        elif column in self._layout:
            in_key, i = self._layout[column]
            if in_key:
                values = [key[i] for key, _payload in self._rows]
            else:
                values = [payload[i] for _key, payload in self._rows]
        else:
            raise VectorUnsupported(f"column {column!r} not in projection")
        self._raw[column] = values
        return values

    def vector(self, column: str) -> ColumnVector:
        vec = self._vectors.get(column)
        if vec is None:
            sql_type = self._schema.column(column).sql_type
            vec = _build_vector(sql_type, self.raw_column(column))
            self._vectors[column] = vec
        return vec

    def materialize(
        self,
        indices: np.ndarray,
        names: Tuple[str, ...],
        missing_as_none: bool = False,
    ) -> List[Dict[str, object]]:
        """Row dictionaries for the selected positions, in the given
        column order — the same dict the interpreter would build.

        With ``missing_as_none`` the output keeps every requested name
        and fills absent columns with ``None`` (the final SELECT-list
        shape, matching ``row.get``); otherwise absent columns are
        dropped (the internal row-stream shape).

        Cells are gathered per column with ``itemgetter`` and rows are
        re-formed by the compiled :func:`row_builder`, so the per-row
        Python work is one dict-literal construction rather than a
        cell-by-cell loop.
        """
        if not missing_as_none:
            names = tuple(name for name in names if self.has(name))
        count = len(indices)
        if count == 0:
            return []
        if not names:
            return [{} for _ in range(count)]
        span = contiguous_slice(indices)
        if span is None:
            positions = indices.tolist()
            picker = (
                operator.itemgetter(*positions)
                if count > 1
                else operator.itemgetter(positions[0])
            )
        gathered = []
        for name in names:
            if not self.has(name):
                gathered.append((None,) * count)
            elif span is not None:
                gathered.append(self.raw_column(name)[span[0]:span[1]])
            elif count == 1:
                gathered.append((picker(self.raw_column(name)),))
            else:
                gathered.append(picker(self.raw_column(name)))
        return row_builder(names)(gathered)


class ColumnarCache:
    """Lazily built columnar projections for one table.

    ``hits`` / ``misses`` count projection lookups (one per vectorized
    scan); ``invalidations`` counts the times cached projections were
    discarded because the table's version token moved.  All three are
    monotone so they can be published as fleet gauges.
    """

    __slots__ = (
        "_table", "_token", "_projections", "hits", "misses", "invalidations"
    )

    def __init__(self, table) -> None:
        self._table = table
        self._token: Optional[Tuple[int, int]] = None
        self._projections: Dict[Optional[str], Projection] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _refresh(self) -> None:
        token = (self._table.data_version, self._table.schema_version)
        if token != self._token:
            if self._projections:
                self.invalidations += 1
                self._projections.clear()
            self._token = token

    def projection(self, index_name: Optional[str] = None) -> Projection:
        """Get-or-build the columnar image of one tree (None = clustered)."""
        self._refresh()
        cached = self._projections.get(index_name)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        built = Projection(self._table, index_name)
        self._projections[index_name] = built
        return built
