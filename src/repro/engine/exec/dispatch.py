"""The executor facade: picks the interpreted or vectorized path.

Mode resolution (per statement, cheap):

1. ``ExecutionCostSettings.executor_mode`` when set;
2. else the ``REPRO_EXECUTOR`` environment variable;
3. else ``auto``.

``interp`` always interprets; ``vector`` batches every supported plan
shape; ``auto`` batches supported shapes only when the scanned table has
at least ``ExecutionCostSettings.vector_min_rows`` rows (below that the
projection build outweighs the win).  DML, seeks, key lookups, joins,
and TOP-over-lazy-scan always interpret.  Whatever the path, metering is
byte-identical — see :mod:`repro.engine.exec.metering`.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.cost_model import ExecutionCostSettings
from repro.engine.exec import vector
from repro.engine.exec.columns import VectorUnsupported
from repro.engine.exec.interp import InterpExecutor, RowDict
from repro.engine.exec.metering import ExecutionMetrics, Meterings
from repro.engine.plans import (
    DeletePlanNode,
    InsertPlanNode,
    PlanNode,
    UpdatePlanNode,
    scan_leaf,
)
from repro.engine.query import SelectQuery
from repro.engine.table import Table
from repro.errors import ExecutionError

_MODES = ("auto", "vector", "interp")


def resolve_executor_mode(settings: ExecutionCostSettings) -> str:
    """The effective execution mode for one statement."""
    mode = settings.executor_mode
    if mode is None:
        mode = os.environ.get("REPRO_EXECUTOR") or "auto"
    mode = mode.lower()
    if mode not in _MODES:
        raise ExecutionError(
            f"invalid executor mode {mode!r}: "
            "REPRO_EXECUTOR must be vector, interp, or auto"
        )
    return mode


class Executor:
    """Executes plans against tables, producing rows and actual metrics."""

    def __init__(
        self,
        tables: Dict[str, Table],
        settings: Optional[ExecutionCostSettings] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._tables = tables
        self._settings = settings or ExecutionCostSettings()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._interp = InterpExecutor(tables)
        #: Monotone dispatch counters, published as ``executor_*`` gauges.
        self.vector_statements = 0
        self.interp_statements = 0
        #: Rows that flowed through vectorized batch operators.
        self.batch_rows = 0

    # ------------------------------------------------------------------

    def execute(
        self, plan: PlanNode, query
    ) -> Tuple[List[RowDict], ExecutionMetrics]:
        """Run the plan; return projected output rows and actual metrics."""
        meters = Meterings()
        meters.needed = self._needed_columns(query)
        if isinstance(plan, InsertPlanNode):
            self.interp_statements += 1
            rows = self._interp.execute_insert(plan, query, meters)
        elif isinstance(plan, UpdatePlanNode):
            self.interp_statements += 1
            rows = self._interp.execute_update(plan, query, meters)
        elif isinstance(plan, DeletePlanNode):
            self.interp_statements += 1
            rows = self._interp.execute_delete(plan, query, meters)
        else:
            rows = self._execute_select(plan, query, meters)
        metrics = self._finalize_metrics(meters, len(rows))
        return rows, metrics

    def _execute_select(
        self, plan: PlanNode, query, meters: Meterings
    ) -> List[RowDict]:
        if self._choose_vector(plan):
            try:
                rows, batch_rows = vector.run(
                    plan,
                    self._tables,
                    meters,
                    project_columns=self._projection_columns(query),
                )
            except VectorUnsupported:
                # Undo any partial charges; the interpreter re-runs the
                # whole plan so the metrics stay path-independent.
                meters.reset_counters()
            else:
                self.vector_statements += 1
                self.batch_rows += batch_rows
                return rows  # already in the final SELECT-list shape
        self.interp_statements += 1
        return self._project(list(self._interp.iterate(plan, meters)), query)

    def _choose_vector(self, plan: PlanNode) -> bool:
        mode = resolve_executor_mode(self._settings)
        if mode == "interp":
            return False
        if not vector.supports(plan):
            return False
        if mode == "vector":
            return True
        scan = scan_leaf(plan)
        table = self._tables.get(scan.table) if scan is not None else None
        return (
            table is not None
            and table.row_count >= self._settings.vector_min_rows
        )

    # ------------------------------------------------------------------

    def _needed_columns(self, query) -> Optional[Dict[str, Tuple[str, ...]]]:
        """Column subsets the row stream must carry, per table.

        SELECT streams only need referenced columns plus the primary key
        (for key lookups); DML needs full rows and returns None.
        """
        if not isinstance(query, SelectQuery):
            return None
        table = self._tables.get(query.table)
        if table is None:
            return None
        names = dict.fromkeys(query.referenced_columns())
        for pk_column in table.schema.primary_key:
            names.setdefault(pk_column)
        needed = {query.table: tuple(names)}
        if query.join is not None:
            right = self._tables.get(query.join.table)
            if right is not None:
                right_names = dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
                for pk_column in right.schema.primary_key:
                    right_names.setdefault(pk_column)
                needed[query.join.table] = tuple(right_names)
        return needed

    def _finalize_metrics(
        self, meters: Meterings, rows_returned: int
    ) -> ExecutionMetrics:
        s = self._settings
        pages = meters.page_meter.pages
        cpu = (
            meters.rows_processed * s.cpu_ms_per_row
            + pages * s.cpu_ms_per_page
            + meters.sort_rows * s.cpu_ms_per_sort_row
            + meters.hash_rows * s.cpu_ms_per_hash_row
            + meters.maintained_entries * s.cpu_ms_per_maintained_entry
        )
        if s.noise_sigma > 0:
            cpu *= math.exp(self._rng.normal(0.0, s.noise_sigma))
        duration = cpu + pages * s.io_wait_ms_per_page
        if s.noise_sigma > 0:
            duration *= math.exp(self._rng.normal(0.0, 2.5 * s.noise_sigma))
        return ExecutionMetrics(
            cpu_time_ms=cpu,
            duration_ms=duration,
            logical_reads=pages,
            rows_returned=rows_returned,
        )

    # ------------------------------------------------------------------
    # Projection

    def _projection_columns(self, query) -> Optional[Tuple[str, ...]]:
        """The final SELECT-list shape, or None when rows pass through
        unprojected (aggregates and SELECT-* queries)."""
        if not isinstance(query, SelectQuery) or query.is_aggregate:
            return None
        columns = list(query.select_columns)
        if query.join is not None:
            columns.extend(query.join.select_columns)
        return tuple(columns) if columns else None

    def _project(self, rows: List[RowDict], query) -> List[RowDict]:
        if not isinstance(query, SelectQuery):
            return rows
        if query.is_aggregate:
            return rows  # aggregate operators already shaped the output
        columns = list(query.select_columns)
        if query.join is not None:
            columns.extend(query.join.select_columns)
        if not columns:
            return rows
        return [
            {column: row.get(column) for column in columns} for row in rows
        ]

    # ------------------------------------------------------------------
    # Observability

    def column_cache_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, invalidations) summed over this engine's tables."""
        hits = misses = invalidations = 0
        for table in self._tables.values():
            cache_hits, cache_misses, cache_invalidations = table.columnar_stats
            hits += cache_hits
            misses += cache_misses
            invalidations += cache_invalidations
        return hits, misses, invalidations
