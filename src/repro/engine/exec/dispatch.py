"""The executor facade: picks the interpreted or vectorized path.

Mode resolution (per statement, cheap):

1. ``ExecutionCostSettings.executor_mode`` when set;
2. else the ``REPRO_EXECUTOR`` environment variable;
3. else ``auto``.

``interp`` always interprets; ``vector`` batches every supported
statement; ``auto`` batches only when enough rows are at stake — at
least ``vector_min_rows`` in the gating table for SELECTs, at least
``dml_batch_min_rows`` affected rows for DML.  Seeks, key lookups,
nested-loop joins, and TOP-over-lazy-source always interpret.  Whatever
the path, metering is byte-identical — see
:mod:`repro.engine.exec.metering`.

Every statement that lands on the interpreter is attributed to exactly
one reason in :data:`FALLBACK_REASONS`, published as the
``executor_fallback_<reason>_total`` gauges, so fast-path coverage is
observable per fleet:

- ``mode`` — the executor mode is ``interp``;
- ``threshold`` — ``auto`` mode, too few rows to amortize batching;
- ``shape`` — unsupported single-table plan shape (seeks, key lookups,
  TOP over a lazy source);
- ``join`` — unsupported join shape (nested-loop, seek-fed hash join,
  TOP directly over a join);
- ``hinted`` — an index-hinted query produced an unsupported shape;
- ``dml`` — a DML batch declined its pre-checks (duplicate keys,
  validation, primary-key assignment) and must mutate row-at-a-time;
- ``runtime`` — the vector path bailed out mid-plan
  (:class:`VectorUnsupported`) and charges were rolled back.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.cost_model import ExecutionCostSettings
from repro.engine.exec import vector
from repro.engine.exec.columns import VectorUnsupported
from repro.engine.exec.interp import InterpExecutor, RowDict
from repro.engine.exec.metering import ExecutionMetrics, Meterings
from repro.engine.plans import (
    DeletePlanNode,
    HashJoinNode,
    InsertPlanNode,
    NestedLoopJoinNode,
    PlanNode,
    UpdatePlanNode,
)
from repro.engine.query import SelectQuery
from repro.engine.table import Table
from repro.errors import ExecutionError

_MODES = ("auto", "vector", "interp")

#: Why a statement ran on the interpreter (see module docstring).  Every
#: interpreted statement increments exactly one reason counter, so the
#: sum over reasons equals ``interp_statements``.
FALLBACK_REASONS = (
    "mode",
    "threshold",
    "shape",
    "join",
    "hinted",
    "dml",
    "runtime",
)

#: Gauge name per fallback reason (``executor_fallback_<reason>_total``).
#: Built here, next to the taxonomy, so the observability lint can
#: cross-check the metrics CATALOG against :data:`FALLBACK_REASONS`.
FALLBACK_GAUGES = {
    reason: f"executor_fallback_{reason}_total"
    for reason in FALLBACK_REASONS
}

_JOIN_NODES = (NestedLoopJoinNode, HashJoinNode)


def resolve_executor_mode(settings: ExecutionCostSettings) -> str:
    """The effective execution mode for one statement."""
    mode = settings.executor_mode
    if mode is None:
        mode = os.environ.get("REPRO_EXECUTOR") or "auto"
    mode = mode.lower()
    if mode not in _MODES:
        raise ExecutionError(
            f"invalid executor mode {mode!r}: "
            "REPRO_EXECUTOR must be vector, interp, or auto"
        )
    return mode


class Executor:
    """Executes plans against tables, producing rows and actual metrics."""

    def __init__(
        self,
        tables: Dict[str, Table],
        settings: Optional[ExecutionCostSettings] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._tables = tables
        self._settings = settings or ExecutionCostSettings()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._interp = InterpExecutor(tables)
        #: Monotone dispatch counters, published as ``executor_*`` gauges.
        self.vector_statements = 0
        self.interp_statements = 0
        #: Rows that flowed through vectorized batch operators (scanned
        #: projection rows for SELECTs, affected rows for batched DML).
        self.batch_rows = 0
        #: Per-reason interpreter-fallback counts (monotone), published
        #: as ``executor_fallback_<reason>_total`` gauges.
        self.fallback_counts: Dict[str, int] = {
            reason: 0 for reason in FALLBACK_REASONS
        }

    # ------------------------------------------------------------------

    def execute(
        self, plan: PlanNode, query
    ) -> Tuple[List[RowDict], ExecutionMetrics]:
        """Run the plan; return projected output rows and actual metrics."""
        meters = Meterings()
        meters.needed = self._needed_columns(query)
        if isinstance(plan, InsertPlanNode):
            rows = self._execute_insert(plan, query, meters)
        elif isinstance(plan, UpdatePlanNode):
            rows = self._execute_update(plan, query, meters)
        elif isinstance(plan, DeletePlanNode):
            rows = self._execute_delete(plan, query, meters)
        else:
            rows = self._execute_select(plan, query, meters)
        metrics = self._finalize_metrics(meters, len(rows))
        return rows, metrics

    def _fall_back(self, reason: str) -> None:
        self.interp_statements += 1
        self.fallback_counts[reason] += 1

    # ------------------------------------------------------------------
    # SELECT dispatch

    def _execute_select(
        self, plan: PlanNode, query, meters: Meterings
    ) -> List[RowDict]:
        use_vector, reason = self._classify_select(plan, query)
        if use_vector:
            try:
                rows, batch_rows = vector.run(
                    plan,
                    self._tables,
                    meters,
                    project_columns=self._projection_columns(query),
                )
            except VectorUnsupported:
                # Undo any partial charges; the interpreter re-runs the
                # whole plan so the metrics stay path-independent.
                meters.reset_counters()
                reason = "runtime"
            else:
                self.vector_statements += 1
                self.batch_rows += batch_rows
                return rows  # already in the final SELECT-list shape
        self._fall_back(reason)
        return self._project(list(self._interp.iterate(plan, meters)), query)

    def _classify_select(
        self, plan: PlanNode, query
    ) -> Tuple[bool, Optional[str]]:
        """(vectorize?, fallback reason when not)."""
        mode = resolve_executor_mode(self._settings)
        if mode == "interp":
            return False, "mode"
        if not vector.supports(plan):
            if isinstance(query, SelectQuery) and query.index_hint:
                return False, "hinted"
            if any(isinstance(node, _JOIN_NODES) for node in plan.walk()):
                return False, "join"
            return False, "shape"
        if mode == "vector":
            return True, None
        table_name = vector.gate_table(plan)
        table = self._tables.get(table_name) if table_name else None
        if table is None or table.row_count < self._settings.vector_min_rows:
            return False, "threshold"
        return True, None

    # ------------------------------------------------------------------
    # DML dispatch

    def _dml_reason(self, row_estimate: float) -> Optional[str]:
        """None when the batch maintenance path should be tried, else
        the fallback reason.  ``row_estimate`` is exact for INSERT and
        the optimizer's (deterministic) estimate for UPDATE/DELETE, so
        both execution modes pick the same path for the same statement.
        """
        mode = resolve_executor_mode(self._settings)
        if mode == "interp":
            return "mode"
        if mode == "auto" and row_estimate < self._settings.dml_batch_min_rows:
            return "threshold"
        return None

    def _execute_insert(
        self, plan: InsertPlanNode, query, meters: Meterings
    ) -> List[RowDict]:
        reason = self._dml_reason(len(query.rows))
        if reason is None:
            result = self._interp.execute_insert_batch(plan, query, meters)
            if result is not None:
                rows, batched = result
                self.vector_statements += 1
                self.batch_rows += batched
                return rows
            reason = "dml"
        self._fall_back(reason)
        return self._interp.execute_insert(plan, query, meters)

    def _execute_update(
        self, plan: UpdatePlanNode, query, meters: Meterings
    ) -> List[RowDict]:
        estimate = plan.child.est_rows if plan.child is not None else 0.0
        reason = self._dml_reason(estimate)
        if reason is None:
            result = self._interp.execute_update_batch(plan, query, meters)
            if result is not None:
                rows, batched = result
                self.vector_statements += 1
                self.batch_rows += batched
                return rows
            reason = "dml"
        self._fall_back(reason)
        return self._interp.execute_update(plan, query, meters)

    def _execute_delete(
        self, plan: DeletePlanNode, query, meters: Meterings
    ) -> List[RowDict]:
        estimate = plan.child.est_rows if plan.child is not None else 0.0
        reason = self._dml_reason(estimate)
        if reason is None:
            rows, batched = self._interp.execute_delete_batch(plan, query, meters)
            self.vector_statements += 1
            self.batch_rows += batched
            return rows
        self._fall_back(reason)
        return self._interp.execute_delete(plan, query, meters)

    # ------------------------------------------------------------------

    def _needed_columns(self, query) -> Optional[Dict[str, Tuple[str, ...]]]:
        """Column subsets the row stream must carry, per table.

        SELECT streams only need referenced columns plus the primary key
        (for key lookups); DML needs full rows and returns None.
        """
        if not isinstance(query, SelectQuery):
            return None
        table = self._tables.get(query.table)
        if table is None:
            return None
        names = dict.fromkeys(query.referenced_columns())
        for pk_column in table.schema.primary_key:
            names.setdefault(pk_column)
        needed = {query.table: tuple(names)}
        if query.join is not None:
            right = self._tables.get(query.join.table)
            if right is not None:
                right_names = dict.fromkeys(
                    (query.join.right_column,)
                    + tuple(p.column for p in query.join.predicates)
                    + tuple(query.join.select_columns)
                )
                for pk_column in right.schema.primary_key:
                    right_names.setdefault(pk_column)
                needed[query.join.table] = tuple(right_names)
        return needed

    def _finalize_metrics(
        self, meters: Meterings, rows_returned: int
    ) -> ExecutionMetrics:
        s = self._settings
        pages = meters.page_meter.pages
        cpu = (
            meters.rows_processed * s.cpu_ms_per_row
            + pages * s.cpu_ms_per_page
            + meters.sort_rows * s.cpu_ms_per_sort_row
            + meters.hash_rows * s.cpu_ms_per_hash_row
            + meters.maintained_entries * s.cpu_ms_per_maintained_entry
        )
        if s.noise_sigma > 0:
            cpu *= math.exp(self._rng.normal(0.0, s.noise_sigma))
        duration = cpu + pages * s.io_wait_ms_per_page
        if s.noise_sigma > 0:
            duration *= math.exp(self._rng.normal(0.0, 2.5 * s.noise_sigma))
        return ExecutionMetrics(
            cpu_time_ms=cpu,
            duration_ms=duration,
            logical_reads=pages,
            rows_returned=rows_returned,
        )

    # ------------------------------------------------------------------
    # Projection

    def _projection_columns(self, query) -> Optional[Tuple[str, ...]]:
        """The final SELECT-list shape, or None when rows pass through
        unprojected (aggregates and SELECT-* queries)."""
        if not isinstance(query, SelectQuery) or query.is_aggregate:
            return None
        columns = list(query.select_columns)
        if query.join is not None:
            columns.extend(query.join.select_columns)
        return tuple(columns) if columns else None

    def _project(self, rows: List[RowDict], query) -> List[RowDict]:
        if not isinstance(query, SelectQuery):
            return rows
        if query.is_aggregate:
            return rows  # aggregate operators already shaped the output
        columns = list(query.select_columns)
        if query.join is not None:
            columns.extend(query.join.select_columns)
        if not columns:
            return rows
        return [
            {column: row.get(column) for column in columns} for row in rows
        ]

    # ------------------------------------------------------------------
    # Observability

    def column_cache_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, invalidations) summed over this engine's tables."""
        hits = misses = invalidations = 0
        for table in self._tables.values():
            cache_hits, cache_misses, cache_invalidations = table.columnar_stats
            hits += cache_hits
            misses += cache_misses
            invalidations += cache_invalidations
        return hits, misses, invalidations
