"""Vectorized batch operators for hot plan shapes.

The vector path executes a whole plan subtree as array operations over
the columnar projection cache: predicate masks for clustered/index
scans, a cached sorted equi-index for hash-join build sides probed with
``np.searchsorted``, rank-code grouping for stream/hash aggregates,
``np.lexsort`` for ORDER BY, and ``argpartition`` TOP-N selection.  Key
lookups, seeks, and nested-loop joins stay on the interpreter (their
metering is inherently lazy/per-binding); DML maintenance is batched
separately in :mod:`repro.engine.exec.dispatch`.

Two invariants keep it indistinguishable from the interpreter:

- **Values**: output values are gathered from the original Python entry
  tuples and reduced through the shared helpers in
  :mod:`repro.engine.exec.interp` (``aggregate_values`` etc.); NumPy
  decides only *which* rows, in *what order*, in *which group*.
- **Metering**: the same charges land on the same counters through the
  shared formulas in :mod:`repro.engine.exec.metering` — a full scan
  charges ``height + leaf_pages - 1`` pages (what the B+ tree's
  leftmost descent plus leaf hops would have metered), per-entry
  ``rows_processed``, ``sort_meter_rows`` for sorts, ``hash_rows`` for
  hash aggregates, and ``hash_join_meter_rows`` per hash-join side.

Anything the path cannot reproduce exactly (NULL or parameterized
predicate values, NaN join keys, unsupported operators, columns outside
a projection) raises :class:`VectorUnsupported` before any table state
changes; the dispatcher resets the meters and re-runs the interpreter.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.exec.columns import (
    ColumnVector,
    Projection,
    VectorUnsupported,
    contiguous_slice,
    row_builder,
)
from repro.engine.exec.interp import (
    RowDict,
    aggregate_values,
    sort_rows_inplace,
    topn_rows,
)
from repro.engine.exec.metering import (
    Meterings,
    hash_join_meter_rows,
    sort_meter_rows,
)
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
)
from repro.engine.query import Op
from repro.engine.table import Table
from repro.observability.profiling import count

_AGG_NODES = (StreamAggregateNode, HashAggregateNode)
_SCAN_NODES = (ClusteredScanNode, IndexScanNode)

#: Largest integer magnitude float64 represents exactly; int/float join
#: keys beyond it cannot be cast for comparison without losing equality.
_EXACT_FLOAT_INT = 2 ** 53


def _source_of(plan: PlanNode) -> Optional[PlanNode]:
    """The source node under the supported operator chain, or None.

    Strips ``[Top] -> [Sort] -> [Agg]`` and returns what remains.  A
    ``Top`` directly over a lazy source (scan or join) returns None: the
    interpreter stops pulling after ``limit`` rows, so its early-exit
    page/row/hash charges depend on lazy consumption the batch path
    cannot replicate.
    """
    node = plan
    if isinstance(node, TopNode):
        node = node.child
        if not isinstance(node, (SortNode,) + _AGG_NODES):
            return None
    if isinstance(node, SortNode):
        node = node.child
    if isinstance(node, _AGG_NODES):
        node = node.child
    return node


def supports(plan: PlanNode) -> bool:
    """Structural check: can this plan shape run vectorized?

    The supported grammar (``Source`` is a full scan, or a hash join
    whose build and probe sides are both full scans):

    - ``Source``
    - ``[Top] -> Sort -> Source``
    - ``[Top] -> (Stream|Hash)Agg -> Source``
    - ``[Top] -> Sort -> (Stream|Hash)Agg -> Source``

    ``Top`` directly over a scan or join is excluded on purpose (see
    :func:`_source_of`); nested-loop joins and seek-fed hash joins stay
    interpreted.  Runtime obstacles (NULL predicate values, oversized
    integers, NaN join keys) are discovered later and raise
    ``VectorUnsupported``.
    """
    node = _source_of(plan)
    if isinstance(node, _SCAN_NODES):
        return True
    return (
        isinstance(node, HashJoinNode)
        and isinstance(node.outer, _SCAN_NODES)
        and isinstance(node.inner, _SCAN_NODES)
    )


def gate_table(plan: PlanNode) -> Optional[str]:
    """The table whose row count gates auto-mode vectorization.

    For scans this is the scanned table; for hash joins the probe
    (outer) side, which dominates the work.
    """
    node = _source_of(plan)
    if isinstance(node, _SCAN_NODES):
        return node.table
    if isinstance(node, HashJoinNode) and isinstance(node.outer, _SCAN_NODES):
        return node.outer.table
    return None


def run(
    plan: PlanNode,
    tables: Dict[str, Table],
    meters: Meterings,
    project_columns: Optional[Tuple[str, ...]] = None,
) -> Tuple[List[RowDict], int]:
    """Execute a supported plan; return (rows, batch row count).

    ``project_columns``, when given, is the query's final SELECT list:
    scan, join, and sort outputs are materialized directly in that shape
    (missing columns as ``None``), sparing the dispatcher's per-row
    re-projection.  Aggregate outputs ignore it — the aggregate
    operators already shape their rows, exactly as in the interpreter.

    Raises :class:`VectorUnsupported` when a runtime detail blocks the
    batch path; the caller resets ``meters`` and re-interprets.
    """
    runner = _Runner(tables, meters, project_columns)
    rows = runner.run(plan)
    return rows, runner.batch_rows


class _ScanBatch:
    """Filtered rows of one scanned tree, as projection positions.

    ``selected`` holds the positions (in scan order) of rows passing the
    node's residual predicates.  ``has`` mirrors the interpreter's row
    dictionaries exactly: a column is visible only when it is in the
    statement's needed set for this table *and* the projection carries
    it (index projections carry only their entry layout).
    """

    __slots__ = ("table", "projection", "selected", "_carried", "_sel_list")

    def __init__(
        self,
        table: Table,
        projection: Projection,
        selected: np.ndarray,
        needed_names: Tuple[str, ...],
    ) -> None:
        self.table = table
        self.projection = projection
        self.selected = selected
        #: Needed-set order, filtered to what this projection carries —
        #: the key set (and order) of the interpreter's row dicts.
        self._carried = tuple(
            name for name in needed_names if projection.has(name)
        )
        self._sel_list: Optional[List[int]] = None

    @property
    def count(self) -> int:
        return len(self.selected)

    def has(self, column: str) -> bool:
        return column in self._carried

    def output_names(self) -> Tuple[str, ...]:
        return self._carried

    def codes(self, column: str) -> np.ndarray:
        return self.projection.vector(column).codes()[self.selected]

    def values_at(self, column: str, positions: List[int]) -> List[object]:
        raw = self.projection.raw_column(column)
        if self._sel_list is None:
            self._sel_list = self.selected.tolist()
        sel = self._sel_list
        return [raw[sel[p]] for p in positions]

    def materialize(
        self,
        order: Optional[np.ndarray],
        names: Tuple[str, ...],
        missing_as_none: bool = False,
    ) -> List[RowDict]:
        indices = self.selected if order is None else self.selected[order]
        return self.projection.materialize(indices, names, missing_as_none)


class _JoinBatch:
    """Matched row pairs of a hash join, as per-side projection positions.

    Column resolution mirrors the interpreter's merged dictionary
    ``{**inner_row, **outer_row}``: the outer (probe) side wins name
    collisions, the inner (build) side fills the rest, and columns
    carried by neither side read as missing.
    """

    __slots__ = ("outer", "inner", "outer_pos", "inner_pos", "_pos_lists")

    def __init__(
        self,
        outer: _ScanBatch,
        inner: _ScanBatch,
        outer_pos: np.ndarray,
        inner_pos: np.ndarray,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_pos = outer_pos
        self.inner_pos = inner_pos
        self._pos_lists: Dict[bool, List[int]] = {}

    @property
    def count(self) -> int:
        return len(self.outer_pos)

    def has(self, column: str) -> bool:
        return self.outer.has(column) or self.inner.has(column)

    def _side(self, column: str) -> Tuple[_ScanBatch, np.ndarray, bool]:
        if self.outer.has(column):
            return self.outer, self.outer_pos, True
        return self.inner, self.inner_pos, False

    def output_names(self) -> Tuple[str, ...]:
        """Merged-dict key order: inner carried names, then outer ones."""
        names = dict.fromkeys(self.inner.output_names())
        for name in self.outer.output_names():
            names.setdefault(name)
        return tuple(names)

    def codes(self, column: str) -> np.ndarray:
        side, pos, _is_outer = self._side(column)
        return side.projection.vector(column).codes()[pos]

    def values_at(self, column: str, positions: List[int]) -> List[object]:
        side, pos, is_outer = self._side(column)
        raw = side.projection.raw_column(column)
        take = self._pos_lists.get(is_outer)
        if take is None:
            take = self._pos_lists[is_outer] = pos.tolist()
        return [raw[take[p]] for p in positions]

    def materialize(
        self,
        order: Optional[np.ndarray],
        names: Tuple[str, ...],
        missing_as_none: bool = False,
    ) -> List[RowDict]:
        if not missing_as_none:
            names = tuple(name for name in names if self.has(name))
        outer_idx = self.outer_pos if order is None else self.outer_pos[order]
        inner_idx = self.inner_pos if order is None else self.inner_pos[order]
        n = len(outer_idx)
        if n == 0:
            return []
        if not names:
            return [{} for _ in range(n)]
        pickers: Dict[bool, object] = {}

        def gather(raw: List[object], positions: np.ndarray, is_outer: bool):
            pick = pickers.get(is_outer)
            if pick is None:
                span = contiguous_slice(positions)
                if span is not None:
                    pick = span
                elif n > 1:
                    pick = operator.itemgetter(*positions.tolist())
                else:
                    pick = operator.itemgetter(int(positions[0]))
                pickers[is_outer] = pick
            if type(pick) is tuple:
                return raw[pick[0]:pick[1]]
            cells = pick(raw)
            return cells if n > 1 else (cells,)

        gathered = []
        for name in names:
            if self.outer.has(name):
                raw = self.outer.projection.raw_column(name)
                gathered.append(gather(raw, outer_idx, True))
            elif self.inner.has(name):
                raw = self.inner.projection.raw_column(name)
                gathered.append(gather(raw, inner_idx, False))
            else:
                gathered.append((None,) * n)
        return row_builder(names)(gathered)


class _Runner:
    def __init__(
        self,
        tables: Dict[str, Table],
        meters: Meterings,
        project_columns: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self._tables = tables
        self._meters = meters
        self._project_columns = project_columns
        #: Rows that flowed through vectorized batch operators.
        self.batch_rows = 0

    # -- plan walk ------------------------------------------------------

    def run(self, plan: PlanNode) -> List[RowDict]:
        node = plan
        limit: Optional[int] = None
        if isinstance(node, TopNode):
            limit = node.limit
            node = node.child
            if not isinstance(node, (SortNode,) + _AGG_NODES):
                # Top over a lazy scan/join must keep early-exit metering.
                raise VectorUnsupported("TOP over a lazy source stays interpreted")
        if isinstance(node, SortNode):
            if isinstance(node.child, _AGG_NODES):
                rows = self._run_aggregate(
                    self._source_batch(node.child.child), node.child
                )
                return self._sort_dict_rows(rows, node.order_by, limit)
            return self._run_sort(self._source_batch(node.child), node, limit)
        if isinstance(node, _AGG_NODES):
            rows = self._run_aggregate(self._source_batch(node.child), node)
            return rows if limit is None else rows[:limit]
        return self._materialize_batch(self._source_batch(node))

    def _source_batch(self, node: PlanNode):
        if isinstance(node, _SCAN_NODES):
            return self._scan_batch(node)
        if isinstance(node, HashJoinNode):
            return self._run_join(node)
        raise VectorUnsupported(f"unsupported node {type(node).__name__}")

    # -- scans ----------------------------------------------------------

    def _scan_batch(self, node) -> _ScanBatch:
        table = self._tables.get(node.table)
        if table is None:
            raise VectorUnsupported(f"unknown table {node.table!r}")
        if isinstance(node, IndexScanNode):
            table.get_index(node.index_name)  # UnknownIndexError, as interp
            projection = table.columnar().projection(node.index_name)
        else:
            projection = table.columnar().projection(None)
        # Raises on unknown needed columns exactly as the interpreter's
        # per-scan columns_for call does.
        names, _positions = self._meters.columns_for(table)
        # Build every predicate mask before charging: a VectorUnsupported
        # after this point would leak partial meters into the fallback.
        masks = [
            self._mask(projection, predicate, table.schema)
            for predicate in node.residual
        ]
        self._meters.page_meter.charge(projection.scan_pages)
        self._meters.rows_processed += projection.row_count
        self.batch_rows += projection.row_count
        count("vector_batch")
        if masks:
            mask = masks[0]
            for extra in masks[1:]:
                mask = mask & extra
            selected = np.flatnonzero(mask)
        else:
            selected = np.arange(projection.row_count, dtype=np.int64)
        return _ScanBatch(table, projection, selected, names)

    def _mask(
        self, projection: Projection, predicate, schema
    ) -> np.ndarray:
        if not projection.has(predicate.column):
            # The interpreter would raise (KeyError on the entry layout);
            # keep that behavior by falling back.
            raise VectorUnsupported(
                f"column {predicate.column!r} not in projection"
            )
        sql_type = schema.column(predicate.column).sql_type
        value = sql_type.coerce(predicate.value)
        if value is None or predicate.value is PARAM:
            raise VectorUnsupported("NULL/parameterized predicate value")
        vector = projection.vector(predicate.column)
        values, valid = vector.values, ~vector.nulls
        op = predicate.op
        if op is Op.EQ:
            return (values == value) & valid
        if op is Op.NEQ:
            return (values != value) & valid
        if op is Op.LT:
            return (values < value) & valid
        if op is Op.LE:
            return (values <= value) & valid
        if op is Op.GT:
            return (values > value) & valid
        if op is Op.GE:
            return (values >= value) & valid
        if op is Op.BETWEEN:
            value2 = sql_type.coerce(predicate.value2)
            if value2 is None:
                raise VectorUnsupported("NULL BETWEEN bound")
            return (values >= value) & (values <= value2) & valid
        raise VectorUnsupported(f"unsupported operator {op}")

    # -- hash join ------------------------------------------------------

    def _run_join(self, node: HashJoinNode) -> _JoinBatch:
        join = node.join
        # Build (inner) side first, probe (outer) second — the
        # interpreter's consumption order, so error surfacing matches.
        inner = self._scan_batch(node.inner)
        outer = self._scan_batch(node.outer)
        # One hash charge per post-residual row on each side, exactly
        # what the interpreter's per-row build/probe increments total.
        self._meters.hash_rows += hash_join_meter_rows(inner.count)
        self._meters.hash_rows += hash_join_meter_rows(outer.count)
        empty = np.empty(0, dtype=np.int64)
        if (
            inner.count == 0
            or outer.count == 0
            or not inner.has(join.right_column)
            or not outer.has(join.left_column)
        ):
            # A key column missing from a side reads as NULL on every
            # row there, and NULL never matches — output is empty while
            # scan/hash charges stand, as in the interpreter.
            return _JoinBatch(outer, inner, empty, empty)
        outer_vec = outer.projection.vector(join.left_column)
        inner_vec = inner.projection.vector(join.right_column)
        valid_probe = ~outer_vec.nulls[outer.selected]
        probe_pos = outer.selected[valid_probe]
        if probe_pos.size == 0:
            return _JoinBatch(outer, inner, empty, empty)
        reconciled = _join_key_arrays(outer_vec.values[probe_pos], inner_vec)
        if reconciled is None:
            # Incomparable key domains (string vs numeric): Python
            # equality never matches across them.
            return _JoinBatch(outer, inner, empty, empty)
        probe_vals, sorted_vals, order = reconciled
        if sorted_vals.size and bool(
            (sorted_vals[1:] != sorted_vals[:-1]).all()
        ):
            # Unique build keys (the common FK-join shape): each probe
            # matches at most one build row, so one searchsorted plus an
            # equality check replaces the lo/hi range expansion.  Output
            # pairs are identical to the generic path's: probe-major
            # order with every count in {0, 1}.
            slot = np.searchsorted(sorted_vals, probe_vals, side="left")
            slot = np.minimum(slot, sorted_vals.size - 1)
            matched = sorted_vals[slot] == probe_vals
            outer_pos = probe_pos[matched]
            inner_pos = order[slot[matched]]
        else:
            lo = np.searchsorted(sorted_vals, probe_vals, side="left")
            hi = np.searchsorted(sorted_vals, probe_vals, side="right")
            outer_pos, inner_pos = _expand_matches(probe_pos, lo, hi, order)
        if inner.count != inner.projection.row_count:
            # Build-side residuals: keep only matches into selected rows.
            build_mask = np.zeros(inner.projection.row_count, dtype=bool)
            build_mask[inner.selected] = True
            keep = build_mask[inner_pos]
            outer_pos, inner_pos = outer_pos[keep], inner_pos[keep]
        return _JoinBatch(outer, inner, outer_pos, inner_pos)

    # -- materialization ------------------------------------------------

    def _materialize_batch(self, batch, order: Optional[np.ndarray] = None):
        if self._project_columns is not None:
            if isinstance(batch, _ScanBatch):
                for name in self._project_columns:
                    if not batch.projection.has(name):
                        # Unknown columns must raise exactly as the
                        # interpreter's columns_for does; known-but-absent
                        # ones (non-covering projections) become None.
                        batch.table.schema.position(name)
            return batch.materialize(
                order, self._project_columns, missing_as_none=True
            )
        return batch.materialize(order, batch.output_names())

    # -- sort / TOP-N ---------------------------------------------------

    def _run_sort(self, batch, node: SortNode, limit: Optional[int]):
        n = batch.count
        self._meters.sort_rows += sort_meter_rows(n, limit)
        keys = []
        for item in node.order_by:
            if batch.has(item.column):
                codes = batch.codes(item.column)
            else:
                # The interpreter keys a missing column as NULL for every
                # row: a constant key, i.e. a stable no-op pass.
                codes = np.zeros(n, dtype=np.int64)
            keys.append(codes if item.ascending else -codes)
        order = _ordering(keys, n, limit)
        return self._materialize_batch(batch, order)

    def _sort_dict_rows(
        self, rows: List[RowDict], order_by, limit: Optional[int]
    ) -> List[RowDict]:
        """Sort aggregate output exactly as the interpreter's SortNode."""
        self._meters.sort_rows += sort_meter_rows(len(rows), limit)
        if limit is not None and limit < len(rows):
            return topn_rows(rows, order_by, limit)
        sort_rows_inplace(rows, order_by)
        return rows

    # -- aggregation ----------------------------------------------------

    def _run_aggregate(self, batch, node) -> List[RowDict]:
        n = batch.count
        group_by = node.group_by
        for column in group_by:
            if not batch.has(column):
                # Interpreter raises KeyError building the group key.
                raise VectorUnsupported(f"group column {column!r} missing")
        if isinstance(node, HashAggregateNode):
            self._meters.hash_rows += n
        if not group_by:
            members = np.arange(n, dtype=np.int64)
            groups = [members]
        elif n == 0:
            groups = []
        else:
            groups = _group_members(
                [batch.codes(column) for column in group_by], n
            )
        out_rows: List[RowDict] = []
        agg_present = {
            aggregate.column: batch.has(aggregate.column)
            for aggregate in node.aggregates
            if aggregate.column is not None
        }
        for members in groups:
            positions = members.tolist()
            out: RowDict = {}
            if positions:
                first = [positions[0]]
                for column in group_by:
                    out[column] = batch.values_at(column, first)[0]
            for aggregate in node.aggregates:
                column = aggregate.column
                if column is None or not agg_present[column]:
                    # Missing aggregate columns read as NULL in the
                    # interpreter (row.get), yielding COUNT 0 / None.
                    out[aggregate.label()] = aggregate_values(
                        aggregate, [], len(positions)
                    )
                    continue
                values = [
                    v
                    for v in batch.values_at(column, positions)
                    if v is not None
                ]
                out[aggregate.label()] = aggregate_values(
                    aggregate, values, len(positions)
                )
            out_rows.append(out)
        return out_rows


# ----------------------------------------------------------------------
# Join key matching


def _join_key_arrays(
    probe_vals: np.ndarray, inner_vec: ColumnVector
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Comparable (probe values, sorted build values, build order).

    Reconciles the two sides' array dtypes under Python `==` semantics:
    same-kind arrays compare directly; int64 vs float64 casts the int
    side to float64 (exact below 2**53, else fall back — the
    interpreter's dict handles it fine); string vs numeric never match.
    NaN keys fall back: NaN equality is identity-dependent in a dict.
    """
    order, sorted_vals = inner_vec.equi_index()
    pk, bk = probe_vals.dtype.kind, sorted_vals.dtype.kind
    if pk == "f" and np.isnan(probe_vals).any():
        raise VectorUnsupported("NaN join key")
    if bk == "f" and np.isnan(sorted_vals).any():
        raise VectorUnsupported("NaN join key")
    if pk == bk:
        return probe_vals, sorted_vals, order
    if pk in "if" and bk in "if":
        if pk == "i":
            if probe_vals.size and int(np.abs(probe_vals).max()) > _EXACT_FLOAT_INT:
                raise VectorUnsupported("join key beyond exact float range")
            return probe_vals.astype(np.float64), sorted_vals, order
        if sorted_vals.size and int(np.abs(sorted_vals).max()) > _EXACT_FLOAT_INT:
            raise VectorUnsupported("join key beyond exact float range")
        # Exact int -> float cast preserves sortedness.
        return probe_vals, sorted_vals.astype(np.float64), order
    return None


def _expand_matches(
    probe_pos: np.ndarray, lo: np.ndarray, hi: np.ndarray, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-probe match ranges into aligned position pairs.

    Output order is probe-major (outer scan order) with each probe's
    matches in build scan order — exactly the interpreter's loop
    nesting over its build dict's per-key lists.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = np.repeat(lo, counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    inner_pos = order[starts + offsets]
    outer_pos = np.repeat(probe_pos, counts)
    return outer_pos, inner_pos


# ----------------------------------------------------------------------
# Grouping and ordering


def _group_members(
    code_columns: List[np.ndarray], n: int
) -> List[np.ndarray]:
    """Member batch-position arrays per group, groups in first-appearance
    order and members in input order — the dict-insertion order the
    interpreter produces."""
    if len(code_columns) == 1:
        _uniq, inverse = np.unique(code_columns[0], return_inverse=True)
    else:
        stacked = np.stack(code_columns, axis=1)
        _uniq, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(n)
    group_count = int(inverse.max()) + 1
    first_seen = np.full(group_count, n, dtype=np.int64)
    np.minimum.at(first_seen, inverse, np.arange(n, dtype=np.int64))
    appearance = np.argsort(first_seen, kind="stable")
    by_input = np.argsort(inverse, kind="stable")
    ordered_gids = inverse[by_input]
    boundaries = np.flatnonzero(np.diff(ordered_gids)) + 1
    chunks = np.split(by_input, boundaries)
    members_by_gid = {int(inverse[c[0]]): c for c in chunks}
    return [members_by_gid[int(g)] for g in appearance]


def _ordering(
    keys: List[np.ndarray], n: int, limit: Optional[int]
) -> np.ndarray:
    """Stable sort order over rank-code keys, optionally TOP-N limited.

    ``np.lexsort`` (stable, last key primary) over the reversed key list
    reproduces the interpreter's repeated stable passes.  With a limit, a
    single composite int64 key (ranks chained, input index as the final
    tie-break) allows ``argpartition`` selection; if the composite would
    overflow int64 we fall back to slicing the full stable order.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if limit is not None and limit <= 0:
        return np.empty(0, dtype=np.int64)
    if limit is not None and limit < n:
        composite = _composite_codes(keys, n)
        if composite is not None:
            partitioned = np.argpartition(composite, limit - 1)[:limit]
            return partitioned[np.argsort(composite[partitioned])]
    order = np.lexsort(tuple(reversed(keys)))
    if limit is not None and limit < n:
        order = order[:limit]
    return order


def _composite_codes(
    keys: List[np.ndarray], n: int
) -> Optional[np.ndarray]:
    """Chain rank-code keys plus the input index into one int64 key.

    Returns None when the combined range would overflow int64 (many
    wide keys); the caller then uses the full lexsort instead.
    """
    composite = np.zeros(n, dtype=np.int64)
    max_value = 0
    for key in keys:
        low = int(key.min())
        span = int(key.max()) - low + 1
        max_value = max_value * span + (span - 1)
        if max_value >= (1 << 62) // max(n, 1):
            return None
        composite = composite * span + (key - low)
    composite = composite * n + np.arange(n, dtype=np.int64)
    return composite
