"""Vectorized batch operators for hot read-only plan shapes.

The vector path executes a whole plan subtree as array operations over
the columnar projection cache: predicate masks for clustered/index
scans, rank-code grouping for stream/hash aggregates, ``np.lexsort`` for
ORDER BY, and ``argpartition`` TOP-N selection.  Key lookups, seeks,
joins, and DML stay on the interpreter.

Two invariants keep it indistinguishable from the interpreter:

- **Values**: output values are gathered from the original Python entry
  tuples and reduced through the shared helpers in
  :mod:`repro.engine.exec.interp` (``aggregate_values`` etc.); NumPy
  decides only *which* rows, in *what order*, in *which group*.
- **Metering**: the same charges land on the same counters — a full
  scan charges ``height + leaf_pages - 1`` pages (what the B+ tree's
  leftmost descent plus leaf hops would have metered), per-entry
  ``rows_processed``, ``sort_meter_rows`` for sorts, and ``hash_rows``
  only for hash aggregates.

Anything the path cannot reproduce exactly (NULL or parameterized
predicate values, unsupported operators, columns outside a projection)
raises :class:`VectorUnsupported` before any table state changes; the
dispatcher resets the meters and re-runs the interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.exec.columns import Projection, VectorUnsupported
from repro.engine.exec.interp import (
    RowDict,
    aggregate_values,
    sort_rows_inplace,
    topn_rows,
)
from repro.engine.exec.metering import Meterings, sort_meter_rows
from repro.engine.plans import (
    PARAM,
    ClusteredScanNode,
    HashAggregateNode,
    IndexScanNode,
    PlanNode,
    SortNode,
    StreamAggregateNode,
    TopNode,
)
from repro.engine.query import Op
from repro.engine.table import Table
from repro.observability.profiling import count

_AGG_NODES = (StreamAggregateNode, HashAggregateNode)
_SCAN_NODES = (ClusteredScanNode, IndexScanNode)


def supports(plan: PlanNode) -> bool:
    """Structural check: can this plan shape run vectorized?

    The supported grammar (leaves must be full scans):

    - ``Scan``
    - ``[Top] -> Sort -> Scan``
    - ``[Top] -> (Stream|Hash)Agg -> Scan``
    - ``[Top] -> Sort -> (Stream|Hash)Agg -> Scan``

    ``Top`` directly over a scan is excluded on purpose: the interpreter
    stops pulling the scan after ``limit`` rows, so its early-exit page
    and row charges depend on lazy consumption the batch path cannot
    replicate.  Runtime obstacles (NULL predicate values, oversized
    integers) are discovered later and raise ``VectorUnsupported``.
    """
    node = plan
    if isinstance(node, TopNode):
        node = node.child
        if not isinstance(node, (SortNode,) + _AGG_NODES):
            return False
    if isinstance(node, SortNode):
        node = node.child
    if isinstance(node, _AGG_NODES):
        node = node.child
    return isinstance(node, _SCAN_NODES)


def run(
    plan: PlanNode,
    tables: Dict[str, Table],
    meters: Meterings,
    project_columns: Optional[Tuple[str, ...]] = None,
) -> Tuple[List[RowDict], int]:
    """Execute a supported plan; return (rows, batch row count).

    ``project_columns``, when given, is the query's final SELECT list:
    scan and sort outputs are materialized directly in that shape
    (missing columns as ``None``), sparing the dispatcher's per-row
    re-projection.  Aggregate outputs ignore it — the aggregate
    operators already shape their rows, exactly as in the interpreter.

    Raises :class:`VectorUnsupported` when a runtime detail blocks the
    batch path; the caller resets ``meters`` and re-interprets.
    """
    runner = _Runner(tables, meters, project_columns)
    rows = runner.run(plan)
    return rows, runner.batch_rows


class _Runner:
    def __init__(
        self,
        tables: Dict[str, Table],
        meters: Meterings,
        project_columns: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self._tables = tables
        self._meters = meters
        self._project_columns = project_columns
        #: Rows that flowed through vectorized batch operators.
        self.batch_rows = 0

    # -- plan walk ------------------------------------------------------

    def run(self, plan: PlanNode) -> List[RowDict]:
        node = plan
        limit: Optional[int] = None
        if isinstance(node, TopNode):
            limit = node.limit
            node = node.child
        if isinstance(node, SortNode):
            if isinstance(node.child, _AGG_NODES):
                rows = self._run_aggregate(node.child)
                return self._sort_dict_rows(rows, node.order_by, limit)
            return self._run_scan_sort(node, limit)
        if isinstance(node, _AGG_NODES):
            rows = self._run_aggregate(node)
            return rows if limit is None else rows[:limit]
        if isinstance(node, _SCAN_NODES):
            if limit is not None:
                # Top over a lazy scan must keep early-exit metering.
                raise VectorUnsupported("TOP over a bare scan stays interpreted")
            return self._run_scan(node)
        raise VectorUnsupported(f"unsupported node {type(node).__name__}")

    # -- scans ----------------------------------------------------------

    def _scan_batch(self, node) -> Tuple[Table, Projection, np.ndarray]:
        table = self._tables.get(node.table)
        if table is None:
            raise VectorUnsupported(f"unknown table {node.table!r}")
        if isinstance(node, IndexScanNode):
            table.get_index(node.index_name)  # UnknownIndexError, as interp
            projection = table.columnar().projection(node.index_name)
        else:
            projection = table.columnar().projection(None)
        # Build every predicate mask before charging: a VectorUnsupported
        # after this point would leak partial meters into the fallback.
        masks = [
            self._mask(projection, predicate, table.schema)
            for predicate in node.residual
        ]
        self._meters.page_meter.charge(projection.scan_pages)
        self._meters.rows_processed += projection.row_count
        self.batch_rows += projection.row_count
        count("vector_batch")
        if masks:
            mask = masks[0]
            for extra in masks[1:]:
                mask = mask & extra
            selected = np.flatnonzero(mask)
        else:
            selected = np.arange(projection.row_count, dtype=np.int64)
        return table, projection, selected

    def _mask(
        self, projection: Projection, predicate, schema
    ) -> np.ndarray:
        if not projection.has(predicate.column):
            # The interpreter would raise (KeyError on the entry layout);
            # keep that behavior by falling back.
            raise VectorUnsupported(
                f"column {predicate.column!r} not in projection"
            )
        sql_type = schema.column(predicate.column).sql_type
        value = sql_type.coerce(predicate.value)
        if value is None or predicate.value is PARAM:
            raise VectorUnsupported("NULL/parameterized predicate value")
        vector = projection.vector(predicate.column)
        values, valid = vector.values, ~vector.nulls
        op = predicate.op
        if op is Op.EQ:
            return (values == value) & valid
        if op is Op.NEQ:
            return (values != value) & valid
        if op is Op.LT:
            return (values < value) & valid
        if op is Op.LE:
            return (values <= value) & valid
        if op is Op.GT:
            return (values > value) & valid
        if op is Op.GE:
            return (values >= value) & valid
        if op is Op.BETWEEN:
            value2 = sql_type.coerce(predicate.value2)
            if value2 is None:
                raise VectorUnsupported("NULL BETWEEN bound")
            return (values >= value) & (values <= value2) & valid
        raise VectorUnsupported(f"unsupported operator {op}")

    def _materialize(
        self, table: Table, projection: Projection, selected: np.ndarray
    ) -> List[RowDict]:
        if self._project_columns is not None:
            for name in self._project_columns:
                if not projection.has(name):
                    # Unknown columns must raise exactly as the
                    # interpreter's columns_for does; known-but-absent
                    # ones (non-covering projections) become None.
                    table.schema.position(name)
            return projection.materialize(
                selected, self._project_columns, missing_as_none=True
            )
        names, _positions = self._meters.columns_for(table)
        return projection.materialize(selected, names)

    def _run_scan(self, node) -> List[RowDict]:
        table, projection, selected = self._scan_batch(node)
        return self._materialize(table, projection, selected)

    # -- sort / TOP-N ---------------------------------------------------

    def _run_scan_sort(
        self, node: SortNode, limit: Optional[int]
    ) -> List[RowDict]:
        table, projection, selected = self._scan_batch(node.child)
        n = len(selected)
        self._meters.sort_rows += sort_meter_rows(n, limit)
        keys = []
        for item in node.order_by:
            if projection.has(item.column):
                codes = projection.vector(item.column).codes()[selected]
            else:
                # The interpreter keys a missing column as NULL for every
                # row: a constant key, i.e. a stable no-op pass.
                codes = np.zeros(n, dtype=np.int64)
            keys.append(codes if item.ascending else -codes)
        order = _ordering(keys, n, limit)
        return self._materialize(table, projection, selected[order])

    def _sort_dict_rows(
        self, rows: List[RowDict], order_by, limit: Optional[int]
    ) -> List[RowDict]:
        """Sort aggregate output exactly as the interpreter's SortNode."""
        self._meters.sort_rows += sort_meter_rows(len(rows), limit)
        if limit is not None and limit < len(rows):
            return topn_rows(rows, order_by, limit)
        sort_rows_inplace(rows, order_by)
        return rows

    # -- aggregation ----------------------------------------------------

    def _run_aggregate(self, node) -> List[RowDict]:
        table, projection, selected = self._scan_batch(node.child)
        n = len(selected)
        group_by = node.group_by
        for column in group_by:
            if not projection.has(column):
                # Interpreter raises KeyError building the group key.
                raise VectorUnsupported(f"group column {column!r} missing")
        if isinstance(node, HashAggregateNode):
            self._meters.hash_rows += n
        if not group_by:
            groups = [selected] if n else [np.empty(0, dtype=np.int64)]
        elif n == 0:
            groups = []
        else:
            groups = self._group_members(projection, group_by, selected)
        out_rows: List[RowDict] = []
        raw_columns: Dict[str, List[object]] = {}
        for column in group_by:
            raw_columns[column] = projection.raw_column(column)
        for aggregate in node.aggregates:
            column = aggregate.column
            if column is not None and column not in raw_columns:
                # Missing aggregate columns read as NULL in the
                # interpreter (row.get), yielding COUNT 0 / None.
                raw_columns[column] = (
                    projection.raw_column(column)
                    if projection.has(column)
                    else []
                )
        for members in groups:
            positions = members.tolist()
            out: RowDict = {}
            if positions:
                first = positions[0]
                for column in group_by:
                    out[column] = raw_columns[column][first]
            for aggregate in node.aggregates:
                if aggregate.column is None:
                    out[aggregate.label()] = aggregate_values(
                        aggregate, [], len(positions)
                    )
                    continue
                raw = raw_columns[aggregate.column]
                if raw:
                    values = [raw[i] for i in positions]
                    values = [v for v in values if v is not None]
                else:
                    values = []
                out[aggregate.label()] = aggregate_values(
                    aggregate, values, len(positions)
                )
            out_rows.append(out)
        return out_rows

    def _group_members(
        self, projection: Projection, group_by, selected: np.ndarray
    ) -> List[np.ndarray]:
        """Member index arrays per group, groups in first-appearance
        order and members in input order — the dict-insertion order the
        interpreter produces."""
        n = len(selected)
        code_columns = [
            projection.vector(column).codes()[selected] for column in group_by
        ]
        if len(code_columns) == 1:
            _uniq, inverse = np.unique(code_columns[0], return_inverse=True)
        else:
            stacked = np.stack(code_columns, axis=1)
            _uniq, inverse = np.unique(
                stacked, axis=0, return_inverse=True
            )
        inverse = inverse.reshape(n)
        group_count = int(inverse.max()) + 1
        first_seen = np.full(group_count, n, dtype=np.int64)
        np.minimum.at(first_seen, inverse, np.arange(n, dtype=np.int64))
        appearance = np.argsort(first_seen, kind="stable")
        by_input = np.argsort(inverse, kind="stable")
        ordered_gids = inverse[by_input]
        boundaries = np.flatnonzero(np.diff(ordered_gids)) + 1
        chunks = np.split(by_input, boundaries)
        members_by_gid = {int(inverse[c[0]]): c for c in chunks}
        return [selected[members_by_gid[int(g)]] for g in appearance]


def _ordering(
    keys: List[np.ndarray], n: int, limit: Optional[int]
) -> np.ndarray:
    """Stable sort order over rank-code keys, optionally TOP-N limited.

    ``np.lexsort`` (stable, last key primary) over the reversed key list
    reproduces the interpreter's repeated stable passes.  With a limit, a
    single composite int64 key (ranks chained, input index as the final
    tie-break) allows ``argpartition`` selection; if the composite would
    overflow int64 we fall back to slicing the full stable order.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if limit is not None and limit <= 0:
        return np.empty(0, dtype=np.int64)
    if limit is not None and limit < n:
        composite = _composite_codes(keys, n)
        if composite is not None:
            partitioned = np.argpartition(composite, limit - 1)[:limit]
            return partitioned[np.argsort(composite[partitioned])]
    order = np.lexsort(tuple(reversed(keys)))
    if limit is not None and limit < n:
        order = order[:limit]
    return order


def _composite_codes(
    keys: List[np.ndarray], n: int
) -> Optional[np.ndarray]:
    """Chain rank-code keys plus the input index into one int64 key.

    Returns None when the combined range would overflow int64 (many
    wide keys); the caller then uses the full lexsort instead.
    """
    composite = np.zeros(n, dtype=np.int64)
    max_value = 0
    for key in keys:
        low = int(key.min())
        span = int(key.max()) - low + 1
        max_value = max_value * span + (span - 1)
        if max_value >= (1 << 62) // max(n, 1):
            return None
        composite = composite * span + (key - low)
    composite = composite * n + np.arange(n, dtype=np.int64)
    return composite
