"""Shared metering: raw work counters and finished execution metrics.

Both execution paths — the row-at-a-time interpreter and the vectorized
batch operators — charge their work into the same :class:`Meterings`
object using the same formulas.  That is the **metering-equivalence
contract**: for any plan both paths must leave byte-identical counter
values behind, so :class:`ExecutionMetrics` (and everything downstream
of it: MI emission, Query Store intervals, validation verdicts, the
deterministic parallel merge) cannot tell which path executed a
statement.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from repro.engine.btree import PageMeter
from repro.engine.table import Table


@dataclasses.dataclass
class ExecutionMetrics:
    """Actual resource consumption of one statement execution."""

    cpu_time_ms: float = 0.0
    duration_ms: float = 0.0
    logical_reads: int = 0
    rows_returned: int = 0

    def scaled(self, factor: float) -> "ExecutionMetrics":
        return ExecutionMetrics(
            cpu_time_ms=self.cpu_time_ms * factor,
            duration_ms=self.duration_ms * factor,
            logical_reads=int(self.logical_reads * factor),
            rows_returned=self.rows_returned,
        )


class Meterings:
    """Accumulates raw work counters during one execution."""

    def __init__(self) -> None:
        self.page_meter = PageMeter()
        self.rows_processed = 0
        self.sort_rows = 0
        self.hash_rows = 0
        self.maintained_entries = 0
        #: Per-table column subset that row dictionaries must carry; None
        #: means all columns (DML paths need full rows).
        self.needed: Optional[Dict[str, Tuple[str, ...]]] = None

    def reset_counters(self) -> None:
        """Zero the work counters, keeping the column subsets.

        Used when the vectorized path bails out mid-plan: the interpreter
        re-executes from scratch, so any partial charges must be undone.
        """
        self.page_meter.reset()
        self.rows_processed = 0
        self.sort_rows = 0
        self.hash_rows = 0
        self.maintained_entries = 0

    def columns_for(self, table: Table) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        """(names, positions) of the columns to materialize for a table."""
        schema = table.schema
        if self.needed is None or table.name not in self.needed:
            names = tuple(schema.column_names)
            return names, tuple(range(len(names)))
        names = self.needed[table.name]
        return names, tuple(schema.position(name) for name in names)


def sort_meter_rows(rows: int, limit: Optional[int] = None) -> int:
    """Sort-work charge for sorting ``rows`` input rows.

    A full sort charges ``rows * log2(rows + 1)``.  With a TOP ``limit``
    pushed into the sort, only a bounded heap (interpreter) or a
    partition selection (vector path) is needed, so the charge drops to
    ``rows * log2(limit + 1)``.  Both paths call this one helper so the
    charge stays identical however the rows were actually ordered.
    """
    if rows <= 0:
        return 0
    effective = rows if limit is None else min(rows, max(0, limit))
    return max(0, int(rows * math.log2(effective + 1)))
