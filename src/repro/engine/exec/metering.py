"""Shared metering: raw work counters and finished execution metrics.

Both execution paths — the row-at-a-time interpreter and the vectorized
batch operators — charge their work into the same :class:`Meterings`
object using the same formulas.  That is the **metering-equivalence
contract**: for any plan both paths must leave byte-identical counter
values behind, so :class:`ExecutionMetrics` (and everything downstream
of it: MI emission, Query Store intervals, validation verdicts, the
deterministic parallel merge) cannot tell which path executed a
statement.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from repro.engine.btree import PageMeter
from repro.engine.table import Table


@dataclasses.dataclass
class ExecutionMetrics:
    """Actual resource consumption of one statement execution."""

    cpu_time_ms: float = 0.0
    duration_ms: float = 0.0
    logical_reads: int = 0
    rows_returned: int = 0

    def scaled(self, factor: float) -> "ExecutionMetrics":
        return ExecutionMetrics(
            cpu_time_ms=self.cpu_time_ms * factor,
            duration_ms=self.duration_ms * factor,
            logical_reads=int(self.logical_reads * factor),
            rows_returned=self.rows_returned,
        )


class Meterings:
    """Accumulates raw work counters during one execution."""

    def __init__(self) -> None:
        self.page_meter = PageMeter()
        self.rows_processed = 0
        self.sort_rows = 0
        self.hash_rows = 0
        self.maintained_entries = 0
        #: Per-table column subset that row dictionaries must carry; None
        #: means all columns (DML paths need full rows).
        self.needed: Optional[Dict[str, Tuple[str, ...]]] = None

    def reset_counters(self) -> None:
        """Zero the work counters, keeping the column subsets.

        Used when the vectorized path bails out mid-plan: the interpreter
        re-executes from scratch, so any partial charges must be undone.
        """
        self.page_meter.reset()
        self.rows_processed = 0
        self.sort_rows = 0
        self.hash_rows = 0
        self.maintained_entries = 0

    def columns_for(self, table: Table) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        """(names, positions) of the columns to materialize for a table."""
        schema = table.schema
        if self.needed is None or table.name not in self.needed:
            names = tuple(schema.column_names)
            return names, tuple(range(len(names)))
        names = self.needed[table.name]
        return names, tuple(schema.position(name) for name in names)


def hash_join_meter_rows(side_rows: int) -> int:
    """Hash-work charge for one side of a hash join.

    The interpreter charges one ``hash_rows`` unit per row it feeds the
    build table and one per row it probes with; the batch path charges
    the same totals for each side at once.  Rows are the *post-residual*
    stream out of the side's access path, not the raw table rows.
    """
    return max(0, side_rows)


def insert_meter_entries(rows: int, index_count: int) -> int:
    """``maintained_entries`` charge for inserting ``rows`` rows.

    Each row writes one clustered entry plus one entry per secondary
    index.  Both the row-at-a-time and the batched maintenance path call
    this one formula (with ``rows=1`` per row, or the batch total).
    """
    return rows * (1 + index_count)


def delete_meter_entries(rows: int, index_count: int) -> int:
    """``maintained_entries`` charge for deleting ``rows`` rows.

    Symmetric with :func:`insert_meter_entries`: one clustered entry
    plus one per secondary index, per row.
    """
    return rows * (1 + index_count)


def update_meter_entries(rows: int, affected_index_count: int) -> int:
    """``maintained_entries`` charge for updating ``rows`` target rows.

    One clustered entry per row plus a delete+insert pair per *affected*
    index — an index whose columns intersect the assignment list.  The
    charge is per target row regardless of whether the assignment
    actually changed the row (matching SQL Server, which still logs the
    no-op row), while page charges apply only to genuinely changed rows.
    """
    return rows * (1 + 2 * affected_index_count)


def sort_meter_rows(rows: int, limit: Optional[int] = None) -> int:
    """Sort-work charge for sorting ``rows`` input rows.

    A full sort charges ``rows * log2(rows + 1)``.  With a TOP ``limit``
    pushed into the sort, only a bounded heap (interpreter) or a
    partition selection (vector path) is needed, so the charge drops to
    ``rows * log2(limit + 1)``.  Both paths call this one helper so the
    charge stays identical however the rows were actually ordered.
    """
    if rows <= 0:
        return 0
    effective = rows if limit is None else min(rows, max(0, limit))
    return max(0, int(rows * math.log2(effective + 1)))
