"""Plan execution: an interpreted and a vectorized path behind one facade.

Package layout:

- :mod:`repro.engine.exec.metering` — shared work counters and the
  finished :class:`ExecutionMetrics` (the metering-equivalence contract);
- :mod:`repro.engine.exec.interp` — the reference row-at-a-time
  interpreter, plus the value-semantics helpers both paths share;
- :mod:`repro.engine.exec.columns` — the per-table columnar projection
  cache, invalidated on ``(data_version, schema_version)`` bumps;
- :mod:`repro.engine.exec.vector` — batch operators (mask scans,
  rank-code grouping, lexsort, argpartition TOP-N);
- :mod:`repro.engine.exec.dispatch` — the :class:`Executor` facade that
  picks a path per plan (``REPRO_EXECUTOR=vector|interp|auto``).

``repro.engine.executor`` remains as a thin import shim for the
pre-split module path.
"""

from repro.engine.exec.columns import ColumnarCache, VectorUnsupported
from repro.engine.exec.dispatch import Executor, resolve_executor_mode
from repro.engine.exec.interp import (
    InterpExecutor,
    aggregate_values,
    compute_aggregate,
    stable_sum,
)
from repro.engine.exec.metering import (
    ExecutionMetrics,
    Meterings,
    sort_meter_rows,
)

__all__ = [
    "ColumnarCache",
    "ExecutionMetrics",
    "Executor",
    "InterpExecutor",
    "Meterings",
    "VectorUnsupported",
    "aggregate_values",
    "compute_aggregate",
    "resolve_executor_mode",
    "sort_meter_rows",
    "stable_sum",
]
