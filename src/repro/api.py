"""The user-facing management surface (Section 2).

Azure exposes the auto-indexing controls through the portal, a REST API,
and T-SQL; this module is that surface for the simulator: a
:class:`ManagementApi` over a running :class:`~repro.service.AutoIndexingService`
offering exactly the views the paper's Figures 1-3 show —

- **settings** per logical server and per database, with databases
  inheriting the server default until they override it (Figure 1);
- the **current recommendations** list with estimated impact, size, and
  the statements each index will affect (Figure 2/3);
- the **history of actions** with their states and the actual before/after
  execution costs recorded by validation (the transparency requirement of
  Section 8.2);
- a **script-out** helper so users can copy a recommendation and apply it
  through their own schema-management tooling (in which case they own the
  validation, as the paper notes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.controlplane import (
    AutoIndexingConfig,
    RecommendationState,
)
from repro.controlplane.store import RecommendationRecord
from repro.recommender.recommendation import Action
from repro.service import AutoIndexingService


@dataclasses.dataclass
class RecommendationView:
    """One row of the portal's recommendations blade (Figure 2)."""

    rec_id: int
    action: str
    table: str
    index_columns: str
    included_columns: str
    estimated_impact_pct: float
    estimated_size_bytes: int
    impacted_statements: int
    state: str
    source: str

    def render(self) -> str:
        columns = self.index_columns
        if self.included_columns:
            columns += f" INCLUDE({self.included_columns})"
        return (
            f"#{self.rec_id} {self.action.upper()} {self.table}({columns}) "
            f"impact≈{self.estimated_impact_pct:.0f}% "
            f"size≈{self.estimated_size_bytes // 1024} KiB "
            f"[{self.state}]"
        )


@dataclasses.dataclass
class HistoryView:
    """One row of the action-history blade."""

    rec_id: int
    description: str
    state: str
    validation_summary: str
    aggregate_change: Optional[float]
    timeline: List[str]


class ManagementApi:
    """Portal/REST-style access to one region's service."""

    def __init__(self, service: AutoIndexingService) -> None:
        self.service = service
        #: Logical-server default settings; databases inherit these until
        #: they set an explicit override (Figure 1's "inherited" markers).
        self._server_defaults: Dict[str, AutoIndexingConfig] = {}
        self._server_of: Dict[str, str] = {}
        self._overrides: Dict[str, AutoIndexingConfig] = {}

    # ------------------------------------------------------------------
    # Logical servers and setting inheritance (Section 2)

    def register_server(
        self, server: str, default: Optional[AutoIndexingConfig] = None
    ) -> None:
        self._server_defaults[server] = default or AutoIndexingConfig()

    def assign_database(self, database: str, server: str) -> None:
        if server not in self._server_defaults:
            raise KeyError(f"unknown logical server {server!r}")
        if database not in self.service.plane.databases:
            raise KeyError(f"unknown database {database!r}")
        self._server_of[database] = server
        self._apply_effective(database)

    def set_server_default(self, server: str, config: AutoIndexingConfig) -> None:
        """Change a server default; inherited databases follow."""
        self._server_defaults[server] = config
        for database, assigned in self._server_of.items():
            if assigned == server and database not in self._overrides:
                self._apply_effective(database)

    def set_database_config(self, database: str, config: AutoIndexingConfig) -> None:
        """Explicit per-database override (stops inheriting)."""
        config = dataclasses.replace(config, inherited=False)
        self._overrides[database] = config
        self._apply_effective(database)

    def clear_database_override(self, database: str) -> None:
        self._overrides.pop(database, None)
        self._apply_effective(database)

    def effective_config(self, database: str) -> AutoIndexingConfig:
        override = self._overrides.get(database)
        if override is not None:
            return override
        server = self._server_of.get(database)
        if server is not None:
            default = self._server_defaults[server]
            return dataclasses.replace(default, inherited=True)
        return self.service.configs[database]

    def _apply_effective(self, database: str) -> None:
        self.service.set_config(database, self.effective_config(database))

    def settings_view(self, database: str) -> Dict[str, str]:
        """The Figure 1 row: option, desired state, current state."""
        config = self.effective_config(database)
        suffix = " (inherited)" if config.inherited else ""
        return {
            "CREATE INDEX": config.create_mode.value + suffix,
            "DROP INDEX": config.drop_mode.value + suffix,
        }

    # ------------------------------------------------------------------
    # Recommendation views (Figures 2-3)

    def current_recommendations(self, database: str) -> List[RecommendationView]:
        records = self.service.plane.store.records_for(
            database=database, state=RecommendationState.ACTIVE
        )
        return [self._view(record) for record in records]

    def recommendation_details(self, rec_id: int) -> Dict[str, object]:
        """The Figure 3 detail blade, including impacted statements."""
        record = self._record(rec_id)
        recommendation = record.recommendation
        managed = self.service.plane.databases[record.database]
        statements = []
        for query_id in recommendation.impacted_queries:
            info = managed.engine.query_store.query_info(query_id)
            if info is not None:
                statements.append(info.template_text)
        return {
            "rec_id": record.rec_id,
            "database": record.database,
            "action": recommendation.action.value,
            "index": recommendation.describe(),
            "estimated_impact_pct": recommendation.estimated_improvement_pct,
            "estimated_size_bytes": recommendation.estimated_size_bytes,
            "impacted_statements": statements,
            "state": record.state.value,
            "source": recommendation.source,
        }

    def script_out(self, rec_id: int) -> str:
        """T-SQL the user can run through their own tooling.

        Applying it manually means the system will not validate the change
        (Section 2) — the index will not carry the service's naming scheme.
        """
        record = self._record(rec_id)
        recommendation = record.recommendation
        if recommendation.action is Action.DROP:
            return (
                f"DROP INDEX [{recommendation.existing_index_name}] "
                f"ON [{recommendation.table}];"
            )
        keys = ", ".join(f"[{c}]" for c in recommendation.key_columns)
        text = (
            f"CREATE NONCLUSTERED INDEX [ix_manual_{record.rec_id}] "
            f"ON [{recommendation.table}] ({keys})"
        )
        if recommendation.included_columns:
            includes = ", ".join(
                f"[{c}]" for c in recommendation.included_columns
            )
            text += f" INCLUDE ({includes})"
        return text + ";"

    def apply_recommendation(self, rec_id: int) -> None:
        """User-initiated apply; the system implements and validates it."""
        self.service.plane.request_implementation(rec_id)

    # ------------------------------------------------------------------
    # History (transparency, Section 8.2)

    def history(self, database: str) -> List[HistoryView]:
        views = []
        for record in self.service.plane.recommendation_history(database):
            views.append(
                HistoryView(
                    rec_id=record.rec_id,
                    description=record.recommendation.describe(),
                    state=record.state.value,
                    validation_summary=record.validation_summary,
                    aggregate_change=record.aggregate_change,
                    timeline=[
                        f"{at / 60.0:8.1f}h {state.value}"
                        + (f" ({note})" if note else "")
                        for at, state, note in record.state_history
                    ],
                )
            )
        return views

    # ------------------------------------------------------------------

    def _record(self, rec_id: int) -> RecommendationRecord:
        record = self.service.plane.store.get(rec_id)
        if record is None:
            raise KeyError(f"unknown recommendation {rec_id}")
        return record

    def _view(self, record: RecommendationRecord) -> RecommendationView:
        recommendation = record.recommendation
        return RecommendationView(
            rec_id=record.rec_id,
            action=recommendation.action.value,
            table=recommendation.table,
            index_columns=", ".join(recommendation.key_columns),
            included_columns=", ".join(recommendation.included_columns),
            estimated_impact_pct=recommendation.estimated_improvement_pct,
            estimated_size_bytes=recommendation.estimated_size_bytes,
            impacted_statements=len(recommendation.impacted_queries),
            state=record.state.value,
            source=recommendation.source,
        )
