"""Validation: detect and correct regressions from index changes (Section 6)."""

from repro.validation.stats_tests import welch_t_test, WelchResult
from repro.validation.validator import (
    StatementVerdict,
    ValidationMode,
    ValidationOutcome,
    ValidationSettings,
    Validator,
)

__all__ = [
    "StatementVerdict",
    "ValidationMode",
    "ValidationOutcome",
    "ValidationSettings",
    "Validator",
    "WelchResult",
    "welch_t_test",
]
