"""Statistical tests used by the validator (Welch 1947).

Query Store tracks per-plan execution count, mean, and standard deviation
for every metric; assuming normally distributed measurement variance, the
Welch t-test (unequal variances) decides whether the before/after change
in a metric is statistically significant (Section 6).
"""

from __future__ import annotations

import dataclasses
import math

from scipy import stats as scipy_stats


@dataclasses.dataclass
class WelchResult:
    """Outcome of a two-sample Welch t-test from summary statistics."""

    t_statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_before: float
    mean_after: float

    @property
    def relative_change(self) -> float:
        """(after - before) / before; positive = got more expensive."""
        if self.mean_before == 0:
            return 0.0 if self.mean_after == 0 else math.inf
        return (self.mean_after - self.mean_before) / self.mean_before

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def to_payload(self) -> dict:
        """JSON-serializable evidence dict (audit events, ``repro explain``)."""
        relative = self.relative_change
        return {
            "t_statistic": self.t_statistic,
            "degrees_of_freedom": self.degrees_of_freedom,
            "p_value": self.p_value,
            "mean_before": self.mean_before,
            "mean_after": self.mean_after,
            "relative_change": relative if math.isfinite(relative) else None,
        }


def welch_t_test(
    mean_a: float,
    std_a: float,
    n_a: int,
    mean_b: float,
    std_b: float,
    n_b: int,
) -> WelchResult:
    """Welch's t-test from summary statistics (a = before, b = after)."""
    if n_a < 2 or n_b < 2:
        return WelchResult(
            t_statistic=0.0,
            degrees_of_freedom=0.0,
            p_value=1.0,
            mean_before=mean_a,
            mean_after=mean_b,
        )
    var_a = max(std_a * std_a, 1e-12)
    var_b = max(std_b * std_b, 1e-12)
    se_a = var_a / n_a
    se_b = var_b / n_b
    se = math.sqrt(se_a + se_b)
    t_stat = (mean_b - mean_a) / se
    dof_num = (se_a + se_b) ** 2
    dof_den = se_a ** 2 / (n_a - 1) + se_b ** 2 / (n_b - 1)
    dof = dof_num / max(dof_den, 1e-300)
    p_value = float(2.0 * scipy_stats.t.sf(abs(t_stat), dof))
    return WelchResult(
        t_statistic=float(t_stat),
        degrees_of_freedom=float(dof),
        p_value=p_value,
        mean_before=mean_a,
        mean_after=mean_b,
    )
