"""The validator (Section 6): compare execution statistics around an index
change, detect significant regressions, and decide whether to revert.

Key design points taken from the paper:

- **Logical metrics first.** CPU time and logical reads are representative
  of plan quality and less noisy than duration or physical IO.
- **Plan-change scoping.** Only statements that executed both before and
  after the change *and* whose plan changed because of the index are
  considered: after a CREATE the new plan must reference the index; after
  a DROP the old plan must have referenced it.
- **Welch t-test.** Query Store supplies count/mean/stddev per plan; the
  test (unequal variances) decides statistical significance despite
  production noise.
- **Two trigger modes.** ``CONSERVATIVE`` reverts when any statement that
  consumes a significant share of the database's resources regresses;
  ``AGGREGATE`` reverts only when the execution-weighted net effect over
  all affected statements is a regression (which may leave individual
  statements regressed).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import SqlEngine
from repro.engine.query_store import MetricAggregate, RuntimeStats
from repro.validation.stats_tests import WelchResult, welch_t_test


class ValidationMode(enum.Enum):
    """Revert-trigger mode (Section 6's two alternatives)."""

    CONSERVATIVE = "conservative"
    AGGREGATE = "aggregate"


class Verdict(enum.Enum):
    """Judgement for one statement or for the whole index change."""

    IMPROVED = "improved"
    REGRESSED = "regressed"
    NEUTRAL = "neutral"


@dataclasses.dataclass
class ValidationSettings:
    """Validator thresholds."""

    mode: ValidationMode = ValidationMode.CONSERVATIVE
    #: Significance level of the Welch t-test.
    alpha: float = 0.05
    #: Minimum relative worsening of a logical metric to call regression.
    regression_threshold: float = 0.25
    #: Minimum relative improvement to call a statement improved.
    improvement_threshold: float = 0.10
    #: CONSERVATIVE mode: only statements consuming at least this share of
    #: the database's resources (before-window) can trigger a revert.
    min_resource_share: float = 0.02
    #: AGGREGATE mode: net weighted change that triggers a revert.
    aggregate_regression_threshold: float = 0.10
    #: Metrics examined, in order of authority.
    metrics: Tuple[str, ...] = ("cpu_time_ms", "logical_reads")
    #: Minimum executions on each side for a statement to be judged.
    min_executions: int = 3


@dataclasses.dataclass
class StatementVerdict:
    """Validation result for one statement."""

    query_id: int
    verdict: Verdict
    resource_share: float
    tests: Dict[str, WelchResult]
    executions_before: int
    executions_after: int

    def worst_relative_change(self) -> float:
        if not self.tests:
            return 0.0
        return max(result.relative_change for result in self.tests.values())

    # The raw Welch evidence, surfaced so audit events and ``repro
    # explain`` can show the numbers that drove the verdict (not just
    # the enum).  ``cpu_time_ms`` is the authoritative metric.

    @property
    def primary_metric(self) -> Optional[str]:
        if "cpu_time_ms" in self.tests:
            return "cpu_time_ms"
        return next(iter(self.tests), None)

    @property
    def primary_test(self) -> Optional[WelchResult]:
        metric = self.primary_metric
        return self.tests[metric] if metric is not None else None

    @property
    def t_statistic(self) -> Optional[float]:
        test = self.primary_test
        return test.t_statistic if test is not None else None

    @property
    def degrees_of_freedom(self) -> Optional[float]:
        test = self.primary_test
        return test.degrees_of_freedom if test is not None else None

    @property
    def p_value(self) -> Optional[float]:
        test = self.primary_test
        return test.p_value if test is not None else None

    def to_payload(self) -> dict:
        """JSON-serializable evidence for the audit stream."""
        return {
            "query_id": self.query_id,
            "verdict": self.verdict.value,
            "resource_share": self.resource_share,
            "executions_before": self.executions_before,
            "executions_after": self.executions_after,
            "tests": {
                metric: result.to_payload()
                for metric, result in self.tests.items()
            },
        }


@dataclasses.dataclass
class ValidationOutcome:
    """Validation result for one index change."""

    index_name: str
    action: str  # "create" | "drop"
    verdict: Verdict
    should_revert: bool
    statements: List[StatementVerdict]
    #: Execution-weighted relative CPU change across affected statements.
    aggregate_change: float
    observed_statements: int
    details: str = ""

    @property
    def improved_count(self) -> int:
        return sum(1 for s in self.statements if s.verdict is Verdict.IMPROVED)

    @property
    def regressed_count(self) -> int:
        return sum(1 for s in self.statements if s.verdict is Verdict.REGRESSED)

    def to_payload(self) -> dict:
        """JSON-serializable evidence for the audit stream."""
        return {
            "index_name": self.index_name,
            "action": self.action,
            "verdict": self.verdict.value,
            "should_revert": self.should_revert,
            "aggregate_change": self.aggregate_change,
            "observed_statements": self.observed_statements,
            "details": self.details,
            "statements": [s.to_payload() for s in self.statements],
        }


def _merge_by_query(
    window: Dict[Tuple[int, int], RuntimeStats]
) -> Dict[int, Dict[str, object]]:
    """Collapse per-(query, plan) stats into per-query summaries."""
    merged: Dict[int, Dict[str, object]] = {}
    for (query_id, plan_id), stats in window.items():
        entry = merged.setdefault(
            query_id,
            {
                "plans": set(),
                "executions": 0,
                "metrics": {name: MetricAggregate() for name in stats.metrics},
            },
        )
        entry["plans"].add(plan_id)
        entry["executions"] += stats.executions
        for name, aggregate in stats.metrics.items():
            entry["metrics"][name] = entry["metrics"][name].merge(aggregate)
    return merged


class Validator:
    """Validates one index change against Query Store windows."""

    def __init__(
        self, engine: SqlEngine, settings: Optional[ValidationSettings] = None
    ) -> None:
        self.engine = engine
        self.settings = settings or ValidationSettings()

    # ------------------------------------------------------------------

    def validate(
        self,
        index_name: str,
        action: str,
        before: Tuple[float, float],
        after: Tuple[float, float],
    ) -> ValidationOutcome:
        """Judge an index change given before/after time windows."""
        settings = self.settings
        qs = self.engine.query_store
        before_stats = _merge_by_query(qs.aggregate(before[0], before[1]))
        after_stats = _merge_by_query(qs.aggregate(after[0], after[1]))
        total_before_cpu = sum(
            entry["metrics"]["cpu_time_ms"].total for entry in before_stats.values()
        )
        statements: List[StatementVerdict] = []
        for query_id, entry_after in after_stats.items():
            entry_before = before_stats.get(query_id)
            if entry_before is None:
                continue
            if (
                entry_before["executions"] < settings.min_executions
                or entry_after["executions"] < settings.min_executions
            ):
                continue
            if not self._plan_changed_due_to_index(
                index_name, action, entry_before["plans"], entry_after["plans"]
            ):
                continue
            tests = {}
            for metric in settings.metrics:
                agg_before: MetricAggregate = entry_before["metrics"][metric]
                agg_after: MetricAggregate = entry_after["metrics"][metric]
                tests[metric] = welch_t_test(
                    agg_before.mean,
                    agg_before.stddev,
                    agg_before.count,
                    agg_after.mean,
                    agg_after.stddev,
                    agg_after.count,
                )
            share = (
                entry_before["metrics"]["cpu_time_ms"].total / total_before_cpu
                if total_before_cpu > 0
                else 0.0
            )
            statements.append(
                StatementVerdict(
                    query_id=query_id,
                    verdict=self._statement_verdict(tests),
                    resource_share=share,
                    tests=tests,
                    executions_before=entry_before["executions"],
                    executions_after=entry_after["executions"],
                )
            )
        return self._decide(index_name, action, statements)

    # ------------------------------------------------------------------

    def _plan_changed_due_to_index(
        self, index_name: str, action: str, plans_before: set, plans_after: set
    ) -> bool:
        qs = self.engine.query_store
        if plans_before == plans_after:
            return False
        if action == "create":
            return any(
                index_name in (qs.plan_info(p).referenced_indexes if qs.plan_info(p) else ())
                for p in plans_after
            )
        return any(
            index_name in (qs.plan_info(p).referenced_indexes if qs.plan_info(p) else ())
            for p in plans_before
        )

    def _statement_verdict(self, tests: Dict[str, WelchResult]) -> Verdict:
        settings = self.settings
        regressed = False
        improved = False
        for metric in settings.metrics:
            result = tests[metric]
            if not result.significant(settings.alpha):
                continue
            change = result.relative_change
            if change > settings.regression_threshold:
                regressed = True
            elif change < -settings.improvement_threshold:
                improved = True
        # CPU is the authoritative metric when the two disagree; logical
        # reads almost always agree with it since both are plan-driven.
        if regressed and not improved:
            return Verdict.REGRESSED
        if regressed and improved:
            cpu = tests.get("cpu_time_ms")
            if cpu is not None and cpu.significant(settings.alpha):
                return (
                    Verdict.REGRESSED
                    if cpu.relative_change > settings.regression_threshold
                    else Verdict.IMPROVED
                )
            return Verdict.NEUTRAL
        if improved:
            return Verdict.IMPROVED
        return Verdict.NEUTRAL

    def _decide(
        self, index_name: str, action: str, statements: List[StatementVerdict]
    ) -> ValidationOutcome:
        settings = self.settings
        # Execution-weighted aggregate change (fixed-count comparison: means
        # weighted by before-executions, so differing counts don't bias).
        weighted_before = 0.0
        weighted_after = 0.0
        for statement in statements:
            cpu = statement.tests.get("cpu_time_ms")
            if cpu is None:
                continue
            weight = statement.executions_before
            weighted_before += cpu.mean_before * weight
            weighted_after += cpu.mean_after * weight
        aggregate_change = (
            (weighted_after - weighted_before) / weighted_before
            if weighted_before > 0
            else 0.0
        )
        if settings.mode is ValidationMode.CONSERVATIVE:
            triggers = [
                s
                for s in statements
                if s.verdict is Verdict.REGRESSED
                and s.resource_share >= settings.min_resource_share
            ]
            should_revert = bool(triggers)
            details = (
                f"{len(triggers)} significant statement regression(s)"
                if triggers
                else ""
            )
        else:
            should_revert = (
                aggregate_change > settings.aggregate_regression_threshold
            )
            details = f"aggregate change {aggregate_change:+.1%}"
        improved = sum(1 for s in statements if s.verdict is Verdict.IMPROVED)
        regressed = sum(1 for s in statements if s.verdict is Verdict.REGRESSED)
        if should_revert or (regressed > improved and aggregate_change > 0):
            verdict = Verdict.REGRESSED
        elif improved > 0 and aggregate_change < 0:
            verdict = Verdict.IMPROVED
        else:
            verdict = Verdict.NEUTRAL
        return ValidationOutcome(
            index_name=index_name,
            action=action,
            verdict=verdict,
            should_revert=should_revert,
            statements=statements,
            aggregate_change=aggregate_change,
            observed_statements=len(statements),
            details=details,
        )
