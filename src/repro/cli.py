"""Command-line interface.

Four subcommands mirror the repo's main entry points:

- ``repro demo`` — the quickstart flow on one generated database;
- ``repro ops --days N --dbs K`` — a closed-loop service run with the
  Section 8.1-style operational report;
- ``repro fig6 --tier premium --dbs K`` — the Figure 6 experiment for one
  tier;
- ``repro telemetry --days N --dbs K`` — a closed-loop run rendered as
  the live-style fleet dashboard (state-machine counts, revert rate,
  slowest tuning sessions, engine hot paths), with ``--format json`` /
  ``--format prom`` machine-readable exports.

Invoke as ``python -m repro <command>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.clock import HOURS
from repro.controlplane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlaneSettings,
)
from repro.experiment.compare import ComparisonSettings, compare_fleet
from repro.fleet import Fleet, FleetSpec
from repro.observability import (
    Profiler,
    json_text,
    prometheus_text,
    render_dashboard,
    use_profiler,
)
from repro.reporting import operational_report
from repro.service import ServiceSettings, build_service


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--tier",
        choices=("basic", "standard", "premium"),
        default="standard",
    )
    parser.add_argument("--dbs", type=int, default=4, help="fleet size")


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the quickstart example end to end."""
    # The quickstart example is a self-contained script; load and reuse
    # its main() so the CLI and the example cannot drift apart.
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if not path.exists():
        print("examples/quickstart.py not found (installed without examples)")
        return 1
    spec = importlib.util.spec_from_file_location("quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def cmd_ops(args: argparse.Namespace) -> int:
    """Closed-loop run over a fleet, ending with the operational report."""
    service = build_service(
        n_databases=args.dbs,
        tier=args.tier,
        seed=args.seed,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=6 * HOURS,
        ),
        service_settings=ServiceSettings(max_statements_per_step=80),
        default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
    )
    print(f"running the closed loop: {args.dbs} {args.tier} databases, "
          f"{args.days} simulated days")
    for day in range(args.days):
        service.run(hours=24)
        counts = service.plane.store.count_by_state()
        summary = ", ".join(
            f"{state.value}={count}"
            for state, count in sorted(counts.items(), key=lambda i: i[0].value)
        )
        print(f"  day {day + 1}: {summary or '(quiet)'}")
    print()
    for line in operational_report(service.plane).lines():
        print(line)
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Closed-loop run rendered through the observability layer."""
    profiler = Profiler()
    with use_profiler(profiler):
        service = build_service(
            n_databases=args.dbs,
            tier=args.tier,
            seed=args.seed,
            control_settings=ControlPlaneSettings(
                snapshot_period=2 * HOURS,
                analysis_period=8 * HOURS,
                validation_window=6 * HOURS,
            ),
            service_settings=ServiceSettings(max_statements_per_step=80),
            default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
        )
        print(
            f"collecting fleet telemetry: {args.dbs} {args.tier} databases, "
            f"{args.days} simulated days"
        )
        service.run(hours=args.days * 24)
    telemetry = service.telemetry
    if args.format == "json":
        print(json_text(telemetry.registry, telemetry.recorder, profiler))
    elif args.format == "prom":
        print(prometheus_text(telemetry.registry), end="")
    else:
        print()
        for line in render_dashboard(
            telemetry.registry, telemetry.recorder, profiler, top_n=args.top
        ):
            print(line)
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    """Run the Figure 6 recommender comparison for one tier."""
    fleet = Fleet(FleetSpec(n_databases=args.dbs, tier=args.tier, seed=args.seed))
    print(f"running the Figure 6 experiment on {args.dbs} {args.tier} databases "
          "(4 phases per database; this replays several days of traffic)")
    summary = compare_fleet(fleet, ComparisonSettings())
    for line in summary.table_rows():
        print(line)
    for result in summary.results:
        improvements = ", ".join(
            f"{arm}={value:.0f}%" for arm, value in result.improvements.items()
        )
        print(f"  {result.database}: winner={result.winner} ({improvements})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-indexing service reproduction (SIGMOD 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="quickstart on one database")
    demo.set_defaults(func=cmd_demo)
    ops = sub.add_parser("ops", help="closed-loop run + operational report")
    _add_common(ops)
    ops.add_argument("--days", type=int, default=4)
    ops.set_defaults(func=cmd_ops)
    fig6 = sub.add_parser("fig6", help="the Figure 6 recommender comparison")
    _add_common(fig6)
    fig6.set_defaults(func=cmd_fig6)
    telemetry = sub.add_parser(
        "telemetry", help="closed-loop run + fleet telemetry dashboard"
    )
    _add_common(telemetry)
    telemetry.add_argument("--days", type=int, default=4)
    telemetry.add_argument(
        "--top", type=int, default=5, help="slowest tuning sessions to list"
    )
    telemetry.add_argument(
        "--format",
        choices=("dashboard", "json", "prom"),
        default="dashboard",
    )
    telemetry.set_defaults(func=cmd_telemetry)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
