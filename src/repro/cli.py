"""Command-line interface.

Six subcommands mirror the repo's main entry points:

- ``repro demo`` — the quickstart flow on one generated database;
- ``repro ops --days N --dbs K`` — a closed-loop service run with the
  Section 8.1-style operational report;
- ``repro run --dbs K --workers N`` — the fleet-parallel closed loop:
  databases sharded across N workers (process-backed by default), each
  tick merged deterministically, so the output matches a serial run
  byte for byte under the same seed;
- ``repro fig6 --tier premium --dbs K`` — the Figure 6 experiment for one
  tier;
- ``repro telemetry --days N --dbs K`` — a closed-loop run rendered as
  the live-style fleet dashboard (state-machine counts, firing alerts,
  revert rate, history sparklines, slowest tuning sessions, engine hot
  paths), with ``--format json`` / ``--format prom`` machine-readable
  exports;
- ``repro slo --days N --dbs K`` — the SLO burn-rate report over the
  run's telemetry history (multi-window burn per objective), with
  ``--history-out``/``--history`` JSONL dump/replay of the time-series
  store, ``--slo-out`` for the status records, ``--regression-demo``
  for the seeded revert-rate regression, and ``--fail-on-alert`` for
  CI gating;
- ``repro explain <db> [rec-id]`` — the decision-provenance timeline for
  one recommendation (audit events + spans + state-store journal), from
  a fresh closed-loop run, a replayed ``--audit`` JSONL dump, or the
  seeded ``--regression-demo`` create->validate->revert scenario;
- ``repro profile --dbs K --workers N`` — a short fleet-parallel run
  with per-tick phase timing on both sides of the process pipe,
  printing the critical-path table (where the wall-clock goes, the
  attribution-coverage figure, a serial-fraction/Amdahl estimate) and
  optionally writing a Chrome/Perfetto ``trace_event`` JSON timeline
  (``--trace-out``).

``repro ops`` and ``repro telemetry`` accept ``--audit-out FILE`` to dump
the run's audit stream as JSONL for later ``repro explain --audit``.

Invoke as ``python -m repro <command>``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.clock import HOURS
from repro.controlplane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlaneSettings,
)
from repro.experiment.compare import ComparisonSettings, compare_fleet
from repro.fleet import Fleet, FleetSpec
from repro.observability import (
    AuditLog,
    Profiler,
    json_text,
    prometheus_text,
    render_dashboard,
    render_explain,
    use_profiler,
)
from repro.observability.explain import render_index
from repro.reporting import operational_report
from repro.service import ServiceSettings, build_service


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--tier",
        choices=("basic", "standard", "premium"),
        default="standard",
    )
    parser.add_argument("--dbs", type=int, default=4, help="fleet size")
    parser.add_argument(
        "--executor",
        choices=("auto", "vector", "interp"),
        default=None,
        help="execution path (sets REPRO_EXECUTOR; default auto)",
    )


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the quickstart example end to end."""
    # The quickstart example is a self-contained script; load and reuse
    # its main() so the CLI and the example cannot drift apart.
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if not path.exists():
        print("examples/quickstart.py not found (installed without examples)")
        return 1
    spec = importlib.util.spec_from_file_location("quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def cmd_ops(args: argparse.Namespace) -> int:
    """Closed-loop run over a fleet, ending with the operational report."""
    service = build_service(
        n_databases=args.dbs,
        tier=args.tier,
        seed=args.seed,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=6 * HOURS,
        ),
        service_settings=ServiceSettings(max_statements_per_step=80),
        default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
    )
    print(f"running the closed loop: {args.dbs} {args.tier} databases, "
          f"{args.days} simulated days")
    for day in range(args.days):
        service.run(hours=24)
        counts = service.plane.store.count_by_state()
        summary = ", ".join(
            f"{state.value}={count}"
            for state, count in sorted(counts.items(), key=lambda i: i[0].value)
        )
        print(f"  day {day + 1}: {summary or '(quiet)'}")
    print()
    for line in operational_report(service.plane).lines():
        print(line)
    _maybe_dump_audit(service.plane, args)
    return 0


def _maybe_dump_audit(plane, args: argparse.Namespace) -> None:
    if getattr(args, "audit_out", None):
        count = plane.audit.dump(args.audit_out)
        print(f"wrote {count} audit events to {args.audit_out}")


def cmd_run(args: argparse.Namespace) -> int:
    """Fleet-parallel closed-loop run (sharded workers, merged output)."""
    from repro.parallel import build_fleet_service

    service = build_fleet_service(
        n_databases=args.dbs,
        workers=args.workers,
        backend=args.backend,
        instrument=not args.no_profile,
        batch_ticks=args.batch_ticks,
        tier=args.tier,
        seed=args.seed,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=6 * HOURS,
        ),
        service_settings=ServiceSettings(
            max_statements_per_step=args.max_statements
        ),
        default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
    )
    batched = (
        f", {args.batch_ticks} ticks per dispatch"
        if args.batch_ticks > 1
        else ""
    )
    print(
        f"running the fleet-parallel loop: {args.dbs} {args.tier} databases "
        f"across {len(service.payloads)} {service.backend} worker(s)"
        f"{batched}, {args.days} simulated days"
    )
    try:
        for day in range(args.days):
            service.run(hours=24)
            counts = service.store.count_by_state()
            summary = ", ".join(
                f"{state.value}={count}"
                for state, count in sorted(
                    counts.items(), key=lambda i: i[0].value
                )
            )
            print(f"  day {day + 1}: {summary or '(quiet)'}")
        print()
        registry = service.telemetry.registry
        wall = service.tick_wall_total
        busy = sum(
            series.metric.value
            for series in registry.series_for("fleet_shard_busy")
        )
        print(f"databases: {args.dbs}  shards: {len(service.payloads)}  "
              f"backend: {service.backend}")
        print(f"ticks: {registry.counter('fleet_ticks_total').value:.0f}  "
              f"wall: {wall:.2f}s  shard-busy: {busy:.2f}s")
        print(f"audit events: {len(service.telemetry.audit.events())}  "
              f"journal entries: {service.store.journal_length()}  "
              f"validations: {len(service.validation_history)}")
        firing = service.watchdog.active()
        print(f"firing alerts: {', '.join(a.rule for a in firing) or 'none'}")
        if getattr(args, "audit_out", None):
            count = service.telemetry.audit.dump(args.audit_out)
            print(f"wrote {count} audit events to {args.audit_out}")
    finally:
        service.close()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Short fleet-parallel run with full critical-path attribution."""
    import json

    from repro.observability.trace_export import (
        render_critical_path,
        trace_event_json,
    )
    from repro.parallel import build_fleet_service

    service = build_fleet_service(
        n_databases=args.dbs,
        workers=args.workers,
        backend=args.backend,
        instrument=not args.no_profile,
        batch_ticks=args.batch_ticks,
        tier=args.tier,
        seed=args.seed,
        control_settings=ControlPlaneSettings(
            snapshot_period=2 * HOURS,
            analysis_period=8 * HOURS,
            validation_window=6 * HOURS,
        ),
        service_settings=ServiceSettings(
            max_statements_per_step=args.max_statements
        ),
        default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
    )
    hours = args.ticks * service.settings.step_hours
    print(
        f"profiling the fleet-parallel loop: {args.dbs} {args.tier} "
        f"databases across {len(service.payloads)} {service.backend} "
        f"worker(s), {args.ticks} tick(s) ({hours:.0f} simulated hours)"
    )
    try:
        service.run(hours=hours)
        if args.no_profile:
            print(f"profiling disabled (--no-profile): "
                  f"{service.ticks_completed} tick(s), "
                  f"{service.tick_wall_total:.2f}s wall")
            return 0
        print()
        summary = service.attribution()
        for line in render_critical_path(
            summary,
            service.profiler.rows(),
            top_n=args.top,
            backend=service.backend,
            workers=len(service.payloads),
        ):
            print(line)
        dropped = service.phase_timer.dropped_events
        if dropped:
            print(f"  (trace buffer full: {dropped} event(s) dropped)")
        if args.trace_out:
            doc = trace_event_json(
                service.trace_events(),
                service.track_names(),
                metadata={
                    "databases": args.dbs,
                    "workers": len(service.payloads),
                    "backend": service.backend,
                    "ticks": summary["ticks"],
                    "seed": args.seed,
                    "attribution_coverage": summary["coverage"],
                },
            )
            with open(args.trace_out, "w") as fh:
                json.dump(doc, fh)
            print(f"  wrote {len(doc['traceEvents'])} trace events to "
                  f"{args.trace_out} (load in Perfetto / chrome://tracing)")
    finally:
        service.close()
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Closed-loop run rendered through the observability layer."""
    profiler = Profiler()
    with use_profiler(profiler):
        service = build_service(
            n_databases=args.dbs,
            tier=args.tier,
            seed=args.seed,
            control_settings=ControlPlaneSettings(
                snapshot_period=2 * HOURS,
                analysis_period=8 * HOURS,
                validation_window=6 * HOURS,
            ),
            service_settings=ServiceSettings(max_statements_per_step=80),
            default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
        )
        # Progress goes to stderr so `--format json` / `--format prom`
        # stdout stays machine-parseable.
        print(
            f"collecting fleet telemetry: {args.dbs} {args.tier} databases, "
            f"{args.days} simulated days",
            file=sys.stderr,
        )
        service.run(hours=args.days * 24)
    telemetry = service.telemetry
    if args.format == "json":
        print(
            json_text(
                telemetry.registry,
                telemetry.recorder,
                profiler,
                history=service.plane.history,
            )
        )
    elif args.format == "prom":
        print(prometheus_text(telemetry.registry), end="")
    else:
        print()
        for line in render_dashboard(
            telemetry.registry,
            telemetry.recorder,
            profiler,
            top_n=args.top,
            watchdog=service.plane.watchdog,
            history=service.plane.history,
        ):
            print(line)
    _maybe_dump_audit(service.plane, args)
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """SLO burn-rate report over a run's telemetry history."""
    import json

    from repro.observability.slo import (
        dump_statuses,
        evaluate_catalog,
        render_slo_report,
    )
    from repro.observability.timeseries import TimeSeriesStore

    if args.history:
        store = TimeSeriesStore.replay(args.history)
        print(
            f"replayed {len(store.series_names())} history series "
            f"from {args.history} (last tick {store.last_tick()})",
            file=sys.stderr,
        )
    elif args.regression_demo:
        from repro.experiment.regression import run_regression_scenario

        print(
            "staging the seeded create->validate->revert scenario...",
            file=sys.stderr,
        )
        scenario = run_regression_scenario()
        # Hold the post-incident state for a while: the fleet's one
        # decided recommendation stays reverted, so the revert-rate
        # budget keeps burning until the long window concedes too —
        # exactly the multi-window confirmation the SLO machinery
        # requires before paging.
        plane = scenario.plane
        for _ in range(160):
            plane.clock.advance(3.0)
            plane.process()
        store = plane.history.store
    else:
        from repro.parallel import build_fleet_service

        service = build_fleet_service(
            n_databases=args.dbs,
            workers=args.workers,
            backend=args.backend,
            tier=args.tier,
            seed=args.seed,
        )
        print(
            f"running the fleet loop at default cadence: {args.dbs} "
            f"{args.tier} databases across {len(service.payloads)} "
            f"{service.backend} worker(s), {args.days} simulated days",
            file=sys.stderr,
        )
        try:
            service.run(hours=args.days * 24)
            store = service.history.store
        finally:
            service.close()
    statuses = evaluate_catalog(store)
    if args.format == "json":
        print(
            json.dumps(
                [status.to_payload() for status in statuses],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for line in render_slo_report(statuses):
            print(line)
    if args.history_out:
        count = store.dump(args.history_out)
        print(f"wrote {count} history records to {args.history_out}")
    if args.slo_out:
        count = dump_statuses(statuses, args.slo_out)
        print(f"wrote {count} SLO status records to {args.slo_out}")
    alerting = [status.name for status in statuses if status.alerting]
    if alerting and args.fail_on_alert:
        print(f"burn-rate alert(s) firing: {', '.join(alerting)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct why one recommendation was created/validated/reverted."""
    recorder = None
    store = None
    if args.audit:
        audit = AuditLog.replay(args.audit)
        database = args.database
        if database is None:
            databases = sorted(
                {e.database for e in audit.events() if e.rec_id is not None}
            )
            if len(databases) != 1:
                print("--audit replay needs an explicit <database> "
                      f"(stream covers: {', '.join(databases) or 'none'})")
                return 1
            database = databases[0]
    elif args.regression_demo:
        from repro.experiment.regression import run_regression_scenario

        # The scenario is pinned to its own seed: the point is a
        # deterministic create->validate->revert chain, not a sweep.
        print("staging the seeded create->validate->revert scenario...")
        scenario = run_regression_scenario()
        plane = scenario.plane
        audit = plane.audit
        recorder = plane.telemetry.recorder
        store = plane.store
        database = args.database or scenario.database
        if args.rec_id is None:
            args.rec_id = str(scenario.rec_id)
        print(f"final state: {scenario.final_state.value}; firing alerts: "
              f"{', '.join(a.rule for a in plane.watchdog.active()) or 'none'}")
        print()
    else:
        if args.database is None:
            print("explain needs a <database> (or --regression-demo / --audit)")
            return 1
        database = args.database
        service = build_service(
            n_databases=args.dbs,
            tier=args.tier,
            seed=args.seed,
            control_settings=ControlPlaneSettings(
                snapshot_period=2 * HOURS,
                analysis_period=8 * HOURS,
                validation_window=6 * HOURS,
            ),
            service_settings=ServiceSettings(max_statements_per_step=80),
            default_config=AutoIndexingConfig(create_mode=AutoMode.AUTO),
        )
        print(f"running the closed loop: {args.dbs} {args.tier} databases, "
              f"{args.days} simulated days")
        service.run(hours=args.days * 24)
        print()
        plane = service.plane
        audit = plane.audit
        recorder = plane.telemetry.recorder
        store = plane.store
    if args.rec_id is None:
        for line in render_index(audit, database):
            print(line)
        print("(re-run with a rec-id for the full decision timeline)")
        return 0
    if args.rec_id == "latest":
        rec_ids = audit.rec_ids(database)
        if not rec_ids:
            print(f"no recommendation decisions recorded for {database}")
            return 1
        rec_id = rec_ids[-1]
    else:
        rec_id = int(args.rec_id)
    for line in render_explain(
        audit, database, rec_id, recorder=recorder, store=store
    ):
        print(line)
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    """Run the Figure 6 recommender comparison for one tier."""
    fleet = Fleet(FleetSpec(n_databases=args.dbs, tier=args.tier, seed=args.seed))
    print(f"running the Figure 6 experiment on {args.dbs} {args.tier} databases "
          "(4 phases per database; this replays several days of traffic)")
    summary = compare_fleet(fleet, ComparisonSettings())
    for line in summary.table_rows():
        print(line)
    for result in summary.results:
        improvements = ", ".join(
            f"{arm}={value:.0f}%" for arm, value in result.improvements.items()
        )
        print(f"  {result.database}: winner={result.winner} ({improvements})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-indexing service reproduction (SIGMOD 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="quickstart on one database")
    demo.set_defaults(func=cmd_demo)
    ops = sub.add_parser("ops", help="closed-loop run + operational report")
    _add_common(ops)
    ops.add_argument("--days", type=int, default=4)
    ops.add_argument(
        "--audit-out", help="dump the run's audit stream to this JSONL file"
    )
    ops.set_defaults(func=cmd_ops)
    run = sub.add_parser(
        "run", help="fleet-parallel closed-loop run (sharded workers)"
    )
    _add_common(run)
    run.add_argument("--days", type=int, default=4)
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard workers (0 = serial in-process execution)",
    )
    run.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend (auto = process when --workers > 1)",
    )
    run.add_argument(
        "--max-statements",
        type=int,
        default=80,
        help="statement cap per database per step",
    )
    run.add_argument(
        "--batch-ticks",
        type=int,
        default=1,
        help="ticks dispatched per pool round-trip (pipelined dispatch: "
        "workers stay hot across the batch; output stays byte-identical)",
    )
    run.add_argument(
        "--audit-out", help="dump the run's audit stream to this JSONL file"
    )
    run.add_argument(
        "--no-profile",
        action="store_true",
        help="disable per-tick phase timing and trace collection",
    )
    run.set_defaults(func=cmd_run)
    prof = sub.add_parser(
        "profile",
        help="fleet critical-path profile (phase timing + Perfetto trace)",
    )
    _add_common(prof)
    prof.add_argument(
        "--ticks", type=int, default=8, help="fleet ticks to profile"
    )
    prof.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard workers (0 = serial in-process execution)",
    )
    prof.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend (auto = process when --workers > 1)",
    )
    prof.add_argument(
        "--max-statements",
        type=int,
        default=80,
        help="statement cap per database per step",
    )
    prof.add_argument(
        "--batch-ticks",
        type=int,
        default=1,
        help="ticks dispatched per pool round-trip (profile the "
        "pipelined dispatch path)",
    )
    prof.add_argument(
        "--top", type=int, default=10, help="hot paths to list"
    )
    prof.add_argument(
        "--trace-out",
        help="write the Chrome/Perfetto trace_event JSON timeline here",
    )
    prof.add_argument(
        "--no-profile",
        action="store_true",
        help="run with instrumentation off (overhead A/B baseline)",
    )
    prof.set_defaults(func=cmd_profile)
    fig6 = sub.add_parser("fig6", help="the Figure 6 recommender comparison")
    _add_common(fig6)
    fig6.set_defaults(func=cmd_fig6)
    telemetry = sub.add_parser(
        "telemetry", help="closed-loop run + fleet telemetry dashboard"
    )
    _add_common(telemetry)
    telemetry.add_argument("--days", type=int, default=4)
    telemetry.add_argument(
        "--top", type=int, default=5, help="slowest tuning sessions to list"
    )
    telemetry.add_argument(
        "--format",
        choices=("dashboard", "json", "prom"),
        default="dashboard",
    )
    telemetry.add_argument(
        "--audit-out", help="dump the run's audit stream to this JSONL file"
    )
    telemetry.set_defaults(func=cmd_telemetry)
    slo = sub.add_parser(
        "slo", help="SLO burn-rate report over a run's telemetry history"
    )
    _add_common(slo)
    slo.add_argument("--days", type=int, default=4)
    slo.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard workers (0 = serial in-process execution)",
    )
    slo.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend (auto = process when --workers > 1)",
    )
    slo.add_argument(
        "--format", choices=("report", "json"), default="report"
    )
    slo.add_argument(
        "--history",
        help="replay a history JSONL dump instead of running the loop",
    )
    slo.add_argument(
        "--history-out",
        help="dump the run's time-series store to this JSONL file",
    )
    slo.add_argument(
        "--slo-out",
        help="dump the evaluated SLO statuses to this JSONL file",
    )
    slo.add_argument(
        "--regression-demo",
        action="store_true",
        help="stage the seeded create->validate->revert scenario and "
        "report its burn rates",
    )
    slo.add_argument(
        "--fail-on-alert",
        action="store_true",
        help="exit non-zero if any burn-rate alert is firing (CI gate)",
    )
    slo.set_defaults(func=cmd_slo)
    explain = sub.add_parser(
        "explain",
        help="decision-provenance timeline for one recommendation",
    )
    _add_common(explain)
    explain.add_argument(
        "database", nargs="?", help="managed database name (e.g. db-standard-0)"
    )
    explain.add_argument(
        "rec_id",
        nargs="?",
        help="recommendation id, or 'latest' (omit for the decision index)",
    )
    explain.add_argument("--days", type=int, default=4)
    explain.add_argument(
        "--audit", help="replay a JSONL audit dump instead of running the loop"
    )
    explain.add_argument(
        "--regression-demo",
        action="store_true",
        help="stage the seeded create->validate->revert scenario and explain it",
    )
    explain.set_defaults(func=cmd_explain)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "executor", None):
        os.environ["REPRO_EXECUTOR"] = args.executor
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
