"""Deterministic random-number utilities.

All stochastic behaviour in the library flows through seeded
:class:`numpy.random.Generator` instances derived from a single root seed,
so every fleet, workload, and experiment is exactly replayable.  Components
derive child generators with :func:`derive` using stable string labels; two
runs with the same root seed and labels see identical streams regardless of
call ordering elsewhere in the system.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _label_to_int(label: str) -> int:
    """Map an arbitrary string label to a stable 64-bit integer."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive(seed: int, *labels: str) -> np.random.Generator:
    """Create a generator deterministically derived from ``seed`` and labels.

    >>> g1 = derive(42, "fleet", "db-0")
    >>> g2 = derive(42, "fleet", "db-0")
    >>> bool(g1.integers(1 << 30) == g2.integers(1 << 30))
    True
    """
    entropy = [seed] + [_label_to_int(label) for label in labels]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def stable_hash(*parts: object) -> int:
    """Stable 63-bit hash of the string forms of ``parts``.

    Used for deterministic per-object quantities (e.g. the optimizer's
    per-(table, column) estimation-error multiplier) that must not depend on
    Python's randomized ``hash()``.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


def stable_uniform(*parts: object) -> float:
    """Deterministic pseudo-uniform draw in [0, 1) keyed by ``parts``."""
    return stable_hash(*parts) / float(1 << 63)
