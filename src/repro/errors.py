"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
The control plane additionally distinguishes *transient* errors (retried by
the state machine) from *permanent* ones (terminal ``Error`` state), which
mirrors the paper's Retry vs Error recommendation states (Section 4).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TransientError(ReproError):
    """An error that is expected to succeed if the operation is retried.

    The control plane moves a recommendation into the ``RETRY`` state when
    one of these is raised while acting on it.
    """


class PermanentError(ReproError):
    """An irrecoverable error; the control plane records ``ERROR``."""


class SchemaError(PermanentError):
    """Schema objects are missing, duplicated, or inconsistent."""


class UnknownTableError(SchemaError):
    """Referenced table does not exist in the catalog."""


class UnknownColumnError(SchemaError):
    """Referenced column does not exist on the table."""


class UnknownIndexError(SchemaError):
    """Referenced index does not exist on the table."""


class DuplicateObjectError(SchemaError):
    """An object with the same name already exists."""


class QueryError(ReproError):
    """Query is malformed or references unknown objects."""


class ParseError(QueryError):
    """The SQL text could not be parsed by the mini T-SQL parser."""


class OptimizeError(QueryError):
    """The optimizer could not produce a plan for the statement.

    Mirrors statements that SQL Server's what-if API cannot optimize in
    isolation (Section 5.3.2), e.g. incomplete batch fragments.
    """


class ExecutionError(ReproError):
    """A statement failed during execution."""


class LockTimeoutError(TransientError):
    """A lock request timed out; the caller should back off and retry."""


class ResourceBudgetExceededError(TransientError):
    """A resource-governed session exhausted its budget."""


class SessionAbortedError(TransientError):
    """A tuning session was aborted (e.g. it was slowing down user queries)."""


class InvalidStateTransitionError(PermanentError):
    """An illegal transition was attempted on a state machine."""


class TelemetryError(ReproError):
    """Misuse of the observability layer (bad metric name, double-closed
    span, kind conflict) — distinct from compliance violations, which
    raise ``ValueError`` at the emission boundary."""


class ShardCrashError(ReproError):
    """A fleet shard worker process died mid-protocol.

    Raised by the process-backed worker pool when a shard's pipe hits
    EOF (the worker was killed or crashed hard enough to skip its own
    error report).  Carries which shard died and the last command the
    parent sent it, so operators can tell a startup death from a
    mid-batch one; the pool closes its remaining workers before raising.
    """

    def __init__(self, shard_index: int, last_command: str) -> None:
        super().__init__(
            f"shard {shard_index} worker process died "
            f"(last command sent: {last_command!r})"
        )
        self.shard_index = shard_index
        self.last_command = last_command


class WorkflowError(ReproError):
    """An experiment workflow step failed."""


class BInstanceDivergedError(WorkflowError):
    """The B-instance diverged from the primary beyond tolerance."""
