"""Control-plane micro-services (Section 4): recommendation generation,
implementation, validation, DTA session management, and health."""
