"""Micro-service (a): invoke database analysis and generate recommendations."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError, TransientError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


class RecommendationService:
    """Drives MI snapshots and analysis sessions per database."""

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane

    def snapshot(self, managed: "ManagedDatabase", now: float) -> None:
        """Periodic MI DMV snapshot (reset tolerance, Section 5.2)."""
        groups = managed.mi.take_snapshot()
        self.plane.events.emit(
            now, "mi_snapshot", managed.name, groups=groups
        )

    def analyze(self, managed: "ManagedDatabase", now: float) -> None:
        """One analysis pass: pick the source by policy and run it."""
        self.plane.faults.check("analyze")
        managed.analysis_runs += 1
        decision = self.plane.policy.decide(managed.engine, managed.tier)
        source = decision.source
        telemetry = self.plane.telemetry
        telemetry.audit.emit(
            now,
            "source_selected",
            managed.name,
            source=source,
            rule=decision.rule,
            evidence=decision.evidence,
        )
        span = telemetry.tracer.start(
            "analysis", managed.name, now, source=source
        )
        try:
            if source == "DTA":
                recommendations = self.plane.dta_service.run(managed, now)
            else:
                recommendations = managed.mi.recommend()
        except TransientError:
            # Budget exhaustion and friends: the scheduler will try again
            # on the next analysis period; DTA's own cache keeps progress.
            telemetry.tracer.end(span, self.plane.clock.now, outcome="deferred")
            telemetry.registry.counter(
                "analysis_runs_total", database=managed.name, source=source,
                outcome="deferred",
            ).inc()
            self.plane.events.emit(
                now, "analysis_deferred", managed.name, source=source
            )
            return
        except ReproError as exc:
            telemetry.tracer.end(span, self.plane.clock.now, outcome="failed")
            telemetry.registry.counter(
                "analysis_runs_total", database=managed.name, source=source,
                outcome="failed",
            ).inc()
            self.plane.events.emit(
                now, "analysis_failed", managed.name, source=source,
                reason=type(exc).__name__,
            )
            return
        telemetry.tracer.end(
            span,
            self.plane.clock.now,
            outcome="completed",
            recommendations=len(recommendations),
        )
        telemetry.registry.counter(
            "analysis_runs_total", database=managed.name, source=source,
            outcome="completed",
        ).inc()
        self._audit_analysis(managed, now, source, recommendations)
        if source != "DTA":
            # DTA sessions observe their own (resumable) span duration;
            # MI analyses are instantaneous passes over the DMV snapshots.
            telemetry.registry.histogram(
                "tuning_session_duration_minutes", source=source,
            ).observe(span.duration or 0.0)
        self.plane.events.emit(
            now,
            "analysis_completed",
            managed.name,
            source=source,
            recommendations=len(recommendations),
        )
        if recommendations:
            self.plane.register_recommendations(managed, recommendations, now)

    def _audit_analysis(
        self,
        managed: "ManagedDatabase",
        now: float,
        source: str,
        recommendations,
    ) -> None:
        """Record the per-candidate evidence behind one analysis pass."""
        audit = self.plane.telemetry.audit
        candidates = [
            {
                "table": rec.table,
                "key_columns": list(rec.key_columns),
                "action": rec.action.value,
                "estimated_improvement_pct": rec.estimated_improvement_pct,
                "estimated_size_bytes": rec.estimated_size_bytes,
            }
            for rec in recommendations
        ]
        payload = {
            "source": source,
            "recommendations": len(recommendations),
            "candidates": candidates,
        }
        if source == "DTA":
            payload.update(self.plane.dta_service.last_run_info)
        audit.emit(now, "candidates_generated", managed.name, **payload)
        if source != "DTA":
            for decision in managed.mi.last_decisions:
                if decision.get("accepted"):
                    continue
                audit.emit(
                    now,
                    "candidate_rejected",
                    managed.name,
                    source=source,
                    **decision,
                )

    def analyze_drops(self, managed: "ManagedDatabase", now: float) -> None:
        """Long-horizon drop analysis (Section 5.4)."""
        self.plane.faults.check("analyze_drops")
        recommendations = managed.drops.recommend()
        self.plane.events.emit(
            now, "drop_analysis_completed", managed.name,
            recommendations=len(recommendations),
        )
        if recommendations:
            self.plane.register_recommendations(managed, recommendations, now)
