"""Micro-service (b): implement recommendations (and perform reverts).

Creates run as online, resumable index builds advanced at a configured
rate of virtual time (Section 6's "schedule during low activity" and
Section 8.3's resumable-create lessons); drops use the low-priority Sch-M
protocol with back-off/retry so they never convoy user transactions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane.states import RecommendationState
from repro.controlplane.store import RecommendationRecord
from repro.engine.ddl import (
    BuildState,
    LowPriorityDropProtocol,
    OnlineIndexBuildJob,
)
from repro.engine.schema import auto_index_name
from repro.errors import PermanentError, TransientError
from repro.recommender.recommendation import Action

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


def _lock_evidence(protocol: LowPriorityDropProtocol) -> dict:
    """Lock-wait evidence of a low-priority Sch-M drop protocol."""
    return {
        "lock_attempts": len(protocol.attempts),
        "lock_timeouts": sum(1 for a in protocol.attempts if not a.succeeded),
        "lock_wait_minutes": sum(a.waited for a in protocol.attempts),
    }


class ImplementationService:
    """Starts and advances implementations; executes reverts."""

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane

    # ------------------------------------------------------------------
    # Starting

    def begin(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        self.plane.faults.check("implement")
        recommendation = record.recommendation
        engine = managed.engine
        if recommendation.action is Action.CREATE:
            if recommendation.table not in engine.database.tables:
                raise PermanentError(
                    f"table {recommendation.table!r} was dropped"
                )
            # Name by record id: unique per database and reproducible,
            # unlike the process-global fallback counter (whose value
            # depends on allocation order across every plane in the
            # process — never stable under fleet sharding).
            definition = recommendation.to_definition(
                record.index_name
                or auto_index_name(
                    recommendation.table,
                    recommendation.key_columns,
                    seq=record.rec_id,
                )
            )
            if engine.index_exists(recommendation.table, definition.name):
                raise PermanentError(
                    f"an index named {definition.name!r} already exists"
                )
            table = engine.database.table(recommendation.table)
            job = OnlineIndexBuildJob(table, definition, resumable=True)
            managed.build_jobs[record.rec_id] = (job, now)
            self.plane.store.update(record, now, index_name=definition.name)
        else:
            index_name = recommendation.existing_index_name
            if not engine.index_exists(recommendation.table, index_name):
                raise PermanentError(
                    f"index {index_name!r} was dropped external to the system"
                )
            protocol = LowPriorityDropProtocol(
                engine.locks,
                engine.database.table(recommendation.table),
                index_name,
            )
            managed.drop_protocols[record.rec_id] = protocol
            self.plane.store.update(record, now, index_name=index_name)
        self.plane.store.transition(
            record, RecommendationState.IMPLEMENTING, now, "implementation started"
        )
        if recommendation.action is Action.CREATE:
            job, _ = managed.build_jobs[record.rec_id]
            method = {"method": "online_resumable_build", "rows_total": job.rows_total}
        else:
            method = {"method": "low_priority_drop"}
        self.plane.telemetry.audit.emit(
            now,
            "implementation_started",
            managed.name,
            rec_id=record.rec_id,
            action=recommendation.action.value,
            index_name=record.index_name,
            table=recommendation.table,
            **method,
        )
        self.plane.events.emit(
            now,
            "implement_started",
            managed.name,
            rec_id=record.rec_id,
            action=recommendation.action.value,
        )

    # ------------------------------------------------------------------
    # Advancing

    def drive(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        if record.recommendation.action is Action.CREATE:
            self._advance_build(record, managed, now)
        else:
            self._advance_drop(record, managed, now)

    def _advance_build(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        entry = managed.build_jobs.get(record.rec_id)
        if entry is None:
            # Control plane restarted mid-build: restart the build.
            self.begin_rebuild(record, managed, now)
            return
        job, last_advance = entry
        elapsed = max(0.0, now - last_advance)
        rows = int(elapsed * self.plane.settings.build_rows_per_minute) + 1
        progress = job.advance(rows, now=now)
        managed.build_jobs[record.rec_id] = (job, now)
        managed.engine.governor.index_build.charge_cpu(
            rows * OnlineIndexBuildJob.CPU_MS_PER_ROW, now
        )
        if progress.state is BuildState.COMPLETED:
            del managed.build_jobs[record.rec_id]
            managed.engine.missing_indexes.reset()  # schema change
            self._implemented(
                record,
                managed,
                now,
                rows_built=progress.rows_total,
                build_cpu_ms=progress.cpu_ms_spent,
                log_bytes_generated=progress.log_bytes_generated,
            )

    def begin_rebuild(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        """Re-create the build job after a control-plane crash."""
        definition = record.recommendation.to_definition(record.index_name)
        if managed.engine.index_exists(record.recommendation.table, definition.name):
            self._implemented(record, managed, now)
            return
        table = managed.engine.database.table(record.recommendation.table)
        job = OnlineIndexBuildJob(table, definition, resumable=True)
        managed.build_jobs[record.rec_id] = (job, now)

    def _advance_drop(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        protocol = managed.drop_protocols.get(record.rec_id)
        if protocol is None:
            raise TransientError("drop protocol lost; retrying")
        if protocol.attempt(now):
            del managed.drop_protocols[record.rec_id]
            managed.engine.usage_stats.drop_index(record.index_name)
            managed.engine.missing_indexes.reset()
            self._implemented(record, managed, now, **_lock_evidence(protocol))
            return
        if protocol.exhausted():
            raise TransientError(
                f"low-priority drop of {record.index_name!r} kept timing out"
            )

    def _implemented(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
        **evidence,
    ) -> None:
        settings = self.plane.settings
        first_time = record.implemented_at is None
        self.plane.store.update(
            record,
            now,
            implemented_at=now,
            validate_after=now + settings.validation_settle,
        )
        if first_time:
            self.plane.telemetry.registry.counter(
                "implementations_completed_total",
                database=managed.name,
                action=record.recommendation.action.value,
            ).inc()
        self.plane.telemetry.audit.emit(
            now,
            "implementation_completed",
            managed.name,
            rec_id=record.rec_id,
            action=record.recommendation.action.value,
            index_name=record.index_name,
            validation_window_opens=now + settings.validation_settle,
            **evidence,
        )
        self.plane.store.transition(
            record, RecommendationState.VALIDATING, now, "implemented"
        )
        self.plane.events.emit(
            now,
            "implement_completed",
            managed.name,
            rec_id=record.rec_id,
            action=record.recommendation.action.value,
            index_name=record.index_name,
        )

    # ------------------------------------------------------------------
    # Reverting (Section 6)

    def drive_revert(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        self.plane.faults.check("revert")
        engine = managed.engine
        recommendation = record.recommendation
        evidence = {}
        if recommendation.action is Action.CREATE:
            # Revert a create: drop the index (low priority, Section 8.3).
            if engine.index_exists(recommendation.table, record.index_name):
                protocol = managed.drop_protocols.get(record.rec_id)
                if protocol is None:
                    protocol = LowPriorityDropProtocol(
                        engine.locks,
                        engine.database.table(recommendation.table),
                        record.index_name,
                    )
                    managed.drop_protocols[record.rec_id] = protocol
                if not protocol.attempt(now):
                    if protocol.exhausted():
                        raise TransientError("revert drop kept timing out")
                    return
                del managed.drop_protocols[record.rec_id]
                engine.usage_stats.drop_index(record.index_name)
                engine.missing_indexes.reset()
                evidence = {"method": "low_priority_drop", **_lock_evidence(protocol)}
        else:
            # Revert a drop: recreate the index.
            definition = record.recommendation.to_definition(record.index_name)
            if not engine.index_exists(recommendation.table, definition.name):
                table = engine.database.table(recommendation.table)
                job = OnlineIndexBuildJob(table, definition, resumable=True)
                job.advance(table.row_count + 1, now=now)
                engine.missing_indexes.reset()
                evidence = {"method": "recreate_index", "rows_built": job.rows_total}
        self.plane.telemetry.audit.emit(
            now,
            "revert_completed",
            managed.name,
            rec_id=record.rec_id,
            action=recommendation.action.value,
            index_name=record.index_name,
            **evidence,
        )
        self.plane.store.transition(
            record, RecommendationState.REVERTED, now, "reverted"
        )
        self.plane.events.emit(
            now,
            "reverted",
            managed.name,
            rec_id=record.rec_id,
            action=recommendation.action.value,
        )
