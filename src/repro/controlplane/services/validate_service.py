"""Micro-service (c): validate implemented recommendations (Section 6)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane.states import RecommendationState
from repro.controlplane.store import RecommendationRecord
from repro.recommender.recommendation import Action
from repro.validation.validator import Verdict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


class ValidationService:
    """Waits out the observation window, judges, and triggers reverts."""

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane

    def drive(
        self,
        record: RecommendationRecord,
        managed: "ManagedDatabase",
        now: float,
    ) -> None:
        settings = self.plane.settings
        window_end = record.validate_after + settings.validation_window
        if now < window_end:
            return  # still observing
        self.plane.faults.check("validate")
        before = (
            max(0.0, record.implemented_at - settings.validation_window),
            record.implemented_at,
        )
        after = (record.validate_after, window_end)
        action = (
            "create" if record.recommendation.action is Action.CREATE else "drop"
        )
        outcome = managed.validator.validate(
            record.index_name, action, before, after
        )
        self.plane.store.update(
            record,
            now,
            validation_summary=(
                f"{outcome.verdict.value}: {outcome.improved_count} improved, "
                f"{outcome.regressed_count} regressed "
                f"({outcome.aggregate_change:+.1%} aggregate)"
            ),
            aggregate_change=outcome.aggregate_change,
        )
        self._record_history(record, managed, outcome)
        audit = self.plane.telemetry.audit
        audit.emit(
            now,
            "validation_completed",
            managed.name,
            rec_id=record.rec_id,
            window_before_minutes=before[1] - before[0],
            window_after_minutes=window_end - record.validate_after,
            **outcome.to_payload(),
        )
        if outcome.should_revert:
            audit.emit(
                now,
                "revert_decided",
                managed.name,
                rec_id=record.rec_id,
                predicate=outcome.details or "regression detected",
                verdict=outcome.verdict.value,
                aggregate_change=outcome.aggregate_change,
                trigger_query_ids=[
                    statement.query_id
                    for statement in outcome.statements
                    if statement.verdict is Verdict.REGRESSED
                ],
            )
            self.plane.store.transition(
                record,
                RecommendationState.REVERTING,
                now,
                outcome.details or "regression detected",
            )
            self.plane.events.emit(
                now,
                "validation_regression",
                managed.name,
                rec_id=record.rec_id,
                regressed=outcome.regressed_count,
                aggregate_change=outcome.aggregate_change,
            )
            # Revert promptly rather than waiting a full process pass.
            self.plane.implement_service.drive_revert(record, managed, now)
            return
        self.plane.store.transition(
            record, RecommendationState.SUCCESS, now, "validated"
        )
        self.plane.events.emit(
            now,
            "validation_success",
            managed.name,
            rec_id=record.rec_id,
            improved=outcome.improved_count,
            aggregate_change=outcome.aggregate_change,
        )

    def _record_history(
        self, record: RecommendationRecord, managed: "ManagedDatabase", outcome
    ) -> None:
        """Store a labeled example for the low-impact classifier."""
        recommendation = record.recommendation
        table = managed.engine.database.tables.get(recommendation.table)
        usage = managed.engine.usage_stats.get(record.index_name or "")
        regressed_kinds = []
        for statement in outcome.statements:
            if statement.verdict is Verdict.REGRESSED:
                info = managed.engine.query_store.query_info(statement.query_id)
                regressed_kinds.append(info.kind if info else "?")
        if outcome.should_revert:
            registry = self.plane.telemetry.registry
            kinds = set(regressed_kinds)
            if kinds & {"INSERT", "UPDATE", "DELETE"}:
                registry.counter(
                    "validation_reverts_total",
                    database=managed.name,
                    regression="write",
                ).inc()
            if "SELECT" in kinds:
                registry.counter(
                    "validation_reverts_total",
                    database=managed.name,
                    regression="select",
                ).inc()
        self.plane.validation_history.append(
            {
                "database": managed.name,
                "action": recommendation.action.value,
                "source": recommendation.source,
                "estimated_impact_pct": recommendation.estimated_improvement_pct,
                "table_rows": table.row_count if table else 0,
                "index_size_bytes": recommendation.estimated_size_bytes,
                "observed_seeks": usage.user_seeks if usage else 0,
                "beneficial": outcome.verdict is Verdict.IMPROVED
                and not outcome.should_revert,
                "reverted": outcome.should_revert,
                "aggregate_change": outcome.aggregate_change,
                "regressed_kinds": regressed_kinds,
            }
        )
