"""Micro-service: DTA session management (Section 5.3.3).

Owns session lifecycle at fleet scale: creates sessions with tier-derived
settings, tolerates budget exhaustion by leaving the session resumable
(its what-if cache is retained), aborts sessions that interfere with user
queries, and guarantees terminal states with cleanup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import ResourceBudgetExceededError, SessionAbortedError
from repro.observability.spans import Span
from repro.recommender.dta import DtaSession, DtaSettings
from repro.recommender.recommendation import IndexRecommendation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


class DtaSessionManager:
    """Tracks at most one live DTA session per database."""

    MAX_BUDGET_DEFERRALS = 8

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane
        self._sessions: Dict[str, DtaSession] = {}
        self._deferrals: Dict[str, int] = {}
        #: Open telemetry span per resumable session; a budget-deferred
        #: session keeps its span open across analysis periods, so the
        #: recorded duration is the true wall-to-wall simulated time.
        self._session_spans: Dict[str, Span] = {}
        #: What-if evidence of the most recent completed/aborted run —
        #: folded into the ``candidates_generated`` audit event.
        self.last_run_info: dict = {}

    def settings_for(self, managed: "ManagedDatabase") -> DtaSettings:
        return DtaSettings(tier=managed.tier)

    def run(self, managed: "ManagedDatabase", now: float) -> List[IndexRecommendation]:
        """Run (or resume) a session; raises TransientError on budget."""
        telemetry = self.plane.telemetry
        session = self._sessions.get(managed.name)
        if session is None:
            session = DtaSession(
                managed.engine,
                self.settings_for(managed),
                interference_check=lambda: self._interfering(managed),
            )
            self._sessions[managed.name] = session
            self._deferrals[managed.name] = 0
            self._session_spans[managed.name] = telemetry.tracer.start(
                "dta_session", managed.name, now, source="DTA",
                tier=managed.tier,
            )
        try:
            recommendations = session.run()
        except ResourceBudgetExceededError:
            self._deferrals[managed.name] += 1
            self.plane.events.emit(
                now, "dta_budget_exhausted", managed.name,
                deferrals=self._deferrals[managed.name],
            )
            if self._deferrals[managed.name] >= self.MAX_BUDGET_DEFERRALS:
                # Give up: clean up and surface an analysis failure.
                del self._sessions[managed.name]
                self._close_session_span(managed, now, "abandoned")
                self.last_run_info = {"session_outcome": "abandoned"}
                self.plane.events.emit(now, "dta_abandoned", managed.name)
                return []
            raise  # transient: the next analysis period resumes the session
        except SessionAbortedError:
            del self._sessions[managed.name]
            self._close_session_span(managed, now, "aborted")
            self.last_run_info = {"session_outcome": "aborted"}
            self.plane.events.emit(now, "dta_aborted", managed.name)
            return []
        managed.dta_sessions += 1
        del self._sessions[managed.name]
        whatif_calls = session.whatif.stats.calls
        self.last_run_info = {
            "session_outcome": "completed",
            "whatif_calls": whatif_calls,
            "workload_coverage": session.report.coverage if session.report else 0.0,
        }
        self._close_session_span(
            managed, now, "completed", whatif_calls=whatif_calls
        )
        telemetry.registry.counter(
            "dta_whatif_calls_total", database=managed.name
        ).inc(whatif_calls)
        self.plane.events.emit(
            now,
            "dta_completed",
            managed.name,
            whatif_calls=whatif_calls,
            coverage=session.report.coverage if session.report else 0.0,
        )
        return recommendations

    def _close_session_span(
        self, managed: "ManagedDatabase", now: float, outcome: str, **attributes
    ) -> None:
        span = self._session_spans.pop(managed.name, None)
        if span is None:
            return
        self.plane.telemetry.tracer.end(span, now, outcome=outcome, **attributes)
        self.plane.telemetry.registry.histogram(
            "tuning_session_duration_minutes", source="DTA",
        ).observe(span.duration or 0.0)

    def _interfering(self, managed: "ManagedDatabase") -> bool:
        """Detect that tuning is slowing user queries (Section 5.3.1).

        Uses the tuning pool's headroom as the interference proxy: a pool
        pushed to its limit while the user pool is busy indicates pressure.
        """
        headroom = managed.engine.governor.tuning.window_headroom(
            managed.engine.now
        )
        return headroom is not None and headroom <= 0.0
