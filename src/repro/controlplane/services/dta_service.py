"""Micro-service: DTA session management (Section 5.3.3).

Owns session lifecycle at fleet scale: creates sessions with tier-derived
settings, tolerates budget exhaustion by leaving the session resumable
(its what-if cache is retained), aborts sessions that interfere with user
queries, and guarantees terminal states with cleanup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import ResourceBudgetExceededError, SessionAbortedError
from repro.recommender.dta import DtaSession, DtaSettings
from repro.recommender.recommendation import IndexRecommendation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


class DtaSessionManager:
    """Tracks at most one live DTA session per database."""

    MAX_BUDGET_DEFERRALS = 8

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane
        self._sessions: Dict[str, DtaSession] = {}
        self._deferrals: Dict[str, int] = {}

    def settings_for(self, managed: "ManagedDatabase") -> DtaSettings:
        return DtaSettings(tier=managed.tier)

    def run(self, managed: "ManagedDatabase", now: float) -> List[IndexRecommendation]:
        """Run (or resume) a session; raises TransientError on budget."""
        session = self._sessions.get(managed.name)
        if session is None:
            session = DtaSession(
                managed.engine,
                self.settings_for(managed),
                interference_check=lambda: self._interfering(managed),
            )
            self._sessions[managed.name] = session
            self._deferrals[managed.name] = 0
        try:
            recommendations = session.run()
        except ResourceBudgetExceededError:
            self._deferrals[managed.name] += 1
            self.plane.events.emit(
                now, "dta_budget_exhausted", managed.name,
                deferrals=self._deferrals[managed.name],
            )
            if self._deferrals[managed.name] >= self.MAX_BUDGET_DEFERRALS:
                # Give up: clean up and surface an analysis failure.
                del self._sessions[managed.name]
                self.plane.events.emit(now, "dta_abandoned", managed.name)
                return []
            raise  # transient: the next analysis period resumes the session
        except SessionAbortedError:
            del self._sessions[managed.name]
            self.plane.events.emit(now, "dta_aborted", managed.name)
            return []
        managed.dta_sessions += 1
        del self._sessions[managed.name]
        self.plane.events.emit(
            now,
            "dta_completed",
            managed.name,
            whatif_calls=session.whatif.stats.calls,
            coverage=session.report.coverage if session.report else 0.0,
        )
        return recommendations

    def _interfering(self, managed: "ManagedDatabase") -> bool:
        """Detect that tuning is slowing user queries (Section 5.3.1).

        Uses the tuning pool's headroom as the interference proxy: a pool
        pushed to its limit while the user pool is busy indicates pressure.
        """
        headroom = managed.engine.governor.tuning.window_headroom(
            managed.engine.now
        )
        return headroom is not None and headroom <= 0.0
