"""Micro-service (d): detect issues and take corrective action (Section 4).

Well-known stuck conditions are processed automatically (stale ACTIVE
records expire, records stuck in RETRY past their horizon error out);
anything else raises an :class:`Incident` for on-call engineers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane.control_plane import Incident
from repro.controlplane.states import RecommendationState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controlplane.control_plane import ControlPlane, ManagedDatabase


class HealthService:
    """Periodic per-database health sweep."""

    def __init__(self, plane: "ControlPlane") -> None:
        self.plane = plane

    def check(self, managed: "ManagedDatabase", now: float) -> None:
        threshold = self.plane.settings.stuck_threshold
        for record in self.plane.store.records_for(database=managed.name):
            if record.terminal:
                continue
            last_change = (
                record.state_history[-1][0] if record.state_history else 0.0
            )
            age = now - last_change
            if age < threshold:
                continue
            audit = self.plane.telemetry.audit
            if record.state is RecommendationState.RETRY:
                # Known condition: retries stopped being scheduled.
                audit.emit(
                    now,
                    "health_action",
                    managed.name,
                    rec_id=record.rec_id,
                    action="error_stuck_retry",
                    state=record.state.value,
                    age_minutes=age,
                    stuck_threshold_minutes=threshold,
                )
                self.plane.store.transition(
                    record,
                    RecommendationState.ERROR,
                    now,
                    "health: stuck in retry",
                )
                self.plane.events.emit(
                    now, "health_corrected", managed.name, rec_id=record.rec_id
                )
            elif record.state is RecommendationState.ACTIVE:
                audit.emit(
                    now,
                    "health_action",
                    managed.name,
                    rec_id=record.rec_id,
                    action="expire_stale_active",
                    state=record.state.value,
                    age_minutes=age,
                    stuck_threshold_minutes=threshold,
                )
                self.plane.store.transition(
                    record,
                    RecommendationState.EXPIRED,
                    now,
                    "health: stale active recommendation",
                )
                self.plane.events.emit(
                    now, "health_corrected", managed.name, rec_id=record.rec_id
                )
            else:
                incident = Incident(
                    at=now,
                    database=managed.name,
                    rec_id=record.rec_id,
                    description=(
                        f"recommendation stuck in {record.state.value} "
                        f"for {age / 60:.1f} h"
                    ),
                )
                self.plane.incidents.append(incident)
                audit.emit(
                    now,
                    "health_action",
                    managed.name,
                    rec_id=record.rec_id,
                    action="incident_raised",
                    state=record.state.value,
                    age_minutes=age,
                    stuck_threshold_minutes=threshold,
                )
                self.plane.telemetry.registry.counter(
                    "incidents_total", database=managed.name
                ).inc()
                self.plane.events.emit(
                    now,
                    "incident",
                    managed.name,
                    rec_id=record.rec_id,
                    state=record.state.value,
                )
