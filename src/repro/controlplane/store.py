"""Persistent, journaled recommendation state store (Section 4).

The paper stores the control plane's state in a highly available database
in the same region.  Here a :class:`StateStore` keeps an in-memory table
of :class:`RecommendationRecord` rows plus an append-only journal of every
mutation; :meth:`StateStore.recover` rebuilds the table purely from the
journal, which is how the tests exercise crash recovery.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.controlplane.states import RecommendationState, check_transition
from repro.recommender.recommendation import IndexRecommendation


@dataclasses.dataclass
class RecommendationRecord:
    """One row of the recommendation table."""

    rec_id: int
    database: str
    recommendation: IndexRecommendation
    state: RecommendationState = RecommendationState.ACTIVE
    state_history: List[Tuple[float, RecommendationState, str]] = dataclasses.field(
        default_factory=list
    )
    #: Index name once implemented (auto-generated for CREATE actions).
    index_name: Optional[str] = None
    implemented_at: Optional[float] = None
    validate_after: Optional[float] = None
    #: Which state RETRY should re-enter.
    retry_target: Optional[RecommendationState] = None
    retry_at: Optional[float] = None
    attempts: int = 0
    note: str = ""
    #: Filled by validation.
    validation_summary: str = ""
    aggregate_change: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state.terminal


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One append-only journal record."""

    seq: int
    at: float
    op: str  # "insert" | "transition" | "update"
    rec_id: int
    payload: dict


class StateStore:
    """Journaled store of recommendation records.

    ``on_insert(record, at)`` and ``on_transition(record, old_state,
    new_state, at, note)`` are optional observer hooks; the control plane
    uses them to open/close telemetry spans and keep state-machine
    metrics in lockstep with the store — the store itself stays the
    single source of truth for transitions.
    """

    def __init__(self) -> None:
        self._records: Dict[int, RecommendationRecord] = {}
        self._journal: List[JournalEntry] = []
        self._id_counter = itertools.count(1)
        self._seq_counter = itertools.count(1)
        self.on_insert: Optional[Callable] = None
        self.on_transition: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Mutations (journaled)

    def _append(self, at: float, op: str, rec_id: int, payload: dict) -> None:
        self._journal.append(
            JournalEntry(
                seq=next(self._seq_counter), at=at, op=op, rec_id=rec_id,
                payload=payload,
            )
        )

    def insert(
        self, database: str, recommendation: IndexRecommendation, at: float
    ) -> RecommendationRecord:
        record = RecommendationRecord(
            rec_id=next(self._id_counter),
            database=database,
            recommendation=recommendation,
        )
        record.state_history.append((at, record.state, "created"))
        self._records[record.rec_id] = record
        self._append(
            at,
            "insert",
            record.rec_id,
            {"database": database, "recommendation": recommendation},
        )
        if self.on_insert is not None:
            self.on_insert(record, at)
        return record

    def transition(
        self,
        record: RecommendationRecord,
        new_state: RecommendationState,
        at: float,
        note: str = "",
    ) -> None:
        check_transition(record.state, new_state)
        old_state = record.state
        record.state = new_state
        record.note = note
        record.state_history.append((at, new_state, note))
        self._append(at, "transition", record.rec_id, {"state": new_state, "note": note})
        if self.on_transition is not None:
            self.on_transition(record, old_state, new_state, at, note)

    def update(self, record: RecommendationRecord, at: float, **fields) -> None:
        """Journaled update of auxiliary fields."""
        for key, value in fields.items():
            if not hasattr(record, key):
                raise AttributeError(f"RecommendationRecord has no field {key!r}")
            setattr(record, key, value)
        self._append(at, "update", record.rec_id, dict(fields))

    # ------------------------------------------------------------------
    # Queries

    def get(self, rec_id: int) -> Optional[RecommendationRecord]:
        return self._records.get(rec_id)

    def all_records(self) -> List[RecommendationRecord]:
        return list(self._records.values())

    def records_for(
        self,
        database: Optional[str] = None,
        state: Optional[RecommendationState] = None,
    ) -> List[RecommendationRecord]:
        out = []
        for record in self._records.values():
            if database is not None and record.database != database:
                continue
            if state is not None and record.state is not state:
                continue
            out.append(record)
        return out

    def count_by_state(self) -> Dict[RecommendationState, int]:
        counts: Dict[RecommendationState, int] = {}
        for record in self._records.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def journal_length(self) -> int:
        return len(self._journal)

    def journal_since(self, index: int) -> List[JournalEntry]:
        """Entries appended after the first ``index`` (a drain cursor).

        The fleet-parallel layer drains each worker store once per tick
        with a monotonically advancing cursor, so this must be O(delta),
        not O(journal).
        """
        return self._journal[index:]

    def journal(self, rec_id: Optional[int] = None) -> List[JournalEntry]:
        """The append-only journal, optionally filtered to one record.

        ``repro explain`` joins this against the audit stream and the
        span recorder to rebuild a decision timeline.
        """
        if rec_id is None:
            return list(self._journal)
        return [entry for entry in self._journal if entry.rec_id == rec_id]

    # ------------------------------------------------------------------
    # Replay (shared by crash recovery and the fleet-parallel merge)

    def _apply_entry(self, entry: JournalEntry, insert_note: str) -> None:
        """Apply one journal entry to the record table (no hooks)."""
        if entry.op == "insert":
            record = RecommendationRecord(
                rec_id=entry.rec_id,
                database=entry.payload["database"],
                recommendation=entry.payload["recommendation"],
            )
            record.state_history.append((entry.at, record.state, insert_note))
            self._records[entry.rec_id] = record
        elif entry.op == "transition":
            record = self._records[entry.rec_id]
            record.state = entry.payload["state"]
            record.note = entry.payload.get("note", "")
            record.state_history.append((entry.at, record.state, record.note))
        elif entry.op == "update":
            record = self._records[entry.rec_id]
            for key, value in entry.payload.items():
                setattr(record, key, value)

    def ingest(self, op: str, at: float, rec_id: int, payload: dict) -> None:
        """Append and apply one externally produced journal entry.

        The fleet-parallel merge replays per-shard journals through this
        path with globally remapped ``rec_id``s; the observer hooks do
        NOT fire (the shard already emitted the matching telemetry, which
        the merger replays separately), and no transition checking is
        re-done — the shard's own store already enforced it.
        """
        entry = JournalEntry(
            seq=next(self._seq_counter), at=at, op=op, rec_id=rec_id,
            payload=payload,
        )
        self._journal.append(entry)
        self._apply_entry(entry, insert_note="created")
        if op == "insert":
            # Keep direct insert() ids ahead of everything merged so far.
            self._id_counter = itertools.count(rec_id + 1)

    # ------------------------------------------------------------------
    # Crash recovery

    def recover(self) -> "StateStore":
        """Rebuild a fresh store purely from this store's journal."""
        rebuilt = StateStore()
        max_id = 0
        for entry in self._journal:
            rebuilt._apply_entry(entry, insert_note="created (recovered)")
            if entry.op == "insert":
                max_id = max(max_id, entry.rec_id)
            rebuilt._journal.append(entry)
        rebuilt._id_counter = itertools.count(max_id + 1)
        rebuilt._seq_counter = itertools.count(
            self._journal[-1].seq + 1 if self._journal else 1
        )
        return rebuilt
