"""State machines for databases and recommendations (Section 4)."""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.errors import InvalidStateTransitionError


class RecommendationState(enum.Enum):
    """Lifecycle of one recommendation, exactly as enumerated in the paper."""

    ACTIVE = "active"
    EXPIRED = "expired"
    IMPLEMENTING = "implementing"
    VALIDATING = "validating"
    SUCCESS = "success"
    REVERTING = "reverting"
    REVERTED = "reverted"
    RETRY = "retry"
    ERROR = "error"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {
    RecommendationState.EXPIRED,
    RecommendationState.SUCCESS,
    RecommendationState.REVERTED,
    RecommendationState.ERROR,
}

#: Legal transitions.  RETRY remembers which action to re-drive via the
#: record's ``retry_target``.
_TRANSITIONS: Dict[RecommendationState, FrozenSet[RecommendationState]] = {
    RecommendationState.ACTIVE: frozenset(
        {
            RecommendationState.IMPLEMENTING,
            RecommendationState.EXPIRED,
            RecommendationState.ERROR,
            # A transient fault while *starting* the implementation also
            # parks the record in RETRY.
            RecommendationState.RETRY,
        }
    ),
    RecommendationState.IMPLEMENTING: frozenset(
        {
            RecommendationState.VALIDATING,
            RecommendationState.RETRY,
            RecommendationState.ERROR,
        }
    ),
    RecommendationState.VALIDATING: frozenset(
        {
            RecommendationState.SUCCESS,
            RecommendationState.REVERTING,
            RecommendationState.RETRY,
            RecommendationState.ERROR,
        }
    ),
    RecommendationState.REVERTING: frozenset(
        {
            RecommendationState.REVERTED,
            RecommendationState.RETRY,
            RecommendationState.ERROR,
        }
    ),
    RecommendationState.RETRY: frozenset(
        {
            RecommendationState.IMPLEMENTING,
            RecommendationState.VALIDATING,
            RecommendationState.REVERTING,
            RecommendationState.ERROR,
            RecommendationState.EXPIRED,
        }
    ),
    RecommendationState.EXPIRED: frozenset(),
    RecommendationState.SUCCESS: frozenset(),
    RecommendationState.REVERTED: frozenset(),
    RecommendationState.ERROR: frozenset(),
}


def check_transition(
    current: RecommendationState, new: RecommendationState
) -> None:
    """Raise unless ``current -> new`` is a legal transition."""
    if new not in _TRANSITIONS[current]:
        raise InvalidStateTransitionError(
            f"illegal recommendation transition {current.value} -> {new.value}"
        )


class DatabaseState(enum.Enum):
    """Auto-indexing state of a managed database."""

    IDLE = "idle"
    ANALYZING = "analyzing"
    DTA_SESSION_RUNNING = "dta_session_running"
    IMPLEMENTING = "implementing"
    VALIDATING = "validating"
    DISABLED = "disabled"
