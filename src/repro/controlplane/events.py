"""Telemetry event bus.

The control plane's components are decentralized and communicate through
asynchronous events (Section 3).  For compliance, events never carry
customer data (query text, literals) — only anonymized identifiers and
aggregates, which is also how the paper's engineers debug the service
(Section 1.2).  The compliance check recurses into nested payload
values, so customer data cannot hide inside a list or sub-dict.

When constructed with a :class:`~repro.observability.MetricsRegistry`,
every ``emit`` also increments the ``events_total`` counter (labeled by
kind and database), which is how the fleet dashboard counts event
traffic without a subscriber.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, List, Optional

from repro.observability.compliance import FORBIDDEN_KEYS, ensure_compliant

#: Backwards-compatible alias; the authoritative set lives in
#: :mod:`repro.observability.compliance`.
_FORBIDDEN_PAYLOAD_KEYS = FORBIDDEN_KEYS


@dataclasses.dataclass(frozen=True)
class Event:
    """One telemetry event."""

    at: float
    kind: str
    database: str
    payload: dict


class EventBus:
    """Publish/subscribe bus with bounded history."""

    def __init__(self, history_limit: int = 50_000, metrics=None) -> None:
        self._subscribers: Dict[str, List[Callable[[Event], None]]] = {}
        self._history: List[Event] = []
        self._history_limit = history_limit
        self._metrics = metrics
        self.counts: Counter = Counter()

    def subscribe(self, kind: str, callback: Callable[[Event], None]) -> None:
        """Subscribe to a kind; '*' receives everything."""
        self._subscribers.setdefault(kind, []).append(callback)

    def emit(self, at: float, kind: str, database: str, **payload) -> Event:
        ensure_compliant(payload, "event payload")
        event = Event(at=at, kind=kind, database=database, payload=payload)
        self._history.append(event)
        if len(self._history) > self._history_limit:
            # Trim to exactly the cap: drop the oldest overflow entries.
            del self._history[: len(self._history) - self._history_limit]
        self.counts[kind] += 1
        if self._metrics is not None:
            self._metrics.counter(
                "events_total", kind=kind, database=database
            ).inc()
        for callback in self._subscribers.get(kind, ()):
            callback(event)
        for callback in self._subscribers.get("*", ()):
            callback(event)
        return event

    def ingest(self, event: Event) -> Event:
        """Append an externally produced event (the fleet-merge path).

        History, per-kind counts, and subscribers behave exactly like
        :meth:`emit`, but the ``events_total`` counter is NOT incremented:
        the shard worker's registry already counted the event, and that
        count arrives via the merged metric deltas — incrementing here
        would double it.
        """
        ensure_compliant(event.payload, "event payload")
        self._history.append(event)
        if len(self._history) > self._history_limit:
            del self._history[: len(self._history) - self._history_limit]
        self.counts[event.kind] += 1
        for callback in self._subscribers.get(event.kind, ()):
            callback(event)
        for callback in self._subscribers.get("*", ()):
            callback(event)
        return event

    def history(self, kind: Optional[str] = None) -> List[Event]:
        if kind is None:
            return list(self._history)
        return [event for event in self._history if event.kind == kind]
