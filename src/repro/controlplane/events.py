"""Telemetry event bus.

The control plane's components are decentralized and communicate through
asynchronous events (Section 3).  For compliance, events never carry
customer data (query text, literals) — only anonymized identifiers and
aggregates, which is also how the paper's engineers debug the service
(Section 1.2).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class Event:
    """One telemetry event."""

    at: float
    kind: str
    database: str
    payload: dict


_FORBIDDEN_PAYLOAD_KEYS = {"query_text", "text", "literal", "parameters"}


class EventBus:
    """Publish/subscribe bus with bounded history."""

    def __init__(self, history_limit: int = 50_000) -> None:
        self._subscribers: Dict[str, List[Callable[[Event], None]]] = {}
        self._history: List[Event] = []
        self._history_limit = history_limit
        self.counts: Counter = Counter()

    def subscribe(self, kind: str, callback: Callable[[Event], None]) -> None:
        """Subscribe to a kind; '*' receives everything."""
        self._subscribers.setdefault(kind, []).append(callback)

    def emit(self, at: float, kind: str, database: str, **payload) -> Event:
        leaked = _FORBIDDEN_PAYLOAD_KEYS.intersection(payload)
        if leaked:
            raise ValueError(
                f"event payload contains customer data keys: {sorted(leaked)}"
            )
        event = Event(at=at, kind=kind, database=database, payload=payload)
        self._history.append(event)
        if len(self._history) > self._history_limit:
            del self._history[: self._history_limit // 10]
        self.counts[kind] += 1
        for callback in self._subscribers.get(kind, ()):
            callback(event)
        for callback in self._subscribers.get("*", ()):
            callback(event)
        return event

    def history(self, kind: Optional[str] = None) -> List[Event]:
        if kind is None:
            return list(self._history)
        return [event for event in self._history if event.kind == kind]
