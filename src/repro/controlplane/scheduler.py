"""Virtual-time job scheduling for control-plane micro-services."""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, List, Optional, Tuple


@dataclasses.dataclass
class ScheduledJob:
    """A (possibly periodic) job."""

    name: str
    callback: Callable[[float], None]
    period: Optional[float]
    next_run: float
    enabled: bool = True
    runs: int = 0


class JobScheduler:
    """Runs due jobs when the control plane processes a tick.

    Unlike :class:`repro.clock.SimClock` timers, jobs here are durable and
    periodic; the control plane calls :meth:`run_due` with the current
    virtual time (typically right after advancing the workload).
    """

    def __init__(self) -> None:
        self._jobs: List[ScheduledJob] = []
        self._heap: List[Tuple[float, int, ScheduledJob]] = []
        self._counter = itertools.count()

    def schedule(
        self,
        name: str,
        callback: Callable[[float], None],
        first_run: float,
        period: Optional[float] = None,
    ) -> ScheduledJob:
        job = ScheduledJob(
            name=name, callback=callback, period=period, next_run=first_run
        )
        self._jobs.append(job)
        heapq.heappush(self._heap, (first_run, next(self._counter), job))
        return job

    def run_due(self, now: float) -> int:
        """Run every job due at or before ``now``; returns the run count."""
        executed = 0
        while self._heap and self._heap[0][0] <= now:
            _when, _seq, job = heapq.heappop(self._heap)
            if not job.enabled:
                continue
            job.callback(now)
            job.runs += 1
            executed += 1
            if job.period is not None:
                job.next_run = now + job.period
                heapq.heappush(
                    self._heap, (job.next_run, next(self._counter), job)
                )
        return executed

    def jobs(self) -> List[ScheduledJob]:
        return list(self._jobs)
