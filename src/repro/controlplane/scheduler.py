"""Virtual-time job scheduling for control-plane micro-services."""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, List, Optional, Tuple


@dataclasses.dataclass
class ScheduledJob:
    """A (possibly periodic) job."""

    name: str
    callback: Callable[[float], None]
    period: Optional[float]
    next_run: float
    enabled: bool = True
    runs: int = 0


class JobScheduler:
    """Runs due jobs when the control plane processes a tick.

    Unlike :class:`repro.clock.SimClock` timers, jobs here are durable and
    periodic; the control plane calls :meth:`run_due` with the current
    virtual time (typically right after advancing the workload).
    """

    def __init__(self) -> None:
        self._jobs: List[ScheduledJob] = []
        self._heap: List[Tuple[float, int, ScheduledJob]] = []
        self._counter = itertools.count()
        #: Disabled one-shot jobs pulled off the heap; re-armed by
        #: :meth:`enable` (periodic jobs stay in the heap while disabled).
        self._parked: List[ScheduledJob] = []

    def schedule(
        self,
        name: str,
        callback: Callable[[float], None],
        first_run: float,
        period: Optional[float] = None,
    ) -> ScheduledJob:
        job = ScheduledJob(
            name=name, callback=callback, period=period, next_run=first_run
        )
        self._jobs.append(job)
        heapq.heappush(self._heap, (first_run, next(self._counter), job))
        return job

    def run_due(self, now: float) -> int:
        """Run every job due at or before ``now``; returns the run count.

        Disabled jobs are *skipped, not dropped*: a periodic job is
        re-armed one period out (so re-enabling it fires on the next due
        tick), and a one-shot job is parked until :meth:`enable` re-arms
        it.  Dropping them permanently was a bug — a database whose
        automation was paused and later resumed would never be analyzed
        again.
        """
        executed = 0
        while self._heap and self._heap[0][0] <= now:
            _when, _seq, job = heapq.heappop(self._heap)
            if not job.enabled:
                if job.period is not None:
                    job.next_run = now + job.period
                    heapq.heappush(
                        self._heap, (job.next_run, next(self._counter), job)
                    )
                else:
                    self._parked.append(job)
                continue
            job.callback(now)
            job.runs += 1
            executed += 1
            if job.period is not None:
                job.next_run = now + job.period
                heapq.heappush(
                    self._heap, (job.next_run, next(self._counter), job)
                )
        return executed

    def enable(self, name: str) -> None:
        """Re-enable jobs named ``name``; parked one-shots are re-armed."""
        for job in self._jobs:
            if job.name == name:
                job.enabled = True
        still_parked = []
        for job in self._parked:
            if job.name == name:
                heapq.heappush(
                    self._heap, (job.next_run, next(self._counter), job)
                )
            else:
                still_parked.append(job)
        self._parked = still_parked

    def disable(self, name: str) -> None:
        """Disable jobs named ``name`` (they stop firing but are kept)."""
        for job in self._jobs:
            if job.name == name:
                job.enabled = False

    def jobs(self) -> List[ScheduledJob]:
        return list(self._jobs)
