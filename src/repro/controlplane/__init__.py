"""The control plane (Section 4): the backbone of the automation.

A per-region, fault-tolerant service that drives the index lifecycle state
machine for every managed database: it invokes the recommenders, implements
recommendations (when permitted), validates them, reverts regressions, and
watches its own health.  Implemented as a collection of micro-services
(:mod:`services`) over a persistent, journaled state store (:mod:`store`),
an event bus (:mod:`events`), a virtual-time scheduler (:mod:`scheduler`),
and a fault injector (:mod:`faults`) used by tests and benchmarks to
exercise the retry machinery.
"""

from repro.controlplane.control_plane import (
    AutoIndexingConfig,
    AutoMode,
    ControlPlane,
    ControlPlaneSettings,
    ManagedDatabase,
)
from repro.controlplane.states import DatabaseState, RecommendationState
from repro.controlplane.store import RecommendationRecord, StateStore

__all__ = [
    "AutoIndexingConfig",
    "AutoMode",
    "ControlPlane",
    "ControlPlaneSettings",
    "DatabaseState",
    "ManagedDatabase",
    "RecommendationRecord",
    "RecommendationState",
    "StateStore",
]
